#!/usr/bin/env python
"""CI smoke: interrupt a pooled fleet mid-run, resume, diff against a
clean single-shot run.

Orchestration (all through the real CLI, in subprocesses):

1. Start ``repro fleet --jobs 2 --checkpoint`` with the test-only
   ``REPRO_FLEET_INJECT_CRASH`` hook hanging the last two shards, so the
   run is deterministically "mid-flight" once the first two shards land.
2. Poll the checkpoint until two shard records are durably on disk,
   then send SIGINT.  The driver must exit 130 (128+SIGINT) after
   terminating its workers and flushing the checkpoint.
3. ``--resume`` the same spec to completion and write its JSON.
4. Run the identical spec uninterrupted in one shot.
5. The two JSON files must be byte-identical — the checkpoint/resume
   path may not perturb a single output byte.

Exits non-zero (with a diagnostic) on any deviation.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SPEC_ARGS = [
    "fleet", "--sessions", "8", "--shard-size", "2", "--seed", "11",
    "--mix", "todo:greenweb,cnet:perf",
]
HANG = {"shard": [2, 3], "attempts": 99, "mode": "sleep", "sleep_s": 120.0}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def cli(extra, env=None, timeout=180):
    merged = dict(os.environ, PYTHONPATH="src", **(env or {}))
    return subprocess.run(
        [sys.executable, "-m", "repro"] + SPEC_ARGS + extra,
        capture_output=True, text=True, cwd=REPO_ROOT, env=merged,
        timeout=timeout,
    )


def shard_records(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            return sum('"kind": "shard"' in line for line in handle)
    except FileNotFoundError:
        return 0


def interrupt_mid_run(checkpoint: str) -> None:
    env = dict(os.environ, PYTHONPATH="src",
               REPRO_FLEET_INJECT_CRASH=json.dumps(HANG))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + SPEC_ARGS
        + ["--jobs", "2", "--checkpoint", checkpoint],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=REPO_ROOT, env=env,
    )
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and shard_records(checkpoint) < 2:
            time.sleep(0.05)
        if shard_records(checkpoint) < 2:
            fail("fleet produced no checkpoint records within 60s")
        time.sleep(0.5)  # let the hung shards actually get submitted
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if proc.returncode != 128 + signal.SIGINT:
        fail(
            f"expected exit {128 + signal.SIGINT} after SIGINT, got "
            f"{proc.returncode}\nstdout:\n{stdout}\nstderr:\n{stderr}"
        )
    if "interrupted: SIGINT" not in stdout:
        fail(f"missing interruption report in stdout:\n{stdout}")
    print(f"interrupted at {shard_records(checkpoint)} checkpointed shards, "
          f"exit {proc.returncode}")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="ckpt-smoke-") as tmp:
        checkpoint = os.path.join(tmp, "fleet.ckpt")
        resumed_json = os.path.join(tmp, "resumed.json")
        clean_json = os.path.join(tmp, "clean.json")

        interrupt_mid_run(checkpoint)

        resumed = cli(["--jobs", "2", "--checkpoint", checkpoint, "--resume",
                       "--json-out", resumed_json])
        if resumed.returncode != 0:
            fail(f"resume failed ({resumed.returncode}):\n{resumed.stderr}")
        if "resumed:" not in resumed.stdout:
            fail(f"resume did not reload shards:\n{resumed.stdout}")
        print("resumed run completed cleanly")

        clean = cli(["--json-out", clean_json])
        if clean.returncode != 0:
            fail(f"clean run failed ({clean.returncode}):\n{clean.stderr}")

        with open(resumed_json, "rb") as a, open(clean_json, "rb") as b:
            resumed_bytes, clean_bytes = a.read(), b.read()
        if resumed_bytes != clean_bytes:
            fail(
                "interrupted-then-resumed JSON differs from the clean "
                f"single-shot run\nresumed:\n{resumed_bytes.decode()}\n"
                f"clean:\n{clean_bytes.decode()}"
            )
        print(f"byte-identical: {len(clean_bytes)} bytes")
    print("checkpoint smoke OK")


if __name__ == "__main__":
    main()
