"""Regenerate the differential-parity golden fingerprints.

Runs every (application x builtin governor x trace level) cell through
the *scalar* engine and records a SHA-256 over the canonical JSON of
the :func:`repro.evaluation.runner.run_workload_job` result.  The
differential suite (``tests/differential/test_batch_parity.py``)
asserts both the scalar and the batched engine reproduce these bytes.

Run from the repo root after any intentional result-affecting change::

    PYTHONPATH=src python scripts/gen_parity_fingerprints.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.evaluation.runner import GOVERNORS, run_workload_job  # noqa: E402
from repro.scenarios import SCENARIOS  # noqa: E402
from repro.workloads.registry import APP_NAMES  # noqa: E402

OUT = os.path.join(os.path.dirname(__file__), "..", "tests", "data",
                   "batch_parity_fingerprints.json")

#: The sweep's fixed workload knobs (mirrored by the parity test).
TRACE_KIND = "micro"
SEED = 0
SETTLE_S = 4.0
TRACE_LEVELS = ("full", "gated")

#: Dynamic-scenario cells (app, governor, scenario spec), swept at both
#: trace levels into the separate ``dynamic_cells`` section — the
#: static ``cells`` sweep above pins the bare-scenario bytes and must
#: never change when these do.  Parameters are chosen so the dynamics
#: actually engage on the micro traces: paperjs's animation load trips
#: the thermal cap at ``hot_load=0.2``, and a 600 %/min drain crosses
#: the 60 % relax threshold mid-run.  Keys are ``:``-joined — safe
#: because the spec grammar rejects ``:`` in every field.
DYNAMIC_CELLS = (
    ("paperjs", "perf",
     "thermal(cap_mhz=1100,trip_ms=200,hysteresis_ms=2000,hot_load=0.2)"),
    ("paperjs", "greenweb",
     "battery(start_pct=90,drain_pct_per_min=600,relax_at_pct=60)"),
)


def job_fingerprint(result: dict) -> str:
    """Canonical-JSON SHA-256 of one session result."""
    import hashlib

    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def main() -> int:
    cells = {}
    for app in APP_NAMES:
        for governor in GOVERNORS:
            for level in TRACE_LEVELS:
                result = run_workload_job({
                    "app": app,
                    "governor": governor,
                    "trace_kind": TRACE_KIND,
                    "seed": SEED,
                    "settle_s": SETTLE_S,
                    "trace_level": level,
                })
                cells[f"{app}:{governor}:{level}"] = job_fingerprint(result)
                print(f"{app}:{governor}:{level}", cells[f"{app}:{governor}:{level}"][:16])
    dynamic_cells = {}
    for app, governor, scenario in DYNAMIC_CELLS:
        canonical_scenario = SCENARIOS.normalize(scenario).canonical()
        for level in TRACE_LEVELS:
            result = run_workload_job({
                "app": app,
                "governor": governor,
                "scenario": scenario,
                "trace_kind": TRACE_KIND,
                "seed": SEED,
                "settle_s": SETTLE_S,
                "trace_level": level,
            })
            key = f"{app}:{governor}:{canonical_scenario}:{level}"
            dynamic_cells[key] = job_fingerprint(result)
            print(key, dynamic_cells[key][:16])
    payload = {
        "workload": {
            "trace_kind": TRACE_KIND,
            "seed": SEED,
            "settle_s": SETTLE_S,
            "scenario": "imperceptible",
        },
        "cells": cells,
        "dynamic_cells": dynamic_cells,
    }
    with open(OUT, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUT} ({len(cells)} cells, {len(dynamic_cells)} dynamic)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
