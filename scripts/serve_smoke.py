#!/usr/bin/env python
"""CI smoke: the serve daemon end to end, including restart/resume.

Orchestration (all through the real CLI, in subprocesses):

1. Start ``repro serve`` and ``POST /jobs`` the reference spec; read the
   SSE stream to its terminal ``result`` event.
2. Run ``repro fleet --json-out`` for the same spec; the SSE result and
   the batch JSON must be byte-identical.
3. Restart the daemon with the test-only ``REPRO_FLEET_INJECT_CRASH``
   hook hanging the last shard, submit a second job, wait for two
   shards to land, and SIGTERM the daemon mid-job.  It must exit
   143 (128+SIGTERM) after draining.
4. Start a third daemon life on the same state dir *without* the hook:
   it must resume the interrupted job from its checkpoint journal and
   finish it — byte-identical to the batch JSON again.

Exits non-zero (with a diagnostic) on any deviation.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SPEC = {"sessions": 8, "shard_size": 2, "seed": 11,
        "mix": "todo:greenweb,cnet:perf"}
SPEC_ARGS = [
    "fleet", "--sessions", "8", "--shard-size", "2", "--seed", "11",
    "--mix", "todo:greenweb,cnet:perf",
]
HANG = {"shard": 3, "attempts": 99, "mode": "sleep", "sleep_s": 300.0}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_daemon(port: int, state_dir: str, inject=None) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH="src")
    if inject is not None:
        env["REPRO_FLEET_INJECT_CRASH"] = json.dumps(inject)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--jobs", "2", "--state-dir", state_dir, "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=REPO_ROOT, env=env,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            stdout, stderr = proc.communicate()
            fail(f"daemon died on startup ({proc.returncode}):\n"
                 f"stdout:\n{stdout}\nstderr:\n{stderr}")
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2
            ):
                return proc
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            time.sleep(0.1)
    proc.kill()
    fail("daemon did not answer /healthz within 30s")


def submit_job(port: int) -> str:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/jobs",
        data=json.dumps(SPEC).encode("utf-8"), method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        detail = json.load(response)
        if response.status != 201:
            fail(f"POST /jobs returned {response.status}: {detail}")
    return detail["id"]


def stream_terminal_result(port: int, job_id: str, timeout=180.0) -> str:
    """Follow the SSE stream to its terminal event; return the payload."""
    url = f"http://127.0.0.1:{port}/jobs/{job_id}/events"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        name, data_lines = "message", []
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue
            if line == "":
                if data_lines and name in ("result", "failed", "cancelled"):
                    if name != "result":
                        fail(f"job {job_id} ended with {name}: "
                             f"{chr(10).join(data_lines)}")
                    return "\n".join(data_lines)
                name, data_lines = "message", []
                continue
            field, _, value = line.partition(":")
            value = value[1:] if value.startswith(" ") else value
            if field == "event":
                name = value
            elif field == "data":
                data_lines.append(value)
    fail(f"SSE stream for {job_id} ended without a terminal event")


def shards_done(port: int, job_id: str) -> int:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/jobs/{job_id}", timeout=5
    ) as response:
        return json.load(response)["progress"]["shards_done"]


def batch_json(path: str) -> bytes:
    run = subprocess.run(
        [sys.executable, "-m", "repro"] + SPEC_ARGS
        + ["--progress", "never", "--json-out", path],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env=dict(os.environ, PYTHONPATH="src"), timeout=180,
    )
    if run.returncode != 0:
        fail(f"batch fleet run failed ({run.returncode}):\n{run.stderr}")
    with open(path, "rb") as handle:
        return handle.read()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        state_dir = os.path.join(tmp, "state")
        reference = batch_json(os.path.join(tmp, "batch.json"))
        print(f"batch reference: {len(reference)} bytes")

        # --- life 1: clean job, SSE result must equal the batch JSON --
        port = free_port()
        daemon = start_daemon(port, state_dir)
        try:
            job_id = submit_job(port)
            result = stream_terminal_result(port, job_id).encode("utf-8")
            if result != reference:
                fail("SSE terminal result differs from repro fleet "
                     f"--json-out\nsse:\n{result.decode()}\n"
                     f"batch:\n{reference.decode()}")
            print(f"job {job_id}: SSE result byte-identical "
                  f"({len(result)} bytes)")
        finally:
            daemon.terminate()
            daemon.wait(timeout=60)

        # --- life 2: hang the last shard, SIGTERM mid-job -------------
        port = free_port()
        daemon = start_daemon(port, state_dir, inject=HANG)
        try:
            job_id = submit_job(port)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline and shards_done(port, job_id) < 2:
                time.sleep(0.1)
            if shards_done(port, job_id) < 2:
                fail("job made no progress within 60s")
            daemon.send_signal(signal.SIGTERM)
            stdout, stderr = daemon.communicate(timeout=90)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        if daemon.returncode != 128 + signal.SIGTERM:
            fail(f"expected exit {128 + signal.SIGTERM} after SIGTERM, got "
                 f"{daemon.returncode}\nstdout:\n{stdout}\nstderr:\n{stderr}")
        print(f"daemon drained on SIGTERM mid-job (exit {daemon.returncode})")

        # --- life 3: restart without the hook; job must resume --------
        port = free_port()
        daemon = start_daemon(port, state_dir)
        try:
            resumed = stream_terminal_result(port, job_id).encode("utf-8")
            if resumed != reference:
                fail("resumed job's result differs from the batch JSON\n"
                     f"resumed:\n{resumed.decode()}\n"
                     f"batch:\n{reference.decode()}")
            print(f"job {job_id}: resumed after restart, byte-identical "
                  f"({len(resumed)} bytes)")
        finally:
            daemon.terminate()
            daemon.wait(timeout=60)
    print("serve smoke OK")


if __name__ == "__main__":
    main()
