#!/usr/bin/env python
"""CI smoke: the serve daemon end to end — concurrent jobs, metrics,
and restart/resume.

Orchestration (all through the real CLI, in subprocesses):

1. Start ``repro serve --max-concurrent-jobs 2`` and ``POST /jobs`` two
   overlapping jobs (different seeds); read both SSE streams to their
   terminal ``result`` events.
2. Run ``repro fleet --json-out`` for each spec; each SSE result must
   be byte-identical to its batch JSON.  Scrape ``GET /metrics`` once
   and assert the counters reflect both jobs.
3. Restart the daemon with the test-only ``REPRO_FLEET_INJECT_CRASH``
   hook hanging the last shard, submit both jobs again, wait for two
   shards to land on each, and SIGTERM the daemon with both mid-flight.
   It must exit 143 (128+SIGTERM) after draining.
4. Start a third daemon life on the same state dir *without* the hook:
   it must resume both interrupted jobs from their checkpoint journals
   and finish each — byte-identical to the batch JSON again.

Exits non-zero (with a diagnostic) on any deviation.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
#: One job runs a plain static mix; the other includes a parameterized
#: dynamic-scenario entry, so the smoke covers scenario specs surviving
#: the HTTP payload -> store -> checkpoint -> resume round trip.
MIXES = {
    11: ("todo:greenweb,paperjs:perf:"
         "thermal(cap_mhz=1100,trip_ms=200,hysteresis_ms=2000,hot_load=0.2)"),
    23: "todo:greenweb,cnet:perf",
}
SEEDS = tuple(MIXES)


def spec_for(seed: int) -> dict:
    return {"sessions": 8, "shard_size": 2, "seed": seed, "mix": MIXES[seed]}


def spec_args(seed: int) -> list:
    return [
        "fleet", "--sessions", "8", "--shard-size", "2",
        "--seed", str(seed), "--mix", MIXES[seed],
    ]


HANG = {"shard": 3, "attempts": 99, "mode": "sleep", "sleep_s": 300.0}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_daemon(port: int, state_dir: str, inject=None) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH="src")
    if inject is not None:
        env["REPRO_FLEET_INJECT_CRASH"] = json.dumps(inject)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--jobs", "2", "--max-concurrent-jobs", "2",
         "--state-dir", state_dir, "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=REPO_ROOT, env=env,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            stdout, stderr = proc.communicate()
            fail(f"daemon died on startup ({proc.returncode}):\n"
                 f"stdout:\n{stdout}\nstderr:\n{stderr}")
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2
            ):
                return proc
        except (urllib.error.URLError, ConnectionError, TimeoutError):
            time.sleep(0.1)
    proc.kill()
    fail("daemon did not answer /healthz within 30s")


def submit_job(port: int, spec: dict) -> str:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/jobs",
        data=json.dumps(spec).encode("utf-8"), method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        detail = json.load(response)
        if response.status != 201:
            fail(f"POST /jobs returned {response.status}: {detail}")
    return detail["id"]


def stream_terminal_result(port: int, job_id: str, timeout=180.0) -> str:
    """Follow the SSE stream to its terminal event; return the payload."""
    url = f"http://127.0.0.1:{port}/jobs/{job_id}/events"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        name, data_lines = "message", []
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue
            if line == "":
                if data_lines and name in ("result", "failed", "cancelled"):
                    if name != "result":
                        fail(f"job {job_id} ended with {name}: "
                             f"{chr(10).join(data_lines)}")
                    return "\n".join(data_lines)
                name, data_lines = "message", []
                continue
            field, _, value = line.partition(":")
            value = value[1:] if value.startswith(" ") else value
            if field == "event":
                name = value
            elif field == "data":
                data_lines.append(value)
    fail(f"SSE stream for {job_id} ended without a terminal event")


def shards_done(port: int, job_id: str) -> int:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/jobs/{job_id}", timeout=5
    ) as response:
        return json.load(response)["progress"]["shards_done"]


def check_metrics(port: int) -> None:
    """One /metrics scrape after both jobs of life 1 settled done."""
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=10
    ) as response:
        content_type = response.headers.get("Content-Type", "")
        lines = response.read().decode("utf-8").splitlines()
    if not content_type.startswith("text/plain; version=0.0.4"):
        fail(f"/metrics content type: {content_type!r}")
    expected = [
        "repro_serve_jobs_submitted_total 2",
        'repro_serve_jobs_settled_total{status="done"} 2',
        "repro_serve_shards_completed_total 8",
        "repro_serve_sessions_completed_total 16",
        "repro_serve_queue_depth 0",
        "repro_serve_job_wall_seconds_count 2",
    ]
    missing = [line for line in expected if line not in lines]
    if missing:
        fail("metrics scrape is missing expected samples:\n"
             + "\n".join(missing) + "\nscrape:\n" + "\n".join(lines))
    print(f"/metrics scrape OK ({len(lines)} lines)")


def batch_json(path: str, seed: int) -> bytes:
    run = subprocess.run(
        [sys.executable, "-m", "repro"] + spec_args(seed)
        + ["--progress", "never", "--json-out", path],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env=dict(os.environ, PYTHONPATH="src"), timeout=180,
    )
    if run.returncode != 0:
        fail(f"batch fleet run failed ({run.returncode}):\n{run.stderr}")
    with open(path, "rb") as handle:
        return handle.read()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        state_dir = os.path.join(tmp, "state")
        references = {
            seed: batch_json(os.path.join(tmp, f"batch-{seed}.json"), seed)
            for seed in SEEDS
        }
        for seed, reference in references.items():
            print(f"batch reference (seed {seed}): {len(reference)} bytes")

        # --- life 1: two overlapping jobs; each SSE result must
        # --- equal its batch JSON; then one /metrics scrape ----------
        port = free_port()
        daemon = start_daemon(port, state_dir)
        try:
            job_ids = {
                seed: submit_job(port, spec_for(seed)) for seed in SEEDS
            }
            for seed, job_id in job_ids.items():
                result = stream_terminal_result(port, job_id).encode("utf-8")
                if result != references[seed]:
                    fail(f"SSE terminal result (seed {seed}) differs from "
                         f"repro fleet --json-out\nsse:\n{result.decode()}\n"
                         f"batch:\n{references[seed].decode()}")
                print(f"job {job_id} (seed {seed}): SSE result "
                      f"byte-identical ({len(result)} bytes)")
            check_metrics(port)
        finally:
            daemon.terminate()
            daemon.wait(timeout=60)

        # --- life 2: hang the last shard of both jobs, SIGTERM with
        # --- both mid-flight -----------------------------------------
        port = free_port()
        daemon = start_daemon(port, state_dir, inject=HANG)
        try:
            job_ids = {
                seed: submit_job(port, spec_for(seed)) for seed in SEEDS
            }
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline and any(
                shards_done(port, job_id) < 2 for job_id in job_ids.values()
            ):
                time.sleep(0.1)
            laggards = [
                job_id for job_id in job_ids.values()
                if shards_done(port, job_id) < 2
            ]
            if laggards:
                fail(f"job(s) made no progress within 120s: {laggards}")
            daemon.send_signal(signal.SIGTERM)
            stdout, stderr = daemon.communicate(timeout=90)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
        if daemon.returncode != 128 + signal.SIGTERM:
            fail(f"expected exit {128 + signal.SIGTERM} after SIGTERM, got "
                 f"{daemon.returncode}\nstdout:\n{stdout}\nstderr:\n{stderr}")
        print(f"daemon drained on SIGTERM with both jobs mid-flight "
              f"(exit {daemon.returncode})")

        # --- life 3: restart without the hook; both jobs must resume --
        port = free_port()
        daemon = start_daemon(port, state_dir)
        try:
            for seed, job_id in job_ids.items():
                resumed = stream_terminal_result(port, job_id).encode("utf-8")
                if resumed != references[seed]:
                    fail(f"resumed job (seed {seed}) differs from the batch "
                         f"JSON\nresumed:\n{resumed.decode()}\n"
                         f"batch:\n{references[seed].decode()}")
                print(f"job {job_id} (seed {seed}): resumed after restart, "
                      f"byte-identical ({len(resumed)} bytes)")
        finally:
            daemon.terminate()
            daemon.wait(timeout=60)
    print("serve smoke OK")


if __name__ == "__main__":
    main()
