"""Figs. 10a/b/c: full-interaction energy and QoS violations.

Paper reference points: GreenWeb saves 29.2% (imperceptible) and 66.0%
(usable) vs. Android's Interactive governor; Interactive consumes
energy close to Perf; GreenWeb adds only ~0.8% / ~0.6% violations.
"""

import statistics

from conftest import run_once

from repro.evaluation.experiments import run_fig10_full_interactions
from repro.evaluation.report import render_fig10


def test_fig10_full_interactions(benchmark, record_figure):
    rows = run_once(benchmark, run_fig10_full_interactions)
    record_figure("fig10_full", render_fig10(rows))

    assert len(rows) == 12

    # Shape: Interactive consumes energy close to Perf (Sec. 7.3 —
    # high CPU utilization keeps it near peak).
    mean_interactive = statistics.mean(r.interactive_energy_norm_pct for r in rows)
    assert mean_interactive > 90.0

    # Shape: GreenWeb beats Interactive in both scenarios, usable more.
    saving_i = statistics.mean(r.greenweb_i_saving_vs_interactive_pct for r in rows)
    saving_u = statistics.mean(r.greenweb_u_saving_vs_interactive_pct for r in rows)
    assert saving_i > 15.0
    assert saving_u > saving_i

    # Shape: full-interaction violations are lower than the
    # micro-benchmarks' (profiling amortized over longer sequences).
    mean_viol_i = statistics.mean(r.greenweb_i_added_violation_pct for r in rows)
    assert mean_viol_i < 6.0

    # Per-app shape: every app saves energy under GreenWeb-U.
    for row in rows:
        assert row.greenweb_u_energy_norm_pct < 90.0
