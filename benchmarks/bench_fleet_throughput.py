"""Fleet throughput: sessions/second as worker processes scale.

Runs the same 24-session population at ``--jobs`` 1, 2, and 4 and
reports wall-clock throughput plus the parallel speedup over the
single-process baseline.  On a single-core container the speedup
hovers around 1x — the point of the series is to expose process-pool
overhead and to track regressions in the shard pipeline, not to brag
about cores the machine does not have.
"""

import time

from conftest import run_once

from repro.fleet import Fleet, FleetSpec, parse_mix

SESSIONS = 24
JOBS = (1, 2, 4)
MIX = "todo:greenweb,cnet:perf,amazon:greenweb:usable"


def _throughputs():
    spec_kwargs = dict(sessions=SESSIONS, seed=7, mix=parse_mix(MIX), shard_size=4)
    series = []
    baseline = None
    for jobs in JOBS:
        started = time.perf_counter()
        result = Fleet(FleetSpec(**spec_kwargs), jobs=jobs).run()
        elapsed = time.perf_counter() - started
        assert result.ok, f"fleet run failed at jobs={jobs}: {result.failures}"
        rate = result.sessions_completed / elapsed
        baseline = baseline or rate
        series.append((jobs, elapsed, rate, rate / baseline))
    return series


def test_fleet_throughput(benchmark, record_figure):
    series = run_once(benchmark, _throughputs)

    lines = [f"Fleet throughput: {SESSIONS} sessions, mix {MIX}"]
    for jobs, elapsed, rate, speedup in series:
        lines.append(
            f"  jobs={jobs}  {elapsed:6.2f} s  {rate:7.1f} sessions/s  "
            f"speedup x{speedup:.2f}"
        )
    record_figure("fleet_throughput", "\n".join(lines))

    # Sanity floor: even with pool overhead the engine must stay usable.
    for jobs, _elapsed, rate, _speedup in series:
        assert rate > 1.0, f"jobs={jobs} ran below 1 session/s"
