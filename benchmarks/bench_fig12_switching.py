"""Fig. 12: execution configuration switching frequency.

Paper reference points: GreenWeb introduces only modest switching
(~20% on average); for most applications GreenWeb-I switches at least
as much as GreenWeb-U (tighter targets are more sensitive to frame
variance); and among *continuous-frame* applications frequency changes
dominate core migrations.
"""

import statistics

from conftest import run_once

from repro.evaluation.experiments import run_fig12_switching
from repro.evaluation.report import render_fig12


def test_fig12_switching_frequency(benchmark, record_figure):
    rows = run_once(benchmark, run_fig12_switching)
    record_figure("fig12_switching", render_fig12(rows))

    assert len(rows) == 12

    # Shape: switching is modest (paper: ~20% on average; switch
    # overheads of 20-100 us are negligible against ms-scale targets).
    mean_i = statistics.mean(r.total_i for r in rows)
    mean_u = statistics.mean(r.total_u for r in rows)
    assert mean_i < 60.0
    assert mean_u < 60.0

    # Shape: frequency switches dominate migrations for the
    # animation-heavy applications (the paper's per-frame adjustments
    # walk adjacent frequency steps).
    animation_apps = {"cnet", "w3schools"}
    for row in rows:
        if row.app in animation_apps:
            assert row.freq_switch_pct_i > row.migration_pct_i
