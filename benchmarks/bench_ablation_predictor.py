"""Ablations (Secs. 6.2 / 8): the runtime's prediction machinery.

Knobs exercised:

* **EWMA model fine-tuning on/off** — the paper's "uses measured frame
  latencies as feedback information to fine-tune the prediction";
  without it the runtime relies on reactive boosts alone, which the
  paper suggests handles frame-complexity surges poorly (Sec. 7.2's
  W3Schools/Cnet discussion and the Sec. 8 profiling-guided-prediction
  suggestion).
* **Recalibration threshold sweep** — how many consecutive
  mispredictions before new profiling runs (Sec. 6.2).
* **Governor panorama** — GreenWeb against all baselines including the
  non-paper reference governors (powersave = energy floor with broken
  QoS; ondemand = utilization-reactive).
"""


from conftest import run_once

from repro.core.qos import UsageScenario
from repro.evaluation.runner import run_workload

U = UsageScenario.USABLE
I = UsageScenario.IMPERCEPTIBLE


def _ewma_ablation():
    results = {}
    for label, spec in (
        ("ewma-on", "greenweb(ewma_model_update=true)"),
        ("ewma-off", "greenweb(ewma_model_update=false)"),
    ):
        results[label] = run_workload("w3schools", spec, U, "micro")
    return results


def test_ablation_ewma_model_update(benchmark, record_figure):
    results = run_once(benchmark, _ewma_ablation)
    lines = ["Ablation: EWMA prediction fine-tuning (W3Schools, usable scenario)"]
    for label, run in results.items():
        lines.append(
            f"  {label:10s} violations={run.mean_violation_pct:6.2f}% "
            f"energy={run.active_energy_j * 1000:7.1f} mJ "
            f"recalibrations={run.runtime_stats['recalibrations']}"
        )
    record_figure("ablation_ewma", "\n".join(lines))

    # Both modes must remain functional; fine-tuning must not be
    # catastrophically worse on either axis.
    for run in results.values():
        assert run.frames > 50


def _recalibration_sweep():
    rows = []
    for threshold in (1, 3, 8):
        run = run_workload(
            "cnet", f"greenweb(recalibration_threshold={threshold})", U, "micro"
        )
        rows.append((threshold, run))
    return rows


def test_ablation_recalibration_threshold(benchmark, record_figure):
    rows = run_once(benchmark, _recalibration_sweep)
    lines = ["Ablation: recalibration threshold (Cnet, usable scenario)"]
    for threshold, run in rows:
        lines.append(
            f"  threshold={threshold}: violations={run.mean_violation_pct:6.2f}% "
            f"profiling_frames={run.runtime_stats['profiling_frames']:3d} "
            f"recalibrations={run.runtime_stats['recalibrations']}"
        )
    record_figure("ablation_recalibration", "\n".join(lines))

    # A hair-trigger threshold must re-profile at least as often as a
    # lenient one.
    profiling = {t: run.runtime_stats["profiling_frames"] for t, run in rows}
    assert profiling[1] >= profiling[8]


def _governor_panorama():
    results = {}
    for governor in ("perf", "interactive", "ondemand", "greenweb", "powersave"):
        results[governor] = run_workload("cnet", governor, I, "micro")
    return results


def test_ablation_governor_panorama(benchmark, record_figure):
    results = run_once(benchmark, _governor_panorama)
    lines = ["Governor panorama (Cnet micro, imperceptible targets)"]
    for governor, run in results.items():
        lines.append(
            f"  {governor:12s} energy={run.active_energy_j * 1000:8.1f} mJ "
            f"violations={run.mean_violation_pct:7.2f}%"
        )
    record_figure("ablation_governors", "\n".join(lines))

    # Energy ordering: powersave <= greenweb < perf.
    assert results["powersave"].active_energy_j <= results["greenweb"].active_energy_j
    assert results["greenweb"].active_energy_j < results["perf"].active_energy_j
    # QoS ordering: powersave is the broken-QoS floor.
    assert (
        results["powersave"].mean_violation_pct
        > results["greenweb"].mean_violation_pct
    )


def _profiling_mode_ablation():
    results = {}
    for label, spec in (
        ("2-run + IPC derivation", "greenweb"),
        ("4-run (both clusters)", "greenweb(profile_both_clusters=true)"),
    ):
        results[label] = run_workload("cnet", spec, U, "micro")
    return results


def test_ablation_profiling_mode(benchmark, record_figure):
    """Sec. 6.2: the paper profiles twice and builds per-cluster models.
    Two designs are possible: derive the little model from the big fit
    via the statically profiled IPC ratio (2 profiling runs), or
    profile the little cluster independently (4 runs).  Independent
    profiling buys a more accurate little model at the cost of extra
    profiling frames at the little cluster's minimum frequency — which
    is where profiling violations come from."""
    results = run_once(benchmark, _profiling_mode_ablation)
    lines = ["Ablation: profiling mode (Cnet, usable scenario)"]
    for label, run in results.items():
        lines.append(
            f"  {label:24s} violations={run.mean_violation_pct:6.2f}% "
            f"energy={run.active_energy_j*1000:7.1f} mJ "
            f"profiling_frames={run.runtime_stats['profiling_frames']}"
        )
    record_figure("ablation_profiling_mode", "\n".join(lines))

    two_run = results["2-run + IPC derivation"]
    four_run = results["4-run (both clusters)"]
    # Independent profiling costs strictly more profiling frames.
    assert (
        four_run.runtime_stats["profiling_frames"]
        > two_run.runtime_stats["profiling_frames"]
    )
    # Both modes remain functional.
    assert four_run.frames > 50 and two_run.frames > 50


def _surge_aware_ablation():
    results = {}
    for label, spec in (
        ("ewma mean", "greenweb"),
        ("surge-aware p90", "greenweb(surge_aware=true)"),
    ):
        results[label] = run_workload("w3schools", spec, U, "micro")
    return results


def test_ablation_surge_aware_prediction(benchmark, record_figure):
    """Sec. 7.2/8: "the GreenWeb runtime could be better enhanced to
    capture the pattern of frame fluctuation in an event, potentially
    through offline profiling."  The surge-aware predictor schedules a
    fluctuating key for a high percentile of its recent frame costs
    instead of their mean: fewer usable-mode violations on W3Schools'
    surging animation, at an energy premium."""
    results = run_once(benchmark, _surge_aware_ablation)
    lines = ["Ablation: surge-aware prediction (W3Schools, usable scenario)"]
    for label, run in results.items():
        lines.append(
            f"  {label:18s} violations={run.mean_violation_pct:6.2f}% "
            f"energy={run.active_energy_j*1000:7.1f} mJ"
        )
    record_figure("ablation_surge_aware", "\n".join(lines))

    mean_mode = results["ewma mean"]
    surge_mode = results["surge-aware p90"]
    assert surge_mode.mean_violation_pct < mean_mode.mean_violation_pct
    assert surge_mode.active_energy_j > mean_mode.active_energy_j
