"""Table 1: the QoS type x QoS target interaction categories."""

from conftest import run_once

from repro.core.qos import (
    CONTINUOUS_DEFAULT,
    SINGLE_LONG_DEFAULT,
    SINGLE_SHORT_DEFAULT,
    TABLE1_CATEGORIES,
    QoSType,
)
from repro.evaluation.report import render_table1


def test_table1_categories(benchmark, record_figure):
    text = run_once(benchmark, render_table1)
    record_figure("table1", text)

    # The three categories with the paper's exact default targets.
    assert len(TABLE1_CATEGORIES) == 3
    assert TABLE1_CATEGORIES[0].qos_type is QoSType.CONTINUOUS
    assert TABLE1_CATEGORIES[0].target == CONTINUOUS_DEFAULT
    assert TABLE1_CATEGORIES[1].target == SINGLE_SHORT_DEFAULT
    assert TABLE1_CATEGORIES[2].target == SINGLE_LONG_DEFAULT
    assert "16.6" in text and "33.3" in text
    assert "(100, 300) ms" in text
    assert "(1, 10) s" in text
