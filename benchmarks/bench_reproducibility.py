"""Reproducibility (Sec. 7.1): "We repeat every experiment 3 times ...
the run-to-run variations are usually about 5%, and do not affect our
conclusions."

The simulator is deterministic per seed, so this benchmark varies the
*workload* seed (equivalent to re-recording the interaction) and checks
that (a) identical seeds are bit-identical and (b) the seed-to-seed
energy spread stays small enough not to affect conclusions.
"""


from conftest import run_once

from repro.core.qos import UsageScenario
from repro.evaluation.runner import run_workload
from repro.evaluation.sweeps import seed_variation

APPS = ("todo", "cnet", "amazon")


def _variations():
    return {app: seed_variation(app, seeds=(0, 1, 2)) for app in APPS}


def test_reproducibility(benchmark, record_figure):
    variations = run_once(benchmark, _variations)

    lines = ["Reproducibility: seed-to-seed variation (3 seeds, GreenWeb-I micro)"]
    for app, variation in variations.items():
        lines.append(
            f"  {app:10s} median={variation.energy_median_j*1000:8.1f} mJ "
            f"spread={variation.energy_rel_spread_pct:5.1f}% "
            f"violations={['%.2f' % v for v in variation.violations_pct]}"
        )
    record_figure("reproducibility", "\n".join(lines))

    # (a) determinism: identical seeds, identical joules.
    first = run_workload("cnet", "greenweb", UsageScenario.IMPERCEPTIBLE, "micro", seed=0)
    second = run_workload("cnet", "greenweb", UsageScenario.IMPERCEPTIBLE, "micro", seed=0)
    assert first.energy_j == second.energy_j
    assert first.event_violations_pct == second.event_violations_pct

    # (b) seed sensitivity does not affect conclusions (the paper saw
    # ~5% on hardware; allow a generous envelope for workload redraws).
    for variation in variations.values():
        assert variation.energy_rel_spread_pct < 25.0

    # GreenWeb still beats Perf under every seed (conclusions stable).
    for app in APPS:
        for seed in (0, 1, 2):
            perf = run_workload(app, "perf", UsageScenario.IMPERCEPTIBLE, "micro", seed)
            green = run_workload(app, "greenweb", UsageScenario.IMPERCEPTIBLE, "micro", seed)
            assert green.active_energy_j < perf.active_energy_j
