"""Ablation (Sec. 6.3): frame-latency tracking vs. callback latency.

The paper motivates its Fig. 8 tracker by noting prior work "is
concerned only with the callback latency, which contributes to only a
portion of frame latency".  This ablation measures both for the same
run and quantifies the gap, and also validates the tracker under the
two Fig. 8 complexities: interleaved inputs and VSync batching.
"""

import statistics

from conftest import run_once

from repro.browser.engine import Browser
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import UsageScenario
from repro.policies import POLICIES
from repro.hardware.platform import odroid_xu_e
from repro.workloads.interactions import InteractionDriver
from repro.workloads.registry import build_app


def _run_msn_and_collect():
    bundle = build_app("msn")
    platform = odroid_xu_e(record_power_intervals=False)
    registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
    runtime = POLICIES.build("greenweb", platform, registry, UsageScenario.IMPERCEPTIBLE)
    browser = Browser(platform, bundle.page, policy=runtime)
    driver = InteractionDriver(browser)
    driver.schedule(bundle.micro_trace)
    platform.run_for(bundle.micro_trace.duration_us + 4_000_000)

    callback_latency = {}
    for record in platform.trace.filter(category="callback", name="finished"):
        uid = record["uid"]
        callback_latency[uid] = max(callback_latency.get(uid, 0), record["latency_us"])

    pairs = []
    for record in browser.tracker.records:
        if record.frame_count and record.uid in callback_latency:
            pairs.append((callback_latency[record.uid], record.first_frame_latency_us))
    return pairs


def test_ablation_callback_vs_frame_latency(benchmark, record_figure):
    pairs = run_once(benchmark, _run_msn_and_collect)
    assert pairs, "expected frame-producing events"

    ratios = [cb / frame for cb, frame in pairs]
    mean_share = statistics.mean(ratios)
    lines = [
        "Ablation (Sec. 6.3): callback latency vs. true frame latency (MSN taps)",
        f"{'callback_us':>12s} {'frame_us':>10s} {'share':>7s}",
    ]
    for cb, frame in pairs:
        lines.append(f"{cb:12d} {frame:10d} {cb / frame:7.2%}")
    lines.append(
        f"mean callback share of frame latency: {mean_share:.1%} "
        f"(paper: callback latency is only a portion of frame latency)"
    )
    record_figure("ablation_tracking", "\n".join(lines))

    # The paper's claim: callback latency systematically underestimates
    # frame latency (style/layout/paint/composite + VSync alignment).
    assert all(cb < frame for cb, frame in pairs)
    assert mean_share < 0.95
