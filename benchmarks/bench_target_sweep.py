"""The QoS-target energy dial — the language's central premise.

Sweeps explicit per-frame targets (Table 2's ``continuous, ti, tu``
form) over Cnet's menu animation and plots energy, violations, and
big-cluster share per target.  The curve is the paper's thesis in one
table: expressing the latency a user actually needs converts directly
into energy, with a knee where the little cluster becomes feasible and
diminishing returns past the refresh interval.
"""

from conftest import run_once

from repro.evaluation.report import ascii_bars
from repro.evaluation.target_sweep import run_target_sweep

TARGETS_MS = (8.0, 12.0, 16.6, 25.0, 33.3, 50.0, 80.0)


def test_target_sweep_energy_dial(benchmark, record_figure):
    points = run_once(benchmark, lambda: run_target_sweep("cnet", TARGETS_MS))

    lines = ["QoS-target sweep (Cnet menu animation, GreenWeb runtime)",
             f"{'target':>8s} {'energy (mJ)':>12s} {'viol %':>7s} {'big %':>6s} {'frames':>7s}"]
    for p in points:
        lines.append(
            f"{p.target_ms:7.1f}m {p.active_energy_j*1000:12.1f} "
            f"{p.mean_violation_pct:7.2f} {p.big_share*100:6.1f} {p.frames:7d}"
        )
    lines.append("")
    lines.append("energy vs annotated target:")
    lines.append(ascii_bars(
        [f"{p.target_ms:5.1f} ms" for p in points],
        [p.active_energy_j * 1000 for p in points],
        unit=" mJ",
    ))
    record_figure("target_sweep", "\n".join(lines))

    by_target = {p.target_ms: p for p in points}
    # The dial works: relaxing 8 ms -> 80 ms saves a large factor.
    assert by_target[80.0].active_energy_j < 0.4 * by_target[8.0].active_energy_j
    # Energy is non-increasing to first order (allow small local noise).
    energies = [p.active_energy_j for p in points]
    for earlier, later in zip(energies, energies[2:]):
        assert later < earlier * 1.1
    # The little-cluster knee: big share collapses once the target
    # crosses the little cluster's per-frame capability.
    assert by_target[16.6].big_share > 0.8
    assert by_target[33.3].big_share < 0.5
    # Unattainably tight targets violate (frames cannot beat the
    # pipeline), looser ones do not.
    assert by_target[8.0].mean_violation_pct > by_target[80.0].mean_violation_pct
