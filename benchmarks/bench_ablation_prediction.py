"""Ablation (Sec. 6.2): how accurate is the runtime's fitted model?

The paper's runtime trusts a two-sample fit of Eq. 1 plus feedback.
This benchmark quantifies the model's stable-phase prediction error per
workload class — steady animations (Craigslist) should be tight, while
surge-prone animations (W3Schools) should show the fat error tail that
motivates the paper's Sec. 8 suggestion of profiling-guided prediction.
"""

from conftest import run_once

from repro.browser.engine import Browser
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import UsageScenario
from repro.policies import POLICIES
from repro.evaluation.analysis import prediction_accuracy
from repro.hardware.platform import odroid_xu_e
from repro.workloads.interactions import InteractionDriver
from repro.workloads.registry import build_app

APPS = ("craigslist", "paperjs", "w3schools", "msn")


def _accuracy_for(app: str):
    bundle = build_app(app)
    platform = odroid_xu_e(record_power_intervals=False)
    registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
    runtime = POLICIES.build("greenweb", platform, registry, UsageScenario.USABLE)
    browser = Browser(platform, bundle.page, policy=runtime)
    InteractionDriver(browser).schedule(bundle.micro_trace)
    platform.run_for(bundle.micro_trace.duration_us + 4_000_000)
    return prediction_accuracy(platform.trace)


def _matrix():
    return {app: _accuracy_for(app) for app in APPS}


def test_ablation_prediction_accuracy(benchmark, record_figure):
    results = run_once(benchmark, _matrix)
    lines = [
        "Ablation: stable-phase prediction accuracy (usable scenario)",
        f"{'app':12s} {'pairs':>6s} {'mean |err|':>10s} {'p90 |err|':>10s} {'under %':>8s}",
    ]
    for app, acc in results.items():
        lines.append(
            f"{app:12s} {acc.pairs:6d} {acc.mean_abs_rel_error:10.1%} "
            f"{acc.p90_abs_rel_error:10.1%} {acc.under_prediction_rate:8.1%}"
        )
    record_figure("ablation_prediction", "\n".join(lines))

    for app, acc in results.items():
        # Continuous apps produce hundreds of pairs; MSN's single taps
        # produce one stable pair per post-profiling event.
        assert acc.pairs >= 4, f"{app}: too few prediction pairs"
    # Steady scroll frames predict more tightly than surge-prone panes.
    assert (
        results["craigslist"].mean_abs_rel_error
        < results["w3schools"].mean_abs_rel_error
    )
    # Overall the model is usable: mean error well under 100%.
    for acc in results.values():
        assert acc.mean_abs_rel_error < 1.0
