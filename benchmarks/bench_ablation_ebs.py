"""Ablation (Sec. 9): GreenWeb vs. annotation-free event-based
scheduling (EBS, Zhu et al. HPCA 2015).

The paper argues EBS's runtime-measured latency is "merely an artifact
of a particular mobile system's capability", while GreenWeb
annotations "express inherent user QoS expectations".  This benchmark
quantifies the two failure modes on the apps where they bite:

* **Cnet / MSN** (tight inherent targets): EBS under-delivers QoS.
* **LZMA-JS / CamanJS** (loose inherent targets): EBS over-delivers
  performance and wastes energy.
"""

from conftest import run_once

from repro.core.qos import UsageScenario
from repro.evaluation.runner import run_workload

I = UsageScenario.IMPERCEPTIBLE
APPS = ("cnet", "msn", "lzma_js", "camanjs")


def _matrix():
    out = {}
    for app in APPS:
        out[app] = {
            "greenweb": run_workload(app, "greenweb", I, "micro"),
            "ebs": run_workload(app, "ebs", I, "micro"),
        }
    return out


def test_ablation_greenweb_vs_ebs(benchmark, record_figure):
    results = run_once(benchmark, _matrix)
    lines = [
        "Ablation (Sec. 9): GreenWeb vs annotation-free EBS (imperceptible targets)",
        f"{'app':10s} {'policy':10s} {'energy (mJ)':>12s} {'violations':>11s}",
    ]
    for app, runs in results.items():
        for policy, run in runs.items():
            lines.append(
                f"{app:10s} {policy:10s} {run.active_energy_j*1000:12.1f} "
                f"{run.mean_violation_pct:10.2f}%"
            )
    record_figure("ablation_ebs", "\n".join(lines))

    # Failure mode 1: EBS violates tight inherent targets.
    for app in ("cnet", "msn"):
        assert (
            results[app]["ebs"].mean_violation_pct
            > results[app]["greenweb"].mean_violation_pct
        )
    # Failure mode 2: EBS wastes energy on latency-tolerant events.
    for app in ("lzma_js", "camanjs"):
        assert (
            results[app]["ebs"].active_energy_j
            > results[app]["greenweb"].active_energy_j
        )
