"""Ablation (Sec. 7.3 / Fig. 12 discussion): fast voltage regulators.

"The CPU frequency change dwarfs core migrations and dominates the
configuration switching.  Thus, fast DVFS is desired.  Our results
suggest that a fast on-chip voltage regulator that is increasingly
prevalent in server processors is also beneficial in mobile CPUs."

This ablation compares the default platform (100 us frequency-switch
overhead) with the IVR variant (5 us) on the most switch-happy
workload, and also verifies the paper's baseline observation that at
100 us/20 us the overhead has "minimal performance impact" against
millisecond-scale QoS targets.
"""

from conftest import run_once

from repro.browser.engine import Browser
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import UsageScenario
from repro.policies import POLICIES
from repro.hardware.platform import odroid_xu_e
from repro.workloads.interactions import InteractionDriver
from repro.workloads.registry import build_app


def _run(fast_vr: bool):
    bundle = build_app("w3schools")
    platform = odroid_xu_e(
        record_power_intervals=False, fast_voltage_regulators=fast_vr
    )
    registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
    runtime = POLICIES.build("greenweb", platform, registry, UsageScenario.IMPERCEPTIBLE)
    browser = Browser(platform, bundle.page, policy=runtime)
    driver = InteractionDriver(browser)
    driver.schedule(bundle.micro_trace)
    platform.run_for(bundle.micro_trace.duration_us + 4_000_000)
    latencies = browser.tracker.all_frame_latencies_us()
    mean_latency = sum(latencies) / len(latencies) if latencies else 0
    return {
        "energy_j": platform.meter.total_j,
        "mean_frame_latency_us": mean_latency,
        "freq_switches": platform.dvfs.freq_switches,
        "migrations": platform.dvfs.migrations,
        "frames": browser.stats.frames,
    }


def _matrix():
    return {"default (100us)": _run(False), "ivr (5us)": _run(True)}


def test_ablation_fast_voltage_regulators(benchmark, record_figure):
    results = run_once(benchmark, _matrix)
    lines = ["Ablation: DVFS switching overhead (W3Schools micro, imperceptible)"]
    for label, r in results.items():
        lines.append(
            f"  {label:16s} energy={r['energy_j']*1000:8.1f} mJ "
            f"mean-frame={r['mean_frame_latency_us']/1000:6.2f} ms "
            f"switches={r['freq_switches']}+{r['migrations']} frames={r['frames']}"
        )
    record_figure("ablation_ivr", "\n".join(lines))

    default = results["default (100us)"]
    ivr = results["ivr (5us)"]
    # The paper's baseline point: 100 us overheads are already small
    # against ms-scale targets — IVRs shave latency but by little.
    assert ivr["mean_frame_latency_us"] <= default["mean_frame_latency_us"] * 1.02
    relative_gain = 1 - ivr["mean_frame_latency_us"] / default["mean_frame_latency_us"]
    assert relative_gain < 0.15  # "minimal performance impact" at 100 us
