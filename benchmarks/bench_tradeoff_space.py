"""The ACMP trade-off space (paper Sec. 2 / Sec. 6.1 motivation).

"The ACMP architecture ... is long known to provide a wide
performance-energy trade-off space."  This benchmark pins every one of
the 17 static <cluster, frequency> configurations, maps the
latency/energy space for one workload, and checks that the GreenWeb
runtime's dynamic choices land on or near the static Pareto frontier.
"""

from conftest import run_once

from repro.core.qos import UsageScenario
from repro.evaluation.analysis import pareto_frontier, run_tradeoff_space
from repro.evaluation.runner import run_workload


def _sweep():
    return run_tradeoff_space("cnet")


def test_tradeoff_space(benchmark, record_figure):
    points = run_once(benchmark, _sweep)
    frontier = pareto_frontier(points)
    frontier_labels = {p.label for p in frontier}

    lines = [
        "ACMP static-configuration trade-off space (Cnet micro interaction)",
        f"{'config':14s} {'latency (ms)':>13s} {'energy (mJ)':>12s} {'viol %':>7s} {'pareto':>7s}",
    ]
    for point in sorted(points, key=lambda p: p.mean_frame_latency_us):
        lines.append(
            f"{point.label:14s} {point.mean_frame_latency_us/1000:13.2f} "
            f"{point.active_energy_j*1000:12.1f} {point.mean_violation_pct:7.2f} "
            f"{'*' if point.label in frontier_labels else '':>7s}"
        )
    green = run_workload("cnet", "greenweb", UsageScenario.IMPERCEPTIBLE, "micro")
    lines.append(
        f"{'greenweb-I':14s} {'(dynamic)':>13s} {green.active_energy_j*1000:12.1f} "
        f"{green.mean_violation_pct:7.2f}"
    )
    record_figure("tradeoff_space", "\n".join(lines))

    assert len(points) == 17
    # Wide space: >2x latency spread and measurable energy spread.
    latencies = [p.mean_frame_latency_us for p in points]
    energies = [p.active_energy_j for p in points]
    assert max(latencies) > 2.0 * min(latencies)
    assert max(energies) > 1.3 * min(energies)
    # The frontier spans both clusters.
    assert {p.cluster for p in frontier} == {"big", "little"}

    # GreenWeb's dynamic schedule beats every static configuration that
    # achieves comparable QoS (within 2x of its violation level).
    comparable = [
        p for p in points if p.mean_violation_pct <= max(2.0 * green.mean_violation_pct, 2.0)
    ]
    assert comparable, "no static config achieves comparable QoS"
    assert green.active_energy_j < max(p.active_energy_j for p in comparable)
