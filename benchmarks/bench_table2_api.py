"""Table 2: the GreenWeb API specification, validated form by form.

Table 2 defines the three declaration forms and their semantics; this
benchmark drives each form through the real parser + registry + runtime
lookup path and prints the specification as implemented.
"""

from conftest import run_once

from repro.core.annotations import AnnotationRegistry
from repro.core.qos import (
    CONTINUOUS_DEFAULT,
    SINGLE_LONG_DEFAULT,
    SINGLE_SHORT_DEFAULT,
    QoSTarget,
    QoSType,
    UsageScenario,
)
from repro.web import Document
from repro.web.css.parser import parse_stylesheet

FORMS = (
    (
        "E:QoS { onevent-qos: continuous }",
        "div#e:QoS { ontouchstart-qos: continuous; }",
        "touchstart",
        "continuously optimise every associated frame; Table 1 defaults",
    ),
    (
        "E:QoS { onevent-qos: single, short|long }",
        "div#e:QoS { onclick-qos: single, long; }",
        "click",
        "optimise the single response frame; Table 1 defaults by keyword",
    ),
    (
        "E:QoS { onevent-qos: <type>, ti, tu }",
        "div#e:QoS { ontouchmove-qos: continuous, 20, 100; }",
        "touchmove",
        "explicit TI/TU values (both must appear or be omitted together)",
    ),
)


def _drive_forms():
    rows = []
    for syntax, css, event, semantics in FORMS:
        document = Document()
        element = document.create_element("div", element_id="e")
        registry = AnnotationRegistry.from_stylesheet(parse_stylesheet(css))
        spec = registry.lookup(element, event)
        rows.append((syntax, css.strip(), event, spec, semantics))
    return rows


def test_table2_api_specification(benchmark, record_figure):
    rows = run_once(benchmark, _drive_forms)
    lines = ["Table 2: GreenWeb API forms, as parsed and resolved"]
    for syntax, css, event, spec, semantics in rows:
        lines.append(f"  form:      {syntax}")
        lines.append(f"  example:   {css}")
        lines.append(f"  resolves:  ({event}) -> {spec}")
        lines.append(f"  semantics: {semantics}")
        lines.append("")
    record_figure("table2", "\n".join(lines))

    continuous_spec = rows[0][3]
    single_long_spec = rows[1][3]
    explicit_spec = rows[2][3]

    # Form 1: continuous with Table 1 defaults.
    assert continuous_spec.qos_type is QoSType.CONTINUOUS
    assert continuous_spec.target == CONTINUOUS_DEFAULT
    # Form 2: single with keyword defaults.
    assert single_long_spec.qos_type is QoSType.SINGLE
    assert single_long_spec.target == SINGLE_LONG_DEFAULT
    assert SINGLE_SHORT_DEFAULT.imperceptible_ms == 100  # the other keyword
    # Form 3: explicit TI/TU in milliseconds, scenario-selected.
    assert explicit_spec.target == QoSTarget(20, 100)
    assert explicit_spec.target_ms(UsageScenario.IMPERCEPTIBLE) == 20
    assert explicit_spec.target_ms(UsageScenario.USABLE) == 100
