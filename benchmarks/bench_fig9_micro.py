"""Figs. 9a/9b: micro-benchmark energy savings and QoS violations.

Paper reference points: GreenWeb saves 31.9% (imperceptible) and 78.0%
(usable) on average vs. Perf, with ~1.3% / ~1.2% added violations; the
single-type events with the largest violations are MSN, LZMA-JS, and
BBC (profiling runs), and continuous events amortize profiling.
"""

import statistics

from conftest import run_once

from repro.core.qos import QoSType
from repro.evaluation.experiments import run_fig9_microbenchmarks
from repro.evaluation.report import render_fig9


def test_fig9_microbenchmarks(benchmark, record_figure):
    rows = run_once(benchmark, run_fig9_microbenchmarks)
    record_figure("fig9_micro", render_fig9(rows))

    assert len(rows) == 12
    mean_i = statistics.mean(r.greenweb_i_energy_norm_pct for r in rows)
    mean_u = statistics.mean(r.greenweb_u_energy_norm_pct for r in rows)

    # Shape: GreenWeb saves substantial energy in both scenarios, and
    # usable saves more than imperceptible (paper: 31.9% vs 78.0%).
    assert mean_i < 85.0
    assert mean_u < mean_i

    # Shape: continuous events show a large I-vs-U gap (they must run
    # big for 16.6 ms but fit little at 33.3 ms), Sec. 7.2.
    continuous = [r for r in rows if r.qos_type is QoSType.CONTINUOUS]
    gap = statistics.mean(
        r.greenweb_i_energy_norm_pct - r.greenweb_u_energy_norm_pct for r in continuous
    )
    assert gap > 10.0

    # Shape: the single-type violation outliers are the paper's trio.
    singles = {r.app: r.greenweb_i_added_violation_pct for r in rows
               if r.qos_type is QoSType.SINGLE}
    trio = {"msn", "lzma_js", "bbc"}
    others = {app: v for app, v in singles.items() if app not in trio}
    assert max(singles[a] for a in trio) > max(others.values())

    # Shape: violations stay small for continuous events (amortized).
    for row in continuous:
        assert row.greenweb_i_added_violation_pct < 8.0
