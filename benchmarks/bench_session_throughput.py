"""Session throughput benchmark: sessions/second for one worker.

Measures how fast :func:`repro.evaluation.runner.run_workload` executes
the full-interaction workload at each tracing level:

* ``full``  — records retained and indexed (the interactive default);
* ``gated`` — category-gated, non-retaining log feeding the streaming
  metric folds (the fleet default: constant memory per session).

Each level is measured twice: scalar (batch 1, one session at a time)
and batched (all seeds advanced in lockstep on one
:class:`~repro.sim.batch.BatchRunner` frontier — the ``fleet --batch``
execution mode, byte-identical results by the differential suite's
guarantee).

The checked-in ``BENCH_session_throughput.json`` at the repo root also
records the pre-PR baseline — the same workload measured on the scan
path before indexed/gated tracing, streaming folds, the demand-driven
VSync source, tuple heap entries, and power memoization landed — which
is what the headline speedup is quoted against.

Usage::

    python benchmarks/bench_session_throughput.py                 # full run
    python benchmarks/bench_session_throughput.py --smoke         # CI-sized
    python benchmarks/bench_session_throughput.py --json-out F    # write JSON
    python benchmarks/bench_session_throughput.py --smoke \
        --check BENCH_session_throughput.json                     # CI gate

``--check`` exits non-zero when the measured gated throughput falls
more than ``--tolerance`` (default 20%) below the checked-in value —
the CI regression gate for the session hot path.  The reference is
first scaled by ``measured_full / checked_in_full`` from the same
process: both trace levels see identical ambient load, so the scale
factor cancels machine speed and the gate fires only when *gated*
regresses relative to *full* — not when the runner is simply slower
than the machine that produced the checked-in numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.qos import UsageScenario
from repro.evaluation.batch import run_workload_jobs_batched
from repro.evaluation.runner import run_workload

APP = "cnet"
GOVERNOR = "greenweb"
TRACE_KIND = "full"


def run_sessions(trace_level: str, seeds: int) -> None:
    for seed in range(seeds):
        run_workload(
            APP,
            GOVERNOR,
            UsageScenario.IMPERCEPTIBLE,
            trace_kind=TRACE_KIND,
            seed=seed,
            trace_level=trace_level,
        )


def run_sessions_batched(trace_level: str, seeds: int) -> None:
    run_workload_jobs_batched([
        {
            "app": APP,
            "governor": GOVERNOR,
            "scenario": "imperceptible",
            "trace_kind": TRACE_KIND,
            "seed": seed,
            "trace_level": trace_level,
        }
        for seed in range(seeds)
    ])


def measure(run, trace_level: str, seeds: int, rounds: int) -> float:
    """Best-of-``rounds`` sessions/second (best-of damps scheduler
    noise on shared CI runners)."""
    best = 0.0
    for _ in range(rounds):
        started = time.perf_counter()
        run(trace_level, seeds)
        elapsed = time.perf_counter() - started
        best = max(best, seeds / elapsed)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: fewer seeds and rounds",
    )
    parser.add_argument("--json-out", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--check", metavar="BASELINE_JSON",
        help="fail if gated sessions/s regresses vs this checked-in file",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional regression for --check (default: 0.20)",
    )
    args = parser.parse_args(argv)

    seeds, rounds = (8, 3) if args.smoke else (12, 3)

    # Warm import/registry caches outside the timed region.
    run_sessions("gated", 1)

    results = {}
    batched = {}
    for level in ("full", "gated"):
        rate = measure(run_sessions, level, seeds, rounds)
        results[level] = rate
        print(f"trace_level={level:6s} {rate:7.2f} sessions/s "
              f"({seeds} sessions x {rounds} rounds, best, batch=1)")
        batched_rate = measure(run_sessions_batched, level, seeds, rounds)
        batched[level] = batched_rate
        print(f"trace_level={level:6s} {batched_rate:7.2f} sessions/s "
              f"({seeds} sessions x {rounds} rounds, best, batch={seeds})")

    payload = {
        "benchmark": "session_throughput",
        "workload": {
            "app": APP,
            "governor": GOVERNOR,
            "trace_kind": TRACE_KIND,
            "seeds": seeds,
            "rounds": rounds,
            "smoke": args.smoke,
        },
        "sessions_per_s": {level: round(rate, 2) for level, rate in results.items()},
        "sessions_per_s_batched": {
            "batch": seeds,
            **{level: round(rate, 2) for level, rate in batched.items()},
        },
    }
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        reference = baseline["sessions_per_s"]["gated"]
        # Normalise for machine speed: this runner's "full" throughput
        # vs the one that produced the checked-in file.  Both levels
        # run back to back here, so ambient slowdown cancels and the
        # gate measures gated-relative-to-full, not absolute speed.
        machine_scale = results["full"] / baseline["sessions_per_s"]["full"]
        floor = reference * machine_scale * (1.0 - args.tolerance)
        measured = results["gated"]
        print(f"regression gate: measured {measured:.2f} sessions/s vs "
              f"checked-in {reference:.2f} x machine scale "
              f"{machine_scale:.2f} (floor {floor:.2f})")
        if measured < floor:
            print("FAIL: gated session throughput regressed "
                  f">{args.tolerance:.0%} vs checked-in baseline "
                  "(machine-speed normalised)", file=sys.stderr)
            return 1
        print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
