"""Table 3: application characteristics (events, durations, annotation
coverage) — paper values vs. what the synthetic workloads measure."""

from conftest import run_once

from repro.evaluation.experiments import run_table3_characteristics
from repro.evaluation.report import render_table3


def test_table3_application_characteristics(benchmark, record_figure):
    rows = run_once(benchmark, run_table3_characteristics)
    record_figure("table3", render_table3(rows))

    assert len(rows) == 12

    # Event counts match Table 3 exactly.
    for row in rows:
        assert row.measured_events == row.paper_events

    # Durations within a second of the paper's column.
    for row in rows:
        assert abs(row.measured_duration_s - row.paper_duration_s) <= 1.0

    # Paper Sec. 7.3 averages: ~94 events, ~43 s per interaction.
    mean_events = sum(r.measured_events for r in rows) / len(rows)
    mean_duration = sum(r.measured_duration_s for r in rows) / len(rows)
    assert 90 <= mean_events <= 98
    assert 38 <= mean_duration <= 46

    # Annotation coverage tracks the paper's column.
    for row in rows:
        assert abs(row.measured_annotation_pct - row.paper_annotation_pct) <= 15.0
