"""Ablation (Sec. 8): multi-application environments.

"We believe that this ACMP-based runtime design is also applicable
when multiple mobile applications are concurrently consuming CPU
resources ... the GreenWeb runtime system will still have a large
trade-off space to schedule, although with fewer resources."

This benchmark runs the Cnet micro interaction under GreenWeb with and
without a background application (music-decode-like periodic bursts on
a spare core) and checks the paper's claim: QoS holds, at an energy
premium that reflects the background work riding the foreground's
configuration choices.
"""

from conftest import run_once

from repro.browser.engine import Browser
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import UsageScenario
from repro.policies import POLICIES
from repro.evaluation.metrics import event_violation_pct, mean_violation_pct
from repro.hardware.platform import odroid_xu_e
from repro.workloads.background import BackgroundApplication
from repro.workloads.interactions import InteractionDriver
from repro.workloads.registry import build_app

I = UsageScenario.IMPERCEPTIBLE


def _run(with_background: bool):
    bundle = build_app("cnet")
    platform = odroid_xu_e(record_power_intervals=False)
    registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
    runtime = POLICIES.build("greenweb", platform, registry, I)
    browser = Browser(platform, bundle.page, policy=runtime)
    background = None
    if with_background:
        background = BackgroundApplication(platform, period_ms=25, burst_mcycles=4.0)
        background.start()
    driver = InteractionDriver(browser)
    driver.schedule(bundle.micro_trace)
    platform.run_for(bundle.micro_trace.duration_us + 4_000_000)

    violations = []
    for scripted, record in zip(bundle.micro_trace.sorted_events(),
                                browser.tracker.records):
        target = bundle.page.document.get_element_by_id(scripted.target_id)
        spec = registry.lookup(target, scripted.event_type)
        if spec is not None:
            violations.append(event_violation_pct(record, spec, I))
    return {
        "energy_j": platform.meter.total_j,
        "violations_pct": mean_violation_pct(violations),
        "frames": browser.stats.frames,
        "bursts": background.bursts_run if background else 0,
    }


def _matrix():
    return {"foreground only": _run(False), "with background app": _run(True)}


def test_ablation_multi_app_contention(benchmark, record_figure):
    results = run_once(benchmark, _matrix)
    lines = ["Ablation (Sec. 8): multi-app contention (Cnet, imperceptible)"]
    for label, r in results.items():
        lines.append(
            f"  {label:22s} energy={r['energy_j']*1000:8.1f} mJ "
            f"violations={r['violations_pct']:6.2f}% frames={r['frames']} "
            f"bg-bursts={r['bursts']}"
        )
    record_figure("ablation_contention", "\n".join(lines))

    alone = results["foreground only"]
    contended = results["with background app"]
    assert contended["bursts"] > 300
    # Energy rises with the extra work...
    assert contended["energy_j"] > alone["energy_j"]
    # ...but QoS does not collapse (the Sec. 8 claim).
    assert contended["violations_pct"] < alone["violations_pct"] + 5.0
