"""Figs. 11a/11b: architecture configuration distribution.

Paper reference points: GreenWeb biases toward big-core (A15)
configurations much more under the imperceptible scenario than under
usable, and dynamically adapts configurations per QoS target — the
evidence that ACMP hardware benefits mobile web when the runtime uses
it intelligently.
"""

import statistics

from conftest import run_once

from repro.evaluation.experiments import run_fig11_distribution
from repro.evaluation.report import render_fig11


def test_fig11_configuration_distribution(benchmark, record_figure):
    rows = run_once(benchmark, run_fig11_distribution)
    record_figure("fig11_distribution", render_fig11(rows))

    assert len(rows) == 12

    # Shape: imperceptible biases toward big much more than usable.
    mean_big_i = statistics.mean(r.big_fraction_i for r in rows)
    mean_big_u = statistics.mean(r.big_fraction_u for r in rows)
    assert mean_big_i > 2.0 * mean_big_u

    # Shape: per-app, I-mode never uses big *less* than U-mode by more
    # than noise.
    for row in rows:
        assert row.big_fraction_i >= row.big_fraction_u - 0.10

    # Shape: the apps the paper singles out as little-core-feasible in
    # I-mode (Todo, CamanJS — light frames vs. loose targets) indeed
    # run overwhelmingly on the little cluster.
    by_app = {r.app: r for r in rows}
    for app in ("todo", "camanjs"):
        assert by_app[app].big_fraction_i < 0.25
