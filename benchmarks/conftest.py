"""Shared helpers for the per-figure benchmark harnesses.

Each benchmark regenerates one of the paper's tables/figures, prints
the rows, and writes them to ``benchmarks/results/<name>.txt`` so the
series survive pytest's output capturing.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_figure():
    """Persist + echo a rendered figure. Usage:
    ``record_figure("fig9", text)``."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing
    (full figure matrices are seconds-long; statistical repetition
    belongs to the simulator's own determinism, not wall time)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
