"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP-660 editable
installs (``pip install -e .`` with pyproject-only metadata) cannot build
an editable wheel.  This shim lets pip fall back to the classic
``setup.py develop`` editable path; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
