"""Web substrate: DOM, events, CSS, HTML, and the script model.

These modules model the web-facing half of the paper's stack:

* :mod:`repro.web.dom` — the Document Object Model tree that HTML
  describes and on which events fire.
* :mod:`repro.web.events` — the mobile event vocabulary the paper
  targets (click, scroll, touchstart, touchend, touchmove) and the LTM
  (Loading / Tapping / Moving) interaction model of Sec. 3.1.
* :mod:`repro.web.css` — a CSS tokenizer/parser/object model rich
  enough to host both ordinary style rules and GreenWeb's ``:QoS``
  extension rules, plus CSS transitions/animations.
* :mod:`repro.web.html` — a minimal HTML parser for building DOMs.
* :mod:`repro.web.script` — the JavaScript-stand-in callback model:
  callbacks describe CPU work and effects (style writes, rAF, timers)
  that the browser engine then simulates with correct timing.
"""

from repro.web.dom import Document, Element
from repro.web.events import (
    Event,
    EventType,
    InteractionKind,
    MOBILE_EVENT_TYPES,
)
from repro.web.html import parse_html
from repro.web.script import Callback, ScriptContext, ScriptEffects

__all__ = [
    "Document",
    "Element",
    "Event",
    "EventType",
    "InteractionKind",
    "MOBILE_EVENT_TYPES",
    "parse_html",
    "Callback",
    "ScriptContext",
    "ScriptEffects",
]
