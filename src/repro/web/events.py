"""Events and the LTM user-interaction model (paper Sec. 3.1).

The paper's scope is the mobile event vocabulary: ``click``,
``scroll``, ``touchstart``, ``touchend`` and ``touchmove`` (desktop
events like ``drag``/``mouseover`` are explicitly excluded).  The LTM
model maps the three primitive user interactions onto event sequences:

* **Loading** (L): the page ``load`` event.
* **Tapping** (T): ``touchstart`` then ``touchend`` then ``click``.
* **Moving** (M): ``touchstart`` then a stream of ``touchmove`` /
  ``scroll`` events, then ``touchend``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DomError
from repro.web.dom import Element


class EventType(str, enum.Enum):
    """DOM event names used in the reproduction.

    The five mobile-interaction events are the paper's annotation
    targets; ``LOAD`` models page loading; ``TRANSITIONEND`` and
    ``ANIMATIONEND`` exist because AutoGreen registers them to detect
    CSS transitions/animations (paper Sec. 5).
    """

    CLICK = "click"
    SCROLL = "scroll"
    TOUCHSTART = "touchstart"
    TOUCHEND = "touchend"
    TOUCHMOVE = "touchmove"
    LOAD = "load"
    TRANSITIONEND = "transitionend"
    ANIMATIONEND = "animationend"

    def __str__(self) -> str:
        return self.value


#: The events that mobile user interactions trigger directly — the set
#: GreenWeb annotations target (paper Sec. 3.1).
MOBILE_EVENT_TYPES: frozenset[EventType] = frozenset(
    {
        EventType.CLICK,
        EventType.SCROLL,
        EventType.TOUCHSTART,
        EventType.TOUCHEND,
        EventType.TOUCHMOVE,
        EventType.LOAD,
    }
)

#: Desktop-only events the paper excludes; kept for validation tests.
DESKTOP_EVENT_TYPES: frozenset[str] = frozenset({"drag", "mouseover", "mouseout", "wheel"})


def coerce_event_type(name: "EventType | str") -> EventType:
    """Convert a string like ``"click"`` into an :class:`EventType`."""
    if isinstance(name, EventType):
        return name
    try:
        return EventType(name)
    except ValueError:
        raise DomError(
            f"unknown event type {name!r}; known: {[e.value for e in EventType]}"
        ) from None


class InteractionKind(enum.Enum):
    """The LTM primitives: Loading, Tapping, Moving (paper Fig. 2)."""

    LOADING = "loading"
    TAPPING = "tapping"
    MOVING = "moving"

    def __str__(self) -> str:
        return self.value


#: Which event types each LTM interaction can trigger (paper Table 1's
#: "Interaction" column maps the other way around).
INTERACTION_EVENTS: dict[InteractionKind, tuple[EventType, ...]] = {
    InteractionKind.LOADING: (EventType.LOAD,),
    InteractionKind.TAPPING: (EventType.TOUCHSTART, EventType.TOUCHEND, EventType.CLICK),
    InteractionKind.MOVING: (
        EventType.TOUCHSTART,
        EventType.TOUCHMOVE,
        EventType.SCROLL,
        EventType.TOUCHEND,
    ),
}


@dataclass
class Event:
    """A dispatched DOM event instance.

    Attributes:
        type: the event type.
        target: the element the event fired on.
        input_id: unique id of the user *input* that produced the event
            (the UID of the Msg metadata in the paper's Fig. 8); -1
            until the browser assigns one.
        time_us: dispatch timestamp in simulated microseconds.
    """

    type: EventType
    target: Element
    input_id: int = -1
    time_us: int = 0
    #: Free-form payload (e.g. scroll delta); not interpreted by the engine.
    detail: dict = field(default_factory=dict)

    @property
    def propagation_path(self) -> list[Element]:
        """Bubbling path: target first, then ancestors to the root."""
        return [self.target, *self.target.ancestors()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.type} on {self.target!r} input={self.input_id}>"


def dispatch_order(event: Event) -> list[tuple[Element, "object"]]:
    """Resolve the (element, callback) pairs to run for ``event``:
    capture phase first (root toward target), then target + bubble
    phase (target toward root) — the DOM event-flow model.

    The browser engine executes these as one callback task per pair;
    ``stopPropagation()`` from any callback halts the remainder.
    """
    pairs: list[tuple[Element, object]] = []
    path = event.propagation_path
    # Capture: ancestors root-first, excluding the target itself.
    for element in reversed(path[1:]):
        for callback in element.listeners(event.type.value, capture=True):
            pairs.append((element, callback))
    # Target (both phases fire at the target, capture-registered first).
    for callback in event.target.listeners(event.type.value, capture=True):
        pairs.append((event.target, callback))
    # Bubble: target then ancestors.
    for element in path:
        for callback in element.listeners(event.type.value):
            pairs.append((element, callback))
    return pairs
