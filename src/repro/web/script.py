"""The script (JavaScript stand-in) callback model.

Real web apps register JavaScript callbacks on DOM events; the callback
burns CPU, mutates style, registers ``requestAnimationFrame`` handlers,
sets timers, or calls library helpers like jQuery's ``animate()``.  The
reproduction models a callback as a Python function that *describes*
those actions against a recording :class:`ScriptContext`; the browser
engine then simulates their timing (CPU work becomes a task on the
renderer main thread, rAF handlers run at the next VSync, style writes
land when the callback task completes, and so on).

This two-phase design — describe first, simulate after — is what lets
the discrete-event engine charge the right amounts of work at the right
simulated moments, and it gives AutoGreen exactly the observation
points the paper describes (rAF registration, ``animate()`` calls, CSS
transition triggers; Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.errors import BrowserError
from repro.hardware.core import WorkUnit
from repro.web.dom import Document, Element

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.web.events import Event


@dataclass(frozen=True)
class StyleWrite:
    """A deferred style mutation (applied when the callback's simulated
    execution completes).

    Attributes:
        complexity: relative render cost of the resulting frame(s);
            1.0 means "typical frame for this application".
    """

    element: Element
    property: str
    value: str
    complexity: float = 1.0


@dataclass(frozen=True)
class RafRequest:
    """A ``requestAnimationFrame`` registration."""

    callback: "Callback"


@dataclass(frozen=True)
class TimeoutRequest:
    """A ``setTimeout`` registration."""

    callback: "Callback"
    delay_ms: float


@dataclass(frozen=True)
class IntervalRequest:
    """A ``setInterval`` registration.

    Attributes:
        tag: name for a later ``clearInterval``; auto-generated when
            the caller does not supply one.
        max_fires: safety bound so un-cleared intervals cannot run the
            simulation forever.
    """

    callback: "Callback"
    period_ms: float
    tag: str
    max_fires: int = 600


@dataclass(frozen=True)
class ClassMutation:
    """A deferred ``classList.add``/``classList.remove``."""

    element: Element
    class_name: str
    add: bool


@dataclass(frozen=True)
class AnimateCall:
    """A jQuery-style ``animate()`` call: the library drives a rAF loop
    internally for ``duration_ms``, producing one frame per VSync.

    Attributes:
        frame_complexity: render cost of each animation frame — either
            a scalar or a zero-argument callable drawn per frame (for
            workloads whose animation frames surge in complexity).
        frame_script_cycles: CPU cycles the library's internal tick
            burns per frame (the JS side of the animation).
    """

    element: Element
    property: str
    duration_ms: float
    frame_complexity: "float | Callable[[], float]" = 1.0
    frame_script_cycles: float = 50_000.0


@dataclass(frozen=True)
class ScriptError:
    """An exception escaping a callback (a page's "JS error")."""

    callback_name: str
    message: str
    exception_type: str


@dataclass
class ScriptEffects:
    """Everything a callback did, as recorded by :class:`ScriptContext`."""

    work: WorkUnit = field(default_factory=lambda: WorkUnit(0.0, 0.0))
    style_writes: list[StyleWrite] = field(default_factory=list)
    raf_requests: list[RafRequest] = field(default_factory=list)
    timeouts: list[TimeoutRequest] = field(default_factory=list)
    intervals: list[IntervalRequest] = field(default_factory=list)
    cleared_intervals: list[str] = field(default_factory=list)
    class_mutations: list[ClassMutation] = field(default_factory=list)
    animate_calls: list[AnimateCall] = field(default_factory=list)
    #: Explicitly requested repaint (mark_dirty) with its complexity.
    dirty_complexity: Optional[float] = None
    #: stopPropagation(): no further listeners in the bubble path run.
    propagation_stopped: bool = False
    #: preventDefault(): suppress the browser's default action for the
    #: event (native scrolling is the default action modelled here).
    default_prevented: bool = False
    #: exception that escaped the callback, if any (the engine contains
    #: it — a page's script error never crashes the browser).
    error: Optional[ScriptError] = None

    @property
    def uses_raf(self) -> bool:
        """True if the callback registered a rAF handler (AutoGreen's
        first "continuous" signal)."""
        return bool(self.raf_requests)

    @property
    def uses_animate(self) -> bool:
        """True if the callback invoked the jQuery-like ``animate()``
        (AutoGreen's second "continuous" signal)."""
        return bool(self.animate_calls)

    @property
    def needs_frame(self) -> bool:
        """True if the callback's effects require producing a frame."""
        return (
            bool(self.style_writes)
            or bool(self.class_mutations)
            or self.dirty_complexity is not None
        )

    @property
    def frame_complexity(self) -> float:
        """Render complexity of the frame these effects dirty (max of
        contributions; 0.0 when no frame is needed)."""
        values = [w.complexity for w in self.style_writes]
        if self.dirty_complexity is not None:
            values.append(self.dirty_complexity)
        return max(values) if values else 0.0


class ScriptContext:
    """The API surface a callback function programs against."""

    def __init__(
        self,
        document: Document,
        event: Optional["Event"] = None,
        state: Optional[dict] = None,
        rng: Optional[np.random.Generator] = None,
        now_ms: float = 0.0,
    ) -> None:
        self.document = document
        self.event = event
        #: Application-persistent state dict (shared across callbacks).
        self.state = state if state is not None else {}
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.now_ms = now_ms
        self.effects = ScriptEffects()

    # ------------------------------------------------------------------
    # CPU work
    # ------------------------------------------------------------------
    def do_work(self, cycles: float, fixed_us: float = 0.0) -> None:
        """Charge CPU work to this callback's execution (reference
        big-core cycles plus frequency-independent microseconds)."""
        if cycles < 0 or fixed_us < 0:
            raise BrowserError("work amounts must be non-negative")
        self.effects.work = self.effects.work + WorkUnit(cycles, fixed_us)

    # ------------------------------------------------------------------
    # DOM / style effects
    # ------------------------------------------------------------------
    def set_style(
        self, element: Element, prop: str, value: str, complexity: float = 1.0
    ) -> None:
        """Write a style property (may trigger a CSS transition if the
        page stylesheet declares one for ``prop`` on ``element``)."""
        self.effects.style_writes.append(StyleWrite(element, prop.lower(), value, complexity))

    def mark_dirty(self, complexity: float = 1.0) -> None:
        """Request a repaint without a specific property write (canvas
        drawing, text relayout, etc.)."""
        current = self.effects.dirty_complexity or 0.0
        self.effects.dirty_complexity = max(current, complexity)

    def add_class(self, element: Element, class_name: str, complexity: float = 0.5) -> None:
        """``element.classList.add(...)`` — applied when the callback's
        execution completes; dirties a frame (class changes restyle)."""
        self.effects.class_mutations.append(ClassMutation(element, class_name, add=True))
        self.mark_dirty(complexity)

    def remove_class(
        self, element: Element, class_name: str, complexity: float = 0.5
    ) -> None:
        """``element.classList.remove(...)``."""
        self.effects.class_mutations.append(ClassMutation(element, class_name, add=False))
        self.mark_dirty(complexity)

    def stop_propagation(self) -> None:
        """``event.stopPropagation()``: listeners on ancestors do not
        run for this event."""
        self.effects.propagation_stopped = True

    def prevent_default(self) -> None:
        """``event.preventDefault()``: suppress the browser's default
        action (modelled: native compositor scrolling)."""
        self.effects.default_prevented = True

    # ------------------------------------------------------------------
    # Scheduling effects
    # ------------------------------------------------------------------
    def request_animation_frame(self, callback: "Callback | Callable") -> None:
        """Register a handler to run right before the next frame
        (the paper's rAF animation idiom, Fig. 5)."""
        self.effects.raf_requests.append(RafRequest(Callback.wrap(callback)))

    def set_timeout(self, callback: "Callback | Callable", delay_ms: float) -> None:
        """Run ``callback`` after ``delay_ms`` of simulated time."""
        if delay_ms < 0:
            raise BrowserError(f"negative timeout: {delay_ms}")
        self.effects.timeouts.append(TimeoutRequest(Callback.wrap(callback), delay_ms))

    def set_interval(
        self,
        callback: "Callback | Callable",
        period_ms: float,
        tag: str = "",
        max_fires: int = 600,
    ) -> str:
        """Run ``callback`` every ``period_ms`` until
        :meth:`clear_interval` (or ``max_fires``).  Returns the tag."""
        if period_ms <= 0:
            raise BrowserError(f"non-positive interval period: {period_ms}")
        if max_fires < 1:
            raise BrowserError(f"max_fires must be >= 1, got {max_fires}")
        if not tag:
            tag = f"interval-{len(self.effects.intervals)}-{id(callback) & 0xFFFF:x}"
        self.effects.intervals.append(
            IntervalRequest(Callback.wrap(callback), period_ms, tag, max_fires)
        )
        return tag

    def clear_interval(self, tag: str) -> None:
        """``clearInterval``: stop a previously registered interval."""
        self.effects.cleared_intervals.append(tag)

    def animate(
        self,
        element: Element,
        prop: str,
        duration_ms: float,
        frame_complexity: "float | Callable[[], float]" = 1.0,
        frame_script_cycles: float = 50_000.0,
    ) -> None:
        """jQuery-style ``$(el).animate(...)``: library-driven animation
        for ``duration_ms`` (one frame per VSync).  ``frame_complexity``
        may be a callable drawn once per frame."""
        if duration_ms <= 0:
            raise BrowserError(f"non-positive animate duration: {duration_ms}")
        self.effects.animate_calls.append(
            AnimateCall(element, prop.lower(), duration_ms, frame_complexity, frame_script_cycles)
        )


class Callback:
    """A named script callback: ``fn(ctx: ScriptContext) -> None``."""

    __slots__ = ("fn", "name")

    def __init__(self, fn: Callable[[ScriptContext], None], name: str = "") -> None:
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "callback")

    @classmethod
    def wrap(cls, fn: "Callback | Callable") -> "Callback":
        """Accept either a bare function or an existing Callback."""
        return fn if isinstance(fn, Callback) else cls(fn)

    def invoke(self, ctx: ScriptContext) -> ScriptEffects:
        """Run the describing function and return the recorded effects.

        An exception escaping the function is *contained* — browsers do
        not crash on page script errors.  Effects recorded before the
        exception are kept (the partial work and DOM churn happened),
        and the error rides along in ``effects.error`` for the engine's
        console.  Simulator-infrastructure errors (BrowserError from
        misused context APIs) still propagate: those are library bugs,
        not page bugs.
        """
        try:
            self.fn(ctx)
        except BrowserError:
            raise
        except Exception as exc:  # noqa: BLE001 - the JS-error firewall
            ctx.effects.error = ScriptError(
                callback_name=self.name,
                message=str(exc),
                exception_type=type(exc).__name__,
            )
        return ctx.effects

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Callback {self.name}>"
