"""Document Object Model.

A deliberately small DOM: elements have a tag, an optional id, a class
set, attributes, children, and per-event listener lists.  That is all
HTML contributes to the paper's system — GreenWeb selects elements via
CSS selectors and attaches QoS metadata to (element, event) pairs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.errors import DomError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.web.script import Callback


class ClassSet(set):
    """A set of class names that remembers insertion order.

    The DOM-visible ``class`` attribute is ordered text ("nav active"),
    and attribute selectors like ``[class^=nav]`` match against that
    text — so the order classes were written in must survive the set
    representation.  Iteration yields names in insertion order; all set
    membership operations keep their usual cost.
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        super().__init__()
        self._order: list[str] = []
        if isinstance(names, (set, frozenset)) and not isinstance(names, ClassSet):
            # A plain set has no meaningful order (and its iteration
            # order is hash-seed dependent): sort for determinism.
            names = sorted(names)
        for name in names:
            self.add(name)

    def add(self, name: str) -> None:
        if name not in self:
            super().add(name)
            self._order.append(name)

    def discard(self, name: str) -> None:
        if name in self:
            super().discard(name)
            self._order.remove(name)

    def remove(self, name: str) -> None:
        if name not in self:
            raise KeyError(name)
        self.discard(name)

    def update(self, names: Iterable[str]) -> None:
        for name in names:
            self.add(name)

    def clear(self) -> None:
        super().clear()
        self._order.clear()

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)


class Element:
    """One DOM element."""

    def __init__(
        self,
        tag: str,
        element_id: str = "",
        classes: Optional[Iterable[str]] = None,
        attributes: Optional[dict[str, str]] = None,
    ) -> None:
        if not tag or not tag.replace("-", "").isalnum():
            raise DomError(f"invalid tag name: {tag!r}")
        self.tag = tag.lower()
        self.id = element_id
        self.classes: ClassSet = ClassSet(classes or ())
        self.attributes: dict[str, str] = dict(attributes) if attributes else {}
        self.parent: Optional[Element] = None
        self.children: list[Element] = []
        #: Inline style properties (a plain property->value map).
        self.style: dict[str, str] = {}
        self._listeners: dict[str, list["Callback"]] = {}
        self._capture_listeners: dict[str, list["Callback"]] = {}
        self._document: Optional["Document"] = None

    # ------------------------------------------------------------------
    # Tree structure
    # ------------------------------------------------------------------
    def append_child(self, child: "Element") -> "Element":
        """Attach ``child`` as the last child; returns the child."""
        if child is self or child in self.ancestors():
            raise DomError("cannot append an element into itself or its ancestor chain")
        if child.parent is not None:
            child.parent.children.remove(child)
        child.parent = self
        self.children.append(child)
        child._adopt(self._document)
        return child

    def remove_child(self, child: "Element") -> None:
        """Detach ``child`` from this element."""
        if child.parent is not self:
            raise DomError(f"{child!r} is not a child of {self!r}")
        self.children.remove(child)
        child.parent = None
        child._adopt(None)

    def _adopt(self, document: Optional["Document"]) -> None:
        self._document = document
        if document is not None:
            document._index(self)
        for child in self.children:
            child._adopt(document)

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestors from parent to root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["Element"]:
        """Yield all descendants in document (pre-)order."""
        for child in self.children:
            yield child
            yield from child.descendants()

    @property
    def document(self) -> Optional["Document"]:
        return self._document

    # ------------------------------------------------------------------
    # Event listeners
    # ------------------------------------------------------------------
    def add_event_listener(
        self, event_type: str, callback: "Callback", capture: bool = False
    ) -> None:
        """Register a callback for ``event_type`` on this element.

        ``capture=True`` registers for the capture phase: the callback
        runs while the event travels root-to-target, *before* any
        target/bubble listener (the DOM's ``addEventListener``
        ``useCapture`` flag).
        """
        table = self._capture_listeners if capture else self._listeners
        table.setdefault(event_type, []).append(callback)

    def remove_event_listener(
        self, event_type: str, callback: "Callback", capture: bool = False
    ) -> None:
        table = self._capture_listeners if capture else self._listeners
        listeners = table.get(event_type, [])
        if callback not in listeners:
            raise DomError(f"callback not registered for {event_type!r}")
        listeners.remove(callback)

    def listeners(self, event_type: str, capture: bool = False) -> list["Callback"]:
        """Callbacks registered on this element for ``event_type``."""
        table = self._capture_listeners if capture else self._listeners
        return list(table.get(event_type, []))

    @property
    def listened_event_types(self) -> list[str]:
        """Event types that have at least one listener here (either
        phase)."""
        names = [name for name, cbs in self._listeners.items() if cbs]
        names.extend(
            name for name, cbs in self._capture_listeners.items()
            if cbs and name not in names
        )
        return names

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def class_attr(self) -> str:
        """The ``class`` attribute as source-ordered text ("nav active"),
        the string attribute selectors match against."""
        return " ".join(self.classes)

    def matches(self, selector: str) -> bool:
        """True if this element matches the CSS ``selector`` string."""
        from repro.web.css.selectors import parse_selector

        return parse_selector(selector).matches(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f"#{self.id}" if self.id else ""
        classes = "".join(f".{c}" for c in sorted(self.classes))
        return f"<Element {self.tag}{ident}{classes}>"


class Document:
    """A DOM document: a root ``<html>`` element plus indices."""

    def __init__(self) -> None:
        self.root = Element("html")
        self.root._document = self
        self._by_id: dict[str, Element] = {}

    def create_element(
        self,
        tag: str,
        element_id: str = "",
        classes: Optional[set[str]] = None,
        attributes: Optional[dict[str, str]] = None,
        parent: Optional[Element] = None,
    ) -> Element:
        """Create an element and (optionally) attach it under ``parent``
        (default: the document root)."""
        element = Element(tag, element_id, classes, attributes)
        target = parent if parent is not None else self.root
        target.append_child(element)
        return element

    def _index(self, element: Element) -> None:
        if element.id:
            existing = self._by_id.get(element.id)
            if existing is not None and existing is not element:
                raise DomError(f"duplicate element id {element.id!r}")
            self._by_id[element.id] = element

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        """Look up an attached element by id (None if absent)."""
        element = self._by_id.get(element_id)
        if element is not None and element.document is not self:
            return None
        return element

    def all_elements(self) -> Iterator[Element]:
        """All attached elements including the root, document order."""
        yield self.root
        yield from self.root.descendants()

    def query_selector_all(self, selector: str) -> list[Element]:
        """All elements matching a CSS selector, document order."""
        from repro.web.css.selectors import parse_selector

        parsed = parse_selector(selector)
        return [e for e in self.all_elements() if parsed.matches(e)]

    def query_selector(self, selector: str) -> Optional[Element]:
        """First element matching a CSS selector, or None."""
        matches = self.query_selector_all(selector)
        return matches[0] if matches else None

    def element_count(self) -> int:
        """Number of attached elements (including the root)."""
        return sum(1 for _ in self.all_elements())
