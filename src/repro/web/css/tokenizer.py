"""CSS tokenizer.

A compact tokenizer covering the CSS subset the reproduction needs:
identifiers, hashes (``#intro``), class dots, numbers and dimensions
(``2s``, ``100px``, ``16.6ms``), strings, punctuation, comments, and
whitespace.  Positions (line, column) are tracked for error messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CssSyntaxError


class CssTokenType(enum.Enum):
    IDENT = "ident"  # e.g. div, width, continuous
    HASH = "hash"  # #intro
    NUMBER = "number"  # 100, 16.6
    DIMENSION = "dimension"  # 2s, 100px, 33.3ms
    PERCENTAGE = "percentage"  # 50%
    STRING = "string"  # "..." or '...'
    COLON = ":"
    SEMICOLON = ";"
    COMMA = ","
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    DOT = "."
    GREATER = ">"
    STAR = "*"
    LBRACKET = "["
    RBRACKET = "]"
    EQUALS = "="
    PLUS = "+"
    TILDE = "~"
    CARET = "^"
    DOLLAR = "$"
    ATKEYWORD = "@"
    WHITESPACE = "ws"
    EOF = "eof"


@dataclass(frozen=True)
class CssToken:
    """One token with its source position (1-based line/column)."""

    type: CssTokenType
    value: str
    line: int
    column: int
    #: numeric value for NUMBER/DIMENSION/PERCENTAGE tokens
    numeric: float = 0.0
    #: unit for DIMENSION tokens (lowercased, e.g. "s", "ms", "px")
    unit: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.type.name} {self.value!r} @{self.line}:{self.column}>"


_PUNCT = {
    ":": CssTokenType.COLON,
    ";": CssTokenType.SEMICOLON,
    ",": CssTokenType.COMMA,
    "{": CssTokenType.LBRACE,
    "}": CssTokenType.RBRACE,
    "(": CssTokenType.LPAREN,
    ")": CssTokenType.RPAREN,
    ".": CssTokenType.DOT,
    ">": CssTokenType.GREATER,
    "*": CssTokenType.STAR,
    "[": CssTokenType.LBRACKET,
    "]": CssTokenType.RBRACKET,
    "=": CssTokenType.EQUALS,
    "+": CssTokenType.PLUS,
    "~": CssTokenType.TILDE,
    "^": CssTokenType.CARET,
    "$": CssTokenType.DOLLAR,
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_" or ch == "-"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-"


class _Cursor:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch


def tokenize(text: str, keep_whitespace: bool = False) -> list[CssToken]:
    """Tokenize ``text`` into a list ending with an EOF token.

    Args:
        keep_whitespace: if True, whitespace runs are emitted as single
            WHITESPACE tokens (selector parsing needs them to see
            descendant combinators); otherwise they are dropped.

    Raises:
        CssSyntaxError: on unterminated strings/comments or stray bytes.
    """
    cursor = _Cursor(text)
    tokens: list[CssToken] = []

    while not cursor.exhausted:
        line, column = cursor.line, cursor.column
        ch = cursor.peek()

        # Comments
        if ch == "/" and cursor.peek(1) == "*":
            cursor.advance()
            cursor.advance()
            closed = False
            while not cursor.exhausted:
                if cursor.peek() == "*" and cursor.peek(1) == "/":
                    cursor.advance()
                    cursor.advance()
                    closed = True
                    break
                cursor.advance()
            if not closed:
                raise CssSyntaxError("unterminated comment", line, column)
            continue

        # Whitespace
        if ch.isspace():
            while not cursor.exhausted and cursor.peek().isspace():
                cursor.advance()
            if keep_whitespace:
                tokens.append(CssToken(CssTokenType.WHITESPACE, " ", line, column))
            continue

        # Strings
        if ch in "\"'":
            quote = cursor.advance()
            chars = []
            while True:
                if cursor.exhausted or cursor.peek() == "\n":
                    raise CssSyntaxError("unterminated string", line, column)
                nxt = cursor.advance()
                if nxt == quote:
                    break
                if nxt == "\\" and not cursor.exhausted:
                    nxt = cursor.advance()
                chars.append(nxt)
            tokens.append(CssToken(CssTokenType.STRING, "".join(chars), line, column))
            continue

        # At-keywords (@media, @keyframes, ...)
        if ch == "@":
            cursor.advance()
            name = _consume_ident(cursor)
            if not name:
                raise CssSyntaxError("expected identifier after '@'", line, column)
            tokens.append(CssToken(CssTokenType.ATKEYWORD, name.lower(), line, column))
            continue

        # Hash (#id)
        if ch == "#":
            cursor.advance()
            name = _consume_ident(cursor)
            if not name:
                raise CssSyntaxError("expected identifier after '#'", line, column)
            tokens.append(CssToken(CssTokenType.HASH, name, line, column))
            continue

        # Numbers / dimensions (also .5 style and leading +/-)
        if ch.isdigit() or (
            ch in "+-." and (cursor.peek(1).isdigit() or (ch != "." and cursor.peek(1) == "."))
        ):
            token = _consume_numeric(cursor, line, column)
            tokens.append(token)
            continue

        # Identifiers (must not start with "--digit" etc.; simple rule)
        if _is_ident_start(ch) and not (ch == "-" and not _is_ident_start(cursor.peek(1))):
            name = _consume_ident(cursor)
            tokens.append(CssToken(CssTokenType.IDENT, name, line, column))
            continue

        # Punctuation
        if ch in _PUNCT:
            cursor.advance()
            tokens.append(CssToken(_PUNCT[ch], ch, line, column))
            continue

        raise CssSyntaxError(f"unexpected character {ch!r}", line, column)

    tokens.append(CssToken(CssTokenType.EOF, "", cursor.line, cursor.column))
    return tokens


def _consume_ident(cursor: _Cursor) -> str:
    chars = []
    while not cursor.exhausted and _is_ident_char(cursor.peek()):
        chars.append(cursor.advance())
    return "".join(chars)


def _consume_numeric(cursor: _Cursor, line: int, column: int) -> CssToken:
    chars = []
    if cursor.peek() in "+-":
        chars.append(cursor.advance())
    while not cursor.exhausted and (cursor.peek().isdigit() or cursor.peek() == "."):
        if cursor.peek() == "." and "." in chars:
            break
        chars.append(cursor.advance())
    literal = "".join(chars)
    try:
        numeric = float(literal)
    except ValueError:
        raise CssSyntaxError(f"malformed number {literal!r}", line, column) from None

    if cursor.peek() == "%":
        cursor.advance()
        return CssToken(
            CssTokenType.PERCENTAGE, literal + "%", line, column, numeric=numeric
        )
    if _is_ident_start(cursor.peek()):
        unit = _consume_ident(cursor)
        return CssToken(
            CssTokenType.DIMENSION,
            literal + unit,
            line,
            column,
            numeric=numeric,
            unit=unit.lower(),
        )
    return CssToken(CssTokenType.NUMBER, literal, line, column, numeric=numeric)
