"""CSS selector parsing, matching, and specificity.

Supports the selector forms GreenWeb's examples use (paper Sec. 4.1)
and the wider vocabulary real stylesheets rely on: type selectors
(``div``), id selectors (``#intro``), class selectors (``.nav``), the
universal selector (``*``), attribute selectors (``[role]``,
``[role=nav]``, ``[href^=...]``, ``[href$=...]``, ``[title*=...]``,
``[class~=...]``), compound combinations (``div#intro.fancy``),
pseudo-classes — notably the new ``:QoS`` pseudo-class GreenWeb
defines — the ``:not()`` functional pseudo-class, and all four
combinators (descendant, ``>`` child, ``+`` adjacent sibling,
``~`` general sibling).

Specificity follows CSS selectors level 3 (a=id count, b=class +
attribute + pseudo count, c=type count); ``:not()`` contributes its
argument's specificity but nothing for itself, and the ``:QoS``
qualifier counts like any pseudo-class, which keeps cascade resolution
between multiple GreenWeb rules well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SelectorError
from repro.web.css.tokenizer import CssToken, CssTokenType, tokenize
from repro.web.dom import Element

#: The GreenWeb QoS pseudo-class (case-insensitive per CSS convention).
QOS_PSEUDO_CLASS = "qos"


@dataclass(frozen=True)
class AttributeSelector:
    """One ``[name <op> value]`` attribute test.

    Operators: ``""`` (presence), ``=`` (exact), ``^=`` (prefix),
    ``$=`` (suffix), ``*=`` (substring), ``~=`` (whitespace-list word).
    """

    name: str
    op: str = ""
    value: str = ""

    def matches(self, element: Element) -> bool:
        # id and class attributes resolve against the element's parsed
        # fields, everything else against the attribute map.
        if self.name == "id":
            actual: "str | None" = element.id or None
        elif self.name == "class":
            # Match against the attribute's source-ordered text: with
            # class="nav active", [class^=nav] must match (a sorted
            # re-join would yield "active nav" and break ^=/$=/*=).
            actual = element.class_attr or None
        else:
            actual = element.attributes.get(self.name)
        if actual is None:
            return False
        if self.op == "":
            return True
        if self.op == "=":
            return actual == self.value
        if self.op == "^=":
            return bool(self.value) and actual.startswith(self.value)
        if self.op == "$=":
            return bool(self.value) and actual.endswith(self.value)
        if self.op == "*=":
            return bool(self.value) and self.value in actual
        if self.op == "~=":
            return self.value in actual.split()
        raise SelectorError(f"unknown attribute operator {self.op!r}")

    def __str__(self) -> str:
        if self.op == "":
            return f"[{self.name}]"
        return f"[{self.name}{self.op}{self.value!r}]"


@dataclass(frozen=True)
class CompoundSelector:
    """A compound selector: everything between combinators.

    e.g. ``div#intro.fancy:QoS`` -> tag="div", id="intro",
    classes={"fancy"}, pseudo_classes=("qos",).
    """

    tag: str = ""  # "" means any ("*" or absent)
    element_id: str = ""
    classes: frozenset[str] = frozenset()
    pseudo_classes: tuple[str, ...] = ()
    attributes: tuple[AttributeSelector, ...] = ()
    negations: tuple["CompoundSelector", ...] = ()

    def matches(self, element: Element) -> bool:
        """Structural match against one element (pseudo-classes other
        than ``:QoS`` are treated as always-matching qualifiers since
        the reproduction has no hover/focus state)."""
        if self.tag and element.tag != self.tag:
            return False
        if self.element_id and element.id != self.element_id:
            return False
        if not self.classes.issubset(element.classes):
            return False
        if any(not attribute.matches(element) for attribute in self.attributes):
            return False
        if any(negated.matches(element) for negated in self.negations):
            return False
        return True

    @property
    def has_qos(self) -> bool:
        """True if the ``:QoS`` qualifier is present."""
        return QOS_PSEUDO_CLASS in self.pseudo_classes

    @property
    def is_empty(self) -> bool:
        return not (
            self.tag
            or self.element_id
            or self.classes
            or self.pseudo_classes
            or self.attributes
            or self.negations
        )

    def own_specificity(self) -> tuple[int, int, int]:
        """(ids, classes+attrs+pseudos, types) for this compound,
        including :not() arguments (per CSS Selectors 3)."""
        ids = 1 if self.element_id else 0
        classes = len(self.classes) + len(self.pseudo_classes) + len(self.attributes)
        types = 1 if self.tag else 0
        for negated in self.negations:
            n_ids, n_classes, n_types = negated.own_specificity()
            ids += n_ids
            classes += n_classes
            types += n_types
        return (ids, classes, types)

    def __str__(self) -> str:
        parts = [self.tag or ""]
        if self.element_id:
            parts.append(f"#{self.element_id}")
        parts.extend(f".{c}" for c in sorted(self.classes))
        parts.extend(str(a) for a in self.attributes)
        parts.extend(f":not({n})" for n in self.negations)
        parts.extend(
            f":QoS" if p == QOS_PSEUDO_CLASS else f":{p}" for p in self.pseudo_classes
        )
        text = "".join(parts)
        return text or "*"


@dataclass(frozen=True)
class Selector:
    """A complex selector: compounds joined by combinators.

    ``combinators[i]`` joins ``compounds[i]`` to ``compounds[i+1]`` and
    is ``" "`` (descendant), ``">"`` (child), ``"+"`` (adjacent
    sibling) or ``"~"`` (general sibling).
    """

    compounds: tuple[CompoundSelector, ...]
    combinators: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.compounds:
            raise SelectorError("selector must have at least one compound")
        if len(self.combinators) != len(self.compounds) - 1:
            raise SelectorError("combinator/compound count mismatch")

    @property
    def key_compound(self) -> CompoundSelector:
        """The rightmost compound — the one naming the subject element."""
        return self.compounds[-1]

    @property
    def has_qos(self) -> bool:
        """True if the *subject* carries the ``:QoS`` qualifier, which is
        what marks a rule as a GreenWeb rule (paper Sec. 4.1)."""
        return self.key_compound.has_qos

    def matches(self, element: Element) -> bool:
        """Match ``element`` against the full selector (right to left)."""
        if not self.key_compound.matches(element):
            return False
        return self._match_ancestry(element, len(self.compounds) - 2)

    def _match_ancestry(self, element: Element, index: int) -> bool:
        if index < 0:
            return True
        combinator = self.combinators[index]
        compound = self.compounds[index]
        if combinator == ">":
            parent = element.parent
            if parent is None or not compound.matches(parent):
                return False
            return self._match_ancestry(parent, index - 1)
        if combinator == "+":
            sibling = _previous_sibling(element)
            if sibling is None or not compound.matches(sibling):
                return False
            return self._match_ancestry(sibling, index - 1)
        if combinator == "~":
            for sibling in _preceding_siblings(element):
                if compound.matches(sibling) and self._match_ancestry(sibling, index - 1):
                    return True
            return False
        # Descendant: try every ancestor.
        for ancestor in element.ancestors():
            if compound.matches(ancestor) and self._match_ancestry(ancestor, index - 1):
                return True
        return False

    def specificity(self) -> tuple[int, int, int]:
        """CSS specificity (ids, classes+attrs+pseudos, types)."""
        ids = classes = types = 0
        for compound in self.compounds:
            c_ids, c_classes, c_types = compound.own_specificity()
            ids += c_ids
            classes += c_classes
            types += c_types
        return (ids, classes, types)

    def __str__(self) -> str:
        parts = [str(self.compounds[0])]
        for combinator, compound in zip(self.combinators, self.compounds[1:]):
            parts.append(" " if combinator == " " else f" {combinator} ")
            parts.append(str(compound))
        return "".join(parts)


def parse_selector(text: str) -> Selector:
    """Parse a single selector string (no comma-separated lists here;
    the rule parser splits those first)."""
    tokens = tokenize(text, keep_whitespace=True)
    selector, index = _parse_selector_tokens(tokens, 0)
    if tokens[index].type is not CssTokenType.EOF:
        raise SelectorError(f"trailing junk in selector {text!r}")
    return selector


def parse_selector_from_tokens(tokens: list[CssToken], start: int) -> tuple[Selector, int]:
    """Parse one selector from a token stream (used by the rule parser);
    stops at a comma, ``{`` or EOF and returns (selector, next_index)."""
    return _parse_selector_tokens(tokens, start)


_STOP_TYPES = {CssTokenType.COMMA, CssTokenType.LBRACE, CssTokenType.EOF}
_COMBINATOR_TYPES = {CssTokenType.GREATER, CssTokenType.PLUS, CssTokenType.TILDE}


def _parse_selector_tokens(tokens: list[CssToken], start: int) -> tuple[Selector, int]:
    compounds: list[CompoundSelector] = []
    combinators: list[str] = []
    index = start
    pending_combinator: Optional[str] = None

    # skip leading whitespace
    while tokens[index].type is CssTokenType.WHITESPACE:
        index += 1

    while tokens[index].type not in _STOP_TYPES:
        token = tokens[index]
        if token.type is CssTokenType.WHITESPACE:
            next_index = index + 1
            while tokens[next_index].type is CssTokenType.WHITESPACE:
                next_index += 1
            if tokens[next_index].type in _STOP_TYPES:
                index = next_index
                break
            if tokens[next_index].type in _COMBINATOR_TYPES:
                index = next_index
                continue
            if pending_combinator is None:
                pending_combinator = " "
            index = next_index
            continue
        if token.type in _COMBINATOR_TYPES:
            pending_combinator = token.value
            index += 1
            while tokens[index].type is CssTokenType.WHITESPACE:
                index += 1
            continue

        compound, index = _parse_compound(tokens, index)
        if compounds:
            combinators.append(pending_combinator or " ")
        elif pending_combinator is not None:
            raise SelectorError("selector cannot start with a combinator")
        pending_combinator = None
        compounds.append(compound)

    if not compounds:
        raise SelectorError("empty selector")
    if pending_combinator in (">", "+", "~"):
        raise SelectorError(f"dangling {pending_combinator!r} combinator")
    return Selector(tuple(compounds), tuple(combinators)), index


def _parse_compound(tokens: list[CssToken], index: int) -> tuple[CompoundSelector, int]:
    tag = ""
    element_id = ""
    classes: set[str] = set()
    pseudos: list[str] = []
    attributes: list[AttributeSelector] = []
    negations: list[CompoundSelector] = []
    saw_anything = False

    while True:
        token = tokens[index]
        if token.type is CssTokenType.IDENT and not saw_anything:
            tag = token.value.lower()
            index += 1
        elif token.type is CssTokenType.STAR and not saw_anything:
            tag = ""
            index += 1
        elif token.type is CssTokenType.HASH:
            if element_id:
                raise SelectorError("multiple id selectors in one compound")
            element_id = token.value
            index += 1
        elif token.type is CssTokenType.DOT:
            nxt = tokens[index + 1]
            if nxt.type is not CssTokenType.IDENT:
                raise SelectorError(f"expected class name after '.' at {token.line}:{token.column}")
            classes.add(nxt.value)
            index += 2
        elif token.type is CssTokenType.LBRACKET:
            attribute, index = _parse_attribute(tokens, index)
            attributes.append(attribute)
        elif token.type is CssTokenType.COLON:
            nxt = tokens[index + 1]
            if nxt.type is not CssTokenType.IDENT:
                raise SelectorError(
                    f"expected pseudo-class name after ':' at {token.line}:{token.column}"
                )
            name = nxt.value.lower()
            if name == "not" and tokens[index + 2].type is CssTokenType.LPAREN:
                inner, index = _parse_compound(tokens, index + 3)
                if tokens[index].type is not CssTokenType.RPAREN:
                    raise SelectorError(
                        f"unclosed :not() at {token.line}:{token.column}"
                    )
                index += 1
                negations.append(inner)
            else:
                pseudos.append(name)
                index += 2
        else:
            break
        saw_anything = True

    if not saw_anything:
        raise SelectorError(
            f"expected selector at {tokens[index].line}:{tokens[index].column}, "
            f"got {tokens[index].value!r}"
        )
    return (
        CompoundSelector(
            tag,
            element_id,
            frozenset(classes),
            tuple(pseudos),
            tuple(attributes),
            tuple(negations),
        ),
        index,
    )


def _parse_attribute(tokens: list[CssToken], index: int) -> tuple[AttributeSelector, int]:
    """Parse ``[name]`` / ``[name=value]`` / ``[name^=value]`` etc.,
    starting at the ``[`` token."""
    open_token = tokens[index]
    index += 1  # past '['
    while tokens[index].type is CssTokenType.WHITESPACE:
        index += 1
    name_token = tokens[index]
    if name_token.type is not CssTokenType.IDENT:
        raise SelectorError(
            f"expected attribute name at {open_token.line}:{open_token.column}"
        )
    name = name_token.value.lower()
    index += 1
    while tokens[index].type is CssTokenType.WHITESPACE:
        index += 1

    op = ""
    if tokens[index].type in (
        CssTokenType.CARET,
        CssTokenType.DOLLAR,
        CssTokenType.STAR,
        CssTokenType.TILDE,
    ):
        op = tokens[index].value
        index += 1
        if tokens[index].type is not CssTokenType.EQUALS:
            raise SelectorError(
                f"expected '=' after {op!r} in attribute selector at "
                f"{open_token.line}:{open_token.column}"
            )
        op += "="
        index += 1
    elif tokens[index].type is CssTokenType.EQUALS:
        op = "="
        index += 1

    value = ""
    if op:
        while tokens[index].type is CssTokenType.WHITESPACE:
            index += 1
        value_token = tokens[index]
        if value_token.type in (
            CssTokenType.IDENT,
            CssTokenType.STRING,
            CssTokenType.NUMBER,
            CssTokenType.DIMENSION,
        ):
            value = value_token.value
            index += 1
        else:
            raise SelectorError(
                f"expected attribute value at {value_token.line}:{value_token.column}"
            )
    while tokens[index].type is CssTokenType.WHITESPACE:
        index += 1
    if tokens[index].type is not CssTokenType.RBRACKET:
        raise SelectorError(
            f"unclosed attribute selector at {open_token.line}:{open_token.column}"
        )
    return AttributeSelector(name, op, value), index + 1


def _previous_sibling(element: Element) -> "Element | None":
    parent = element.parent
    if parent is None:
        return None
    position = parent.children.index(element)
    return parent.children[position - 1] if position > 0 else None


def _preceding_siblings(element: Element):
    parent = element.parent
    if parent is None:
        return
    position = parent.children.index(element)
    for sibling in reversed(parent.children[:position]):
        yield sibling
