"""CSS object model: declarations, rules, stylesheets, and cascade.

The cascade implemented here is the slice the reproduction needs:
among the rules whose selector matches an element, the declaration for
a property wins by (specificity, source order).  That is enough both
for ordinary properties (``transition``, ``width``) and for resolving
conflicting GreenWeb QoS rules deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.web.css.selectors import Selector
from repro.web.css.tokenizer import CssToken
from repro.web.dom import Element


@dataclass(frozen=True)
class Declaration:
    """One ``property: value`` declaration.

    Attributes:
        property: lowercased property name (e.g. ``"onclick-qos"``).
        value: the raw value text with original spacing collapsed.
        tokens: the value's component tokens (no whitespace, no EOF),
            kept so downstream consumers (QoS parser, transitions)
            don't re-tokenize.
    """

    property: str
    value: str
    tokens: tuple[CssToken, ...] = ()

    def __str__(self) -> str:
        return f"{self.property}: {self.value}"


@dataclass(frozen=True)
class StyleRule:
    """One style rule: a selector list and a declaration block."""

    selectors: tuple[Selector, ...]
    declarations: tuple[Declaration, ...]

    def matches(self, element: Element) -> bool:
        """True if any of the rule's selectors matches ``element``."""
        return any(s.matches(element) for s in self.selectors)

    def best_specificity(self, element: Element) -> Optional[tuple[int, int, int]]:
        """Highest specificity among the selectors matching ``element``
        (None if none match)."""
        best: Optional[tuple[int, int, int]] = None
        for selector in self.selectors:
            if selector.matches(element):
                spec = selector.specificity()
                if best is None or spec > best:
                    best = spec
        return best

    @property
    def is_greenweb(self) -> bool:
        """True if any selector carries the ``:QoS`` qualifier — the
        marker of a GreenWeb rule (paper Sec. 4.1)."""
        return any(s.has_qos for s in self.selectors)

    def declaration(self, prop: str) -> Optional[Declaration]:
        """The *last* declaration of ``prop`` in the block (CSS rule:
        later declarations override earlier ones within a block)."""
        found = None
        for declaration in self.declarations:
            if declaration.property == prop.lower():
                found = declaration
        return found

    def __str__(self) -> str:
        selectors = ", ".join(str(s) for s in self.selectors)
        body = " ".join(f"{d};" for d in self.declarations)
        return f"{selectors} {{ {body} }}"


class Stylesheet:
    """An ordered collection of style rules with cascade resolution."""

    def __init__(self, rules: Optional[list[StyleRule]] = None) -> None:
        self._rules: list[StyleRule] = list(rules) if rules else []

    def append(self, rule: StyleRule) -> None:
        self._rules.append(rule)

    def extend(self, other: "Stylesheet") -> None:
        """Append all of ``other``'s rules after this sheet's (document
        order across multiple <style> blocks)."""
        self._rules.extend(other.rules)

    @property
    def rules(self) -> list[StyleRule]:
        return self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[StyleRule]:
        return iter(self._rules)

    def greenweb_rules(self) -> list[StyleRule]:
        """All rules marked with the ``:QoS`` pseudo-class."""
        return [rule for rule in self._rules if rule.is_greenweb]

    def matching_rules(self, element: Element) -> list[StyleRule]:
        """Rules whose selector matches ``element``, source order."""
        return [rule for rule in self._rules if rule.matches(element)]

    def resolve(self, element: Element, prop: str) -> Optional[Declaration]:
        """Cascade: the winning declaration of ``prop`` for ``element``.

        Ordering: higher specificity wins; ties broken by later source
        order.  Inline ``element.style`` entries beat everything (they
        are checked first and returned as synthetic declarations).
        """
        prop = prop.lower()
        if prop in element.style:
            return Declaration(prop, element.style[prop])
        winner: Optional[Declaration] = None
        winner_key: tuple[tuple[int, int, int], int] = ((-1, -1, -1), -1)
        for order, rule in enumerate(self._rules):
            declaration = rule.declaration(prop)
            if declaration is None:
                continue
            specificity = rule.best_specificity(element)
            if specificity is None:
                continue
            key = (specificity, order)
            if key >= winner_key:
                winner = declaration
                winner_key = key
        return winner

    def computed_style(self, element: Element) -> dict[str, str]:
        """Every property's winning value for ``element``: the cascade
        over all matching rules, with inline styles on top.

        Returns a plain property -> value text map (no inheritance or
        shorthand expansion — the slice rendering and QoS need).
        """
        computed: dict[str, tuple[tuple[int, int, int], int, str]] = {}
        for order, rule in enumerate(self._rules):
            specificity = rule.best_specificity(element)
            if specificity is None:
                continue
            for declaration in rule.declarations:
                key = (specificity, order)
                current = computed.get(declaration.property)
                if current is None or key >= (current[0], current[1]):
                    computed[declaration.property] = (specificity, order, declaration.value)
        result = {prop: value for prop, (_s, _o, value) in computed.items()}
        result.update(element.style)  # inline wins
        return result

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)
