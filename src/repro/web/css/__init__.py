"""CSS engine: tokenizer, parser, selectors, object model, transitions.

Rich enough to host the paper's GreenWeb extension — the ``:QoS``
pseudo-class selector and ``on<event>-qos`` properties (Sec. 4) — side
by side with the ordinary style rules (``transition``, ``animation``,
visual properties) that the browser's animation machinery consumes.
"""

from repro.web.css.parser import parse_stylesheet
from repro.web.css.selectors import Selector, parse_selector
from repro.web.css.stylesheet import Declaration, StyleRule, Stylesheet
from repro.web.css.tokenizer import CssToken, CssTokenType, tokenize
from repro.web.css.transitions import AnimationSpec, TransitionSpec, parse_transition_value

__all__ = [
    "tokenize",
    "CssToken",
    "CssTokenType",
    "parse_stylesheet",
    "Selector",
    "parse_selector",
    "Stylesheet",
    "StyleRule",
    "Declaration",
    "TransitionSpec",
    "AnimationSpec",
    "parse_transition_value",
]
