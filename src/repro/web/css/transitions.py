"""CSS transitions and animations (paper Sec. 4.2's first example).

A CSS *transition* declares that changes to a property animate over a
duration (``transition: width 2s;``): when a script later writes that
property, the browser generates a continuous frame sequence for the
duration.  A CSS *animation* (``animation: slidein 3s;``) runs a named
keyframe animation.  Either way the observable behaviour that matters
to GreenWeb is "this style change produces N frames over D seconds" —
the browser's animation scheduler (:mod:`repro.browser.pipeline`) turns
these specs into per-VSync dirty frames, and AutoGreen detects them via
``transitionend`` / ``animationend`` (paper Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CssSyntaxError
from repro.web.css.stylesheet import Stylesheet
from repro.web.css.tokenizer import CssToken, CssTokenType, tokenize
from repro.web.dom import Element


def _duration_to_ms(token: CssToken) -> float:
    if token.type is CssTokenType.NUMBER and token.numeric == 0:
        return 0.0
    if token.type is not CssTokenType.DIMENSION:
        raise CssSyntaxError(
            f"expected a time value, got {token.value!r}", token.line, token.column
        )
    if token.unit == "s":
        return token.numeric * 1_000
    if token.unit == "ms":
        return token.numeric
    raise CssSyntaxError(
        f"unsupported time unit {token.unit!r} in {token.value!r}", token.line, token.column
    )


@dataclass(frozen=True)
class TransitionSpec:
    """A parsed ``transition`` declaration for one property.

    Attributes:
        property: the transitioned property name, or ``"all"``.
        duration_ms: transition duration.
        delay_ms: delay before the transition starts.
    """

    property: str
    duration_ms: float
    delay_ms: float = 0.0

    def applies_to(self, prop: str) -> bool:
        return self.property == "all" or self.property == prop.lower()


@dataclass(frozen=True)
class AnimationSpec:
    """A parsed ``animation`` declaration.

    Attributes:
        name: keyframes name (uninterpreted — the reproduction does not
            model keyframe contents, only frame generation).
        duration_ms: duration of one iteration.
        iterations: iteration count (>= 1; ``infinite`` is capped by the
            browser's animation scheduler).
    """

    name: str
    duration_ms: float
    iterations: float = 1.0

    @property
    def total_ms(self) -> float:
        return self.duration_ms * self.iterations


def parse_transition_value(tokens: tuple[CssToken, ...]) -> list[TransitionSpec]:
    """Parse a ``transition`` property value's tokens.

    Supports comma-separated lists of ``<property> <duration> [<delay>]``
    (e.g. ``width 2s, opacity 300ms 100ms``).
    """
    groups = _split_on_commas(tokens)
    specs: list[TransitionSpec] = []
    for group in groups:
        if not group:
            continue
        prop = "all"
        times: list[float] = []
        for token in group:
            if token.type is CssTokenType.IDENT and not times:
                if token.value.lower() in ("ease", "linear", "ease-in", "ease-out", "ease-in-out"):
                    continue
                prop = token.value.lower()
            elif token.type in (CssTokenType.DIMENSION, CssTokenType.NUMBER):
                times.append(_duration_to_ms(token))
            elif token.type is CssTokenType.IDENT:
                continue  # timing function after duration
            else:
                raise CssSyntaxError(
                    f"unexpected {token.value!r} in transition value", token.line, token.column
                )
        if not times:
            raise CssSyntaxError("transition needs a duration")
        specs.append(
            TransitionSpec(
                property=prop,
                duration_ms=times[0],
                delay_ms=times[1] if len(times) > 1 else 0.0,
            )
        )
    return specs


def parse_animation_value(tokens: tuple[CssToken, ...]) -> list[AnimationSpec]:
    """Parse an ``animation`` property value: ``<name> <duration>
    [<iterations>|infinite]`` per comma-separated group."""
    groups = _split_on_commas(tokens)
    specs: list[AnimationSpec] = []
    for group in groups:
        if not group:
            continue
        name = ""
        duration: Optional[float] = None
        iterations = 1.0
        for token in group:
            if token.type is CssTokenType.IDENT:
                if token.value.lower() == "infinite":
                    iterations = float("inf")
                elif not name:
                    name = token.value
            elif token.type is CssTokenType.DIMENSION:
                duration = _duration_to_ms(token)
            elif token.type is CssTokenType.NUMBER:
                iterations = token.numeric
        if not name:
            raise CssSyntaxError("animation needs a keyframes name")
        if duration is None:
            raise CssSyntaxError(f"animation {name!r} needs a duration")
        specs.append(AnimationSpec(name=name, duration_ms=duration, iterations=iterations))
    return specs


def _split_on_commas(tokens: tuple[CssToken, ...]) -> list[list[CssToken]]:
    groups: list[list[CssToken]] = [[]]
    for token in tokens:
        if token.type is CssTokenType.COMMA:
            groups.append([])
        else:
            groups[-1].append(token)
    return groups


def transition_for(
    stylesheet: Stylesheet, element: Element, prop: str
) -> Optional[TransitionSpec]:
    """Resolve the transition spec (if any) covering writes to ``prop``
    on ``element`` under the cascade."""
    declaration = stylesheet.resolve(element, "transition")
    if declaration is None:
        return None
    tokens = declaration.tokens or tuple(
        t for t in tokenize(declaration.value) if t.type is not CssTokenType.EOF
    )
    for spec in parse_transition_value(tokens):
        if spec.applies_to(prop) and spec.duration_ms > 0:
            return spec
    return None


def animation_for(stylesheet: Stylesheet, element: Element) -> Optional[AnimationSpec]:
    """Resolve the (first) CSS animation applying to ``element``."""
    declaration = stylesheet.resolve(element, "animation")
    if declaration is None:
        return None
    tokens = declaration.tokens or tuple(
        t for t in tokenize(declaration.value) if t.type is not CssTokenType.EOF
    )
    specs = parse_animation_value(tokens)
    return specs[0] if specs else None
