"""CSS rule parser: token stream -> :class:`Stylesheet`.

Grammar (the slice we support, which subsumes the paper's Fig. 3)::

    stylesheet  := rule*
    rule        := selector-list '{' declaration* '}'
    selector-list := selector (',' selector)*
    declaration := IDENT ':' component-value+ ';'?

At-rules (``@media``, ``@keyframes``, ``@font-face``, ...) are parsed
structurally and skipped: their prelude and block are consumed without
interpretation, since no QoS-relevant behaviour lives inside them in
this reproduction (keyframe *names* are referenced by the ``animation``
property, whose frame-generation behaviour is modelled directly).

Component values keep their tokens so the GreenWeb language layer and
the transition parser can interpret them without re-tokenizing.
"""

from __future__ import annotations

from repro.errors import CssSyntaxError
from repro.web.css.selectors import Selector, parse_selector_from_tokens
from repro.web.css.stylesheet import Declaration, StyleRule, Stylesheet
from repro.web.css.tokenizer import CssToken, CssTokenType, tokenize


def parse_stylesheet(text: str) -> Stylesheet:
    """Parse CSS text into a :class:`Stylesheet`.

    Raises:
        CssSyntaxError: on malformed rules (with source position).
        SelectorError: on malformed selectors.
    """
    tokens = tokenize(text, keep_whitespace=True)
    sheet = Stylesheet()
    index = 0
    while True:
        index = _skip_ws(tokens, index)
        if tokens[index].type is CssTokenType.EOF:
            break
        if tokens[index].type is CssTokenType.ATKEYWORD:
            index = _skip_at_rule(tokens, index)
            continue
        rule, index = _parse_rule(tokens, index)
        sheet.append(rule)
    return sheet


def _skip_at_rule(tokens: list[CssToken], index: int) -> int:
    """Consume an at-rule: prelude then either ``;`` or a balanced
    ``{...}`` block (with nested blocks, as @media contains rules)."""
    at_token = tokens[index]
    index += 1
    while tokens[index].type not in (
        CssTokenType.LBRACE,
        CssTokenType.SEMICOLON,
        CssTokenType.EOF,
    ):
        index += 1
    if tokens[index].type is CssTokenType.SEMICOLON:
        return index + 1
    if tokens[index].type is CssTokenType.EOF:
        raise CssSyntaxError(
            f"unterminated @{at_token.value} rule", at_token.line, at_token.column
        )
    depth = 0
    while True:
        token = tokens[index]
        if token.type is CssTokenType.LBRACE:
            depth += 1
        elif token.type is CssTokenType.RBRACE:
            depth -= 1
            if depth == 0:
                return index + 1
        elif token.type is CssTokenType.EOF:
            raise CssSyntaxError(
                f"unbalanced braces in @{at_token.value} rule",
                at_token.line,
                at_token.column,
            )
        index += 1


def _skip_ws(tokens: list[CssToken], index: int) -> int:
    while tokens[index].type is CssTokenType.WHITESPACE:
        index += 1
    return index


def _parse_rule(tokens: list[CssToken], index: int) -> tuple[StyleRule, int]:
    selectors: list[Selector] = []
    while True:
        selector, index = parse_selector_from_tokens(tokens, index)
        selectors.append(selector)
        index = _skip_ws(tokens, index)
        token = tokens[index]
        if token.type is CssTokenType.COMMA:
            index += 1
            continue
        if token.type is CssTokenType.LBRACE:
            index += 1
            break
        raise CssSyntaxError(
            f"expected '{{' or ',' after selector, got {token.value!r}",
            token.line,
            token.column,
        )

    declarations: list[Declaration] = []
    while True:
        index = _skip_ws(tokens, index)
        token = tokens[index]
        if token.type is CssTokenType.RBRACE:
            index += 1
            break
        if token.type is CssTokenType.EOF:
            raise CssSyntaxError("unterminated rule (missing '}')", token.line, token.column)
        if token.type is CssTokenType.SEMICOLON:
            index += 1
            continue
        declaration, index = _parse_declaration(tokens, index)
        declarations.append(declaration)

    return StyleRule(tuple(selectors), tuple(declarations)), index


def _parse_declaration(tokens: list[CssToken], index: int) -> tuple[Declaration, int]:
    token = tokens[index]
    if token.type is not CssTokenType.IDENT:
        raise CssSyntaxError(
            f"expected property name, got {token.value!r}", token.line, token.column
        )
    prop = token.value.lower()
    index = _skip_ws(tokens, index + 1)
    colon = tokens[index]
    if colon.type is not CssTokenType.COLON:
        raise CssSyntaxError(
            f"expected ':' after property {prop!r}, got {colon.value!r}",
            colon.line,
            colon.column,
        )
    index += 1

    value_tokens: list[CssToken] = []
    pieces: list[str] = []
    pending_space = False
    while True:
        token = tokens[index]
        if token.type in (CssTokenType.SEMICOLON, CssTokenType.RBRACE, CssTokenType.EOF):
            break
        if token.type is CssTokenType.WHITESPACE:
            pending_space = True
            index += 1
            continue
        if pending_space and pieces:
            pieces.append(" ")
        pending_space = False
        value_tokens.append(token)
        pieces.append(token.value)
        index += 1

    if not value_tokens:
        raise CssSyntaxError(
            f"declaration of {prop!r} has no value", tokens[index].line, tokens[index].column
        )
    if tokens[index].type is CssTokenType.SEMICOLON:
        index += 1
    value_text = "".join(pieces).replace(" ,", ",").replace(", ", ",").replace(",", ", ")
    return Declaration(prop, value_text, tuple(value_tokens)), index
