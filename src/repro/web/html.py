"""Minimal HTML parser: markup -> (Document, Stylesheet).

Supports the subset the workloads and examples need: nested elements
with ``id``/``class``/other attributes, self-closing tags, ``<style>``
blocks (collected and parsed as CSS), comments, and text (ignored —
text nodes carry no QoS-relevant behaviour).  ``<html>`` in the markup
is merged into the document's implicit root.
"""

from __future__ import annotations

from html.parser import HTMLParser

from repro.errors import HtmlParseError
from repro.web.css.parser import parse_stylesheet
from repro.web.css.stylesheet import Stylesheet
from repro.web.dom import Document, Element

_VOID_TAGS = frozenset(
    {"br", "hr", "img", "input", "meta", "link", "area", "base", "col", "embed",
     "source", "track", "wbr"}
)


class _DomBuilder(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.document = Document()
        self._stack: list[Element] = [self.document.root]
        self._style_chunks: list[str] = []
        self._in_style = False

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        tag = tag.lower()
        if tag == "style":
            self._in_style = True
            return
        if tag == "html":
            # merge attributes into the implicit root
            self._apply_attrs(self.document.root, attrs)
            return
        element = self._make_element(tag, attrs)
        self._stack[-1].append_child(element)
        if tag not in _VOID_TAGS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        tag = tag.lower()
        if tag in ("style", "html"):
            return
        self._stack[-1].append_child(self._make_element(tag, attrs))

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag == "style":
            self._in_style = False
            return
        if tag == "html" or tag in _VOID_TAGS:
            return
        # Pop to the matching open tag; tolerate mismatches like browsers do.
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return

    def handle_data(self, data: str) -> None:
        if self._in_style:
            self._style_chunks.append(data)

    def _make_element(self, tag: str, attrs: list[tuple[str, str | None]]) -> Element:
        element = Element(tag)
        self._apply_attrs(element, attrs)
        return element

    @staticmethod
    def _apply_attrs(element: Element, attrs: list[tuple[str, str | None]]) -> None:
        for name, value in attrs:
            value = value if value is not None else ""
            if name == "id":
                element.id = value
            elif name == "class":
                element.classes.update(value.split())
            elif name == "style":
                for part in value.split(";"):
                    if ":" in part:
                        prop, _, val = part.partition(":")
                        element.style[prop.strip().lower()] = val.strip()
            else:
                element.attributes[name] = value

    @property
    def style_text(self) -> str:
        return "\n".join(self._style_chunks)


def parse_html(markup: str) -> tuple[Document, Stylesheet]:
    """Parse HTML markup into a DOM and the combined stylesheet from
    all of its ``<style>`` blocks.

    Raises:
        HtmlParseError: on markup the builder cannot place (e.g. an id
            duplicated across elements).
    """
    builder = _DomBuilder()
    try:
        builder.feed(markup)
        builder.close()
    except HtmlParseError:
        raise
    except Exception as exc:  # DomError and parser internals
        raise HtmlParseError(f"failed to parse markup: {exc}") from exc
    style_text = builder.style_text.strip()
    stylesheet = parse_stylesheet(style_text) if style_text else Stylesheet()
    # Re-index after full construction so late id assignments are found.
    for element in builder.document.all_elements():
        builder.document._index(element)
    return builder.document, stylesheet
