"""JSON schemas of the job API: payload in, FleetSpec out.

``POST /jobs`` accepts exactly the knobs ``repro fleet`` accepts, as a
JSON object; this module is the single place that vocabulary is
defined, validated, and turned into a :class:`repro.fleet.FleetSpec`.
Validation failures raise :class:`repro.errors.EvaluationError` with a
one-line, field-naming message — the server maps them to HTTP 400.

Mix entries — including parameterized governor and scenario specs like
``thermal(cap_mhz=1100)`` — are validated by
:func:`repro.fleet.parse_mix` via the policy/scenario registries; this
module only checks the payload's shape.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import EvaluationError
from repro.fleet import FleetSpec, default_mix, parse_mix
from repro.sim.tracing import TRACE_LEVELS

#: Recognised ``POST /jobs`` payload keys and their defaults (matching
#: the ``repro fleet`` CLI defaults field for field).
PAYLOAD_DEFAULTS: dict = {
    "sessions": 100,
    "seed": 0,
    "mix": None,  # None -> default_mix()
    "shard_size": 8,
    "max_retries": 1,
    "shard_timeout_s": 300.0,
    "settle_s": 4.0,
    "trace_level": "gated",
    # Scheduling priority: higher claims a lane sooner; ties run in
    # admission order.  Never part of the FleetSpec (or its
    # fingerprint) — it orders execution, it cannot change results.
    "priority": 0,
}

#: accepted ``priority`` range (inclusive)
PRIORITY_MIN, PRIORITY_MAX = -10, 10


def _require_int(payload: dict, key: str) -> int:
    value = payload[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise EvaluationError(f"job field {key!r} must be an integer, got {value!r}")
    return value


def _require_number(payload: dict, key: str) -> float:
    value = payload[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"job field {key!r} must be a number, got {value!r}")
    return float(value)


def normalize_job_payload(payload: object) -> dict:
    """Validate a ``POST /jobs`` body and fill in defaults.

    The returned dict is the *canonical* payload: every key present,
    mix as a single grammar string (or None for the default mix).  It
    is what the job store persists, so a daemon restarted months later
    rebuilds the exact same :class:`FleetSpec` from it.
    """
    if not isinstance(payload, dict):
        raise EvaluationError(
            f"job spec must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(PAYLOAD_DEFAULTS))
    if unknown:
        raise EvaluationError(
            f"unknown job field(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(PAYLOAD_DEFAULTS))}"
        )
    merged = dict(PAYLOAD_DEFAULTS, **payload)

    mix = merged["mix"]
    if mix is not None:
        if isinstance(mix, list):
            if not all(isinstance(item, str) for item in mix):
                raise EvaluationError("job field 'mix' list items must be strings")
            mix = ",".join(mix)
        if not isinstance(mix, str):
            raise EvaluationError(
                f"job field 'mix' must be a string or list of strings, got {mix!r}"
            )
        merged["mix"] = mix

    for key in ("sessions", "seed", "shard_size", "max_retries", "priority"):
        merged[key] = _require_int(merged, key)
    if not PRIORITY_MIN <= merged["priority"] <= PRIORITY_MAX:
        raise EvaluationError(
            f"job field 'priority' must be in [{PRIORITY_MIN}, "
            f"{PRIORITY_MAX}], got {merged['priority']}"
        )
    for key in ("shard_timeout_s", "settle_s"):
        merged[key] = _require_number(merged, key)
    if not isinstance(merged["trace_level"], str) or merged["trace_level"] not in TRACE_LEVELS:
        raise EvaluationError(
            f"job field 'trace_level' must be one of {list(TRACE_LEVELS)}, "
            f"got {merged['trace_level']!r}"
        )
    # Build the spec once now purely for validation: a bad mix string or
    # out-of-range value must 400 at submit time, not fail the job later.
    build_fleet_spec(merged)
    return merged


def build_fleet_spec(payload: dict, inject_crash: Optional[dict] = None) -> FleetSpec:
    """Turn a canonical payload into a :class:`FleetSpec`.

    ``inject_crash`` is the test-only fault hook (see
    :class:`repro.fleet.FleetSpec`); it is execution state, never part
    of the persisted payload or the spec fingerprint, so a daemon
    restarted *without* the hook resumes the same job cleanly.
    """
    mix = payload["mix"]
    return FleetSpec(
        sessions=payload["sessions"],
        seed=payload["seed"],
        mix=parse_mix(mix) if mix else default_mix(),
        shard_size=payload["shard_size"],
        max_retries=payload["max_retries"],
        shard_timeout_s=payload["shard_timeout_s"],
        settle_s=payload["settle_s"],
        trace_level=payload["trace_level"],
        inject_crash=inject_crash,
    )
