"""Fleet-as-a-service: the ``repro serve`` HTTP daemon.

The batch ``repro fleet`` CLI answers one population question and
exits; this package keeps the machinery resident.  A stdlib-only HTTP
daemon accepts simulation jobs (``POST /jobs`` with the same knobs as
the CLI, plus a scheduling ``priority``), executes up to
``--max-concurrent-jobs`` of them at once — each scheduler lane on its
own persistent :class:`repro.fleet.WorkerPool` partition — streams
mergeable aggregate folds over Server-Sent Events as shards complete,
renders an HTML policy dashboard per job, exposes Prometheus metrics
on ``GET /metrics``, bounds admission (429 + ``Retry-After`` on a full
queue), garbage-collects settled jobs per the retention flags, and —
because every job has its own fsync'd checkpoint journal — resumes
every in-flight job after a daemon restart with byte-identical
results.

Quickstart::

    python -m repro serve --port 8734 --jobs 4 --state-dir ./serve-state

    curl -X POST localhost:8734/jobs \\
         -d '{"sessions": 200, "seed": 7, "mix": "todo:greenweb,cnet:perf"}'
    curl -N localhost:8734/jobs/job-0001/events     # live SSE stream
    curl localhost:8734/jobs/job-0001/report        # HTML dashboard

Guarantees (inherited from :mod:`repro.fleet` and preserved end to
end): the terminal ``result`` SSE event is byte-identical to
``repro fleet --json-out`` for the same spec and seed, and a
killed-then-restarted daemon produces the same bytes as one that was
never interrupted.
"""

from repro.serve.jobs import (
    Job,
    JobScheduler,
    JobStore,
    QueueFull,
    merge_partials,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.schemas import build_fleet_spec, normalize_job_payload
from repro.serve.server import ServeApp, clamp_cursor, main_serve
from repro.serve.sse import ServerEvent, encode_event, iter_events

__all__ = [
    "Job",
    "JobScheduler",
    "JobStore",
    "QueueFull",
    "ServeApp",
    "ServeMetrics",
    "ServerEvent",
    "build_fleet_spec",
    "clamp_cursor",
    "encode_event",
    "iter_events",
    "main_serve",
    "merge_partials",
    "normalize_job_payload",
]
