"""Prometheus-text metrics for the ``repro serve`` daemon.

One :class:`ServeMetrics` instance per daemon accumulates counters and
the job wall-time histogram under a lock (the scheduler lanes, the HTTP
handler threads, and the SSE streams all write to it); the point-in-time
gauges — jobs by status, queue depth, lane/pool occupancy — are read
from the live store and scheduler at scrape time, so ``GET /metrics``
never shows a stale queue.

The exposition format is the Prometheus text format 0.0.4 (``# HELP`` /
``# TYPE`` preamble, one ``name{labels} value`` line per sample) — the
subset every scraper understands, emitted without any client library.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

#: Upper bounds (seconds) of the job wall-time histogram buckets; the
#: implicit +Inf bucket catches the rest.
WALL_TIME_BUCKETS_S = (1.0, 5.0, 15.0, 60.0, 300.0, 1800.0)


def _fmt(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def sample_line(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def render_samples(
    name: str,
    kind: str,
    help_text: str,
    samples: Iterable[tuple[dict[str, str], float]],
) -> list[str]:
    """One metric family: HELP + TYPE + its samples."""
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]
    for labels, value in samples:
        lines.append(sample_line(name, labels, value))
    return lines


class ServeMetrics:
    """Counters and the wall-time histogram, plus the scrape renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs_submitted = 0
        self.jobs_rejected = 0
        self.jobs_settled: dict[str, int] = {}
        self.jobs_pruned = 0
        self.shards_completed = 0
        self.sessions_completed = 0
        self.sse_subscribers = 0
        self._wall_bucket_counts = [0] * (len(WALL_TIME_BUCKETS_S) + 1)
        self._wall_sum_s = 0.0
        self._wall_count = 0

    # -- writers (scheduler lanes / HTTP threads) ----------------------
    def job_submitted(self) -> None:
        with self._lock:
            self.jobs_submitted += 1

    def job_rejected(self) -> None:
        with self._lock:
            self.jobs_rejected += 1

    def job_settled(self, status: str, wall_s: Optional[float] = None) -> None:
        with self._lock:
            self.jobs_settled[status] = self.jobs_settled.get(status, 0) + 1
            if wall_s is not None:
                for index, bound in enumerate(WALL_TIME_BUCKETS_S):
                    if wall_s <= bound:
                        self._wall_bucket_counts[index] += 1
                        break
                else:
                    self._wall_bucket_counts[-1] += 1
                self._wall_sum_s += wall_s
                self._wall_count += 1

    def jobs_pruned_add(self, count: int) -> None:
        with self._lock:
            self.jobs_pruned += count

    def shard_completed(self, sessions: int) -> None:
        with self._lock:
            self.shards_completed += 1
            self.sessions_completed += sessions

    def sse_opened(self) -> None:
        with self._lock:
            self.sse_subscribers += 1

    def sse_closed(self) -> None:
        with self._lock:
            self.sse_subscribers -= 1

    # -- readers -------------------------------------------------------
    def mean_wall_s(self) -> Optional[float]:
        """Mean settled-job wall time; the ``Retry-After`` hint input."""
        with self._lock:
            if not self._wall_count:
                return None
            return self._wall_sum_s / self._wall_count

    def render(
        self,
        *,
        jobs_by_status: dict[str, int],
        queue_depth: int,
        lanes_busy: int,
        lanes_total: int,
        pools: Iterable[tuple[int, int, int]],
    ) -> str:
        """The full ``GET /metrics`` document.

        ``pools`` yields ``(lane_index, workers, in_flight)`` triples
        read from the live worker pools at scrape time.
        """
        with self._lock:
            settled = dict(self.jobs_settled)
            wall_buckets = list(self._wall_bucket_counts)
            wall_sum, wall_count = self._wall_sum_s, self._wall_count
            submitted, rejected = self.jobs_submitted, self.jobs_rejected
            pruned = self.jobs_pruned
            shards, sessions = self.shards_completed, self.sessions_completed
            subscribers = self.sse_subscribers

        lines: list[str] = []
        lines += render_samples(
            "repro_serve_jobs", "gauge",
            "Jobs known to the daemon, by current status.",
            [({"status": status}, count)
             for status, count in sorted(jobs_by_status.items())],
        )
        lines += render_samples(
            "repro_serve_queue_depth", "gauge",
            "Jobs waiting in the admission queue.",
            [({}, queue_depth)],
        )
        lines += render_samples(
            "repro_serve_jobs_submitted_total", "counter",
            "Jobs accepted by POST /jobs since daemon start.",
            [({}, submitted)],
        )
        lines += render_samples(
            "repro_serve_jobs_rejected_total", "counter",
            "POST /jobs requests refused with 429 (queue full).",
            [({}, rejected)],
        )
        lines += render_samples(
            "repro_serve_jobs_settled_total", "counter",
            "Jobs settled since daemon start, by terminal status.",
            [({"status": status}, count)
             for status, count in sorted(settled.items())],
        )
        lines += render_samples(
            "repro_serve_jobs_pruned_total", "counter",
            "Settled jobs removed from the state dir by retention GC.",
            [({}, pruned)],
        )
        lines += render_samples(
            "repro_serve_shards_completed_total", "counter",
            "Shard partials accepted across all jobs (resumed included).",
            [({}, shards)],
        )
        lines += render_samples(
            "repro_serve_sessions_completed_total", "counter",
            "Sessions aggregated across all jobs (resumed included).",
            [({}, sessions)],
        )
        lines += render_samples(
            "repro_serve_sse_subscribers", "gauge",
            "Open SSE event-stream connections.",
            [({}, subscribers)],
        )
        lines += render_samples(
            "repro_serve_lanes", "gauge",
            "Scheduler lanes (concurrent job slots), by state.",
            [({"state": "busy"}, lanes_busy),
             ({"state": "idle"}, lanes_total - lanes_busy)],
        )
        pool_samples_workers: list[tuple[dict[str, str], float]] = []
        pool_samples_in_flight: list[tuple[dict[str, str], float]] = []
        for lane_index, workers, in_flight in pools:
            label = {"lane": str(lane_index)}
            pool_samples_workers.append((label, workers))
            pool_samples_in_flight.append((label, in_flight))
        lines += render_samples(
            "repro_serve_pool_workers", "gauge",
            "Worker processes provisioned per scheduler lane.",
            pool_samples_workers,
        )
        lines += render_samples(
            "repro_serve_pool_in_flight", "gauge",
            "Shards currently submitted to each lane's worker pool.",
            pool_samples_in_flight,
        )
        name = "repro_serve_job_wall_seconds"
        lines.append(
            f"# HELP {name} Wall-clock runtime of settled jobs "
            f"(execution start to settle)."
        )
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(WALL_TIME_BUCKETS_S, wall_buckets):
            cumulative += count
            lines.append(
                sample_line(f"{name}_bucket", {"le": f"{bound:g}"}, cumulative)
            )
        lines.append(sample_line(f"{name}_bucket", {"le": "+Inf"}, wall_count))
        lines.append(f"{name}_sum {_fmt(wall_sum)}")
        lines.append(f"{name}_count {_fmt(wall_count)}")
        return "\n".join(lines) + "\n"
