"""The ``repro serve`` HTTP daemon: fleet simulation as a service.

Stdlib only — :class:`http.server.ThreadingHTTPServer` accepts
connections (one thread per request), a :class:`JobScheduler` executes
up to ``--max-concurrent-jobs`` jobs at once, each lane on its own
:class:`repro.fleet.WorkerPool` partition, and the whole thing is
orchestrated by :class:`ServeApp` so the CLI, the tests, and the smoke
script drive the exact same lifecycle.

API surface::

    GET    /                 HTML index of jobs
    GET    /healthz          liveness + queue stats
    GET    /metrics          Prometheus text exposition
    POST   /jobs             submit a job (FleetSpec JSON) -> 201;
                             429 + Retry-After when the queue is full
    GET    /jobs             list jobs
    GET    /jobs/{id}        job detail
    DELETE /jobs/{id}        cancel (queued: immediate; running: stop)
    GET    /jobs/{id}/events SSE: update/snapshot events per completed
                             shard, terminal result/failed/cancelled
    GET    /jobs/{id}/report HTML dashboard (live or final)

The terminal ``result`` event's payload is byte-identical to
``repro fleet --json-out`` for the same spec and seed; a SIGTERM'd
daemon requeues every in-flight job and a restarted daemon resumes
each from its checkpoint journal, preserving that byte-identity even
with several jobs in flight.
"""

from __future__ import annotations

import html
import json
import os
import re
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.errors import EvaluationError, ReproError
from repro.evaluation.report import render_fleet_html
from repro.fleet import FleetAggregate, WorkerPool
from repro.serve.jobs import (
    CANCELLED,
    RUNNING,
    SETTLED,
    TERMINAL_EVENTS,
    Job,
    JobScheduler,
    JobStore,
    QueueFull,
    merge_partials,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.sse import encode_event

#: reconnection delay hint sent on every event stream (milliseconds)
SSE_RETRY_MS = 2000

#: idle SSE connections get a comment line this often so dead peers
#: surface as broken pipes instead of silent half-open sockets
KEEPALIVE_S = 15.0

_JOB_ROUTE = re.compile(r"^/jobs/([A-Za-z0-9_-]+)(?:/(events|report))?$")


def clamp_cursor(raw: Optional[str], seq: int) -> int:
    """Normalise a ``Last-Event-ID`` header into a valid event cursor.

    Garbage, negative, and beyond-the-log values all clamp into
    ``[0, seq]``: a cursor is a position in this job's event log, and
    accepting one outside it would either replay from a nonsense
    offset or wait forever for events that can never exist.
    """
    try:
        cursor = int(raw if raw is not None else 0)
    except ValueError:
        cursor = 0
    return max(0, min(cursor, seq))


class _Handler(BaseHTTPRequestHandler):
    """Request handler; ``self.server.app`` is the :class:`ServeApp`."""

    server_version = "repro-serve/1.0"

    @property
    def app(self) -> "ServeApp":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.app.quiet:
            return
        sys.stderr.write(
            f"serve: {self.address_string()} {format % args}\n"
        )

    # -- response helpers ---------------------------------------------
    def _send_json(
        self, status: int, body: dict, headers: Optional[dict] = None
    ) -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_html(self, status: int, text: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _job_or_404(self, job_id: str) -> Optional[Job]:
        job = self.app.store.get(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
        return job

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0]
        if path == "/" or path == "/index.html":
            return self._send_html(200, self.app.render_index())
        if path == "/healthz":
            return self._send_json(200, self.app.health())
        if path == "/metrics":
            return self._send_text(
                200, self.app.render_metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/jobs":
            return self._send_json(
                200, {"jobs": [job.to_summary() for job in self.app.store.list_jobs()]}
            )
        match = _JOB_ROUTE.match(path)
        if match:
            job = self._job_or_404(match.group(1))
            if job is None:
                return None
            if match.group(2) is None:
                return self._send_json(200, job.to_detail())
            if match.group(2) == "events":
                return self._stream_events(job)
            return self._send_html(200, self.app.render_report(job))
        return self._error(404, f"no such resource: {path}")

    def do_POST(self) -> None:  # noqa: N802
        if self.path.split("?", 1)[0] != "/jobs":
            return self._error(404, f"no such resource: {self.path}")
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            return self._error(400, "bad Content-Length")
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        except (ValueError, UnicodeDecodeError) as exc:
            return self._error(400, f"request body is not valid JSON: {exc}")
        try:
            job = self.app.store.submit(payload)
        except QueueFull as exc:
            # Backpressure, not failure: tell the client when the
            # queue is likely to have a slot again.
            self.app.metrics.job_rejected()
            retry_after = self.app.retry_after_hint()
            return self._send_json(
                429,
                {"error": str(exc), "retry_after_s": retry_after},
                headers={"Retry-After": str(retry_after)},
            )
        except ReproError as exc:
            return self._error(400, str(exc))
        self.app.metrics.job_submitted()
        return self._send_json(201, job.to_detail())

    def do_DELETE(self) -> None:  # noqa: N802
        match = _JOB_ROUTE.match(self.path.split("?", 1)[0])
        if not match or match.group(2) is not None:
            return self._error(404, f"no such resource: {self.path}")
        job = self._job_or_404(match.group(1))
        if job is None:
            return None
        try:
            self.app.store.cancel(job.id)
        except EvaluationError as exc:
            return self._error(409, str(exc))
        status = job.to_summary()["status"]
        if status == CANCELLED:
            # Queued-job cancel settles here, not in a scheduler lane:
            # account for it and apply retention now.
            self.app.metrics.job_settled(CANCELLED)
            self.app.scheduler.gc()
        return self._send_json(
            200,
            {"id": job.id, "status": status,
             "cancelling": status not in SETTLED},
        )

    # -- SSE -----------------------------------------------------------
    def _stream_events(self, job: Job) -> None:
        """Stream the job's event log as Server-Sent Events.

        Honors ``Last-Event-ID``: the cursor is clamped to the job's
        event-log range (see :func:`clamp_cursor`), retained events
        after it are replayed one by one, and if the cursor fell behind
        the replay window, one ``snapshot`` event (current progress
        plus the prefix aggregate) stands in for everything missed.
        The stream ends after a terminal event or at daemon shutdown.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()

        store = self.app.store
        self.app.metrics.sse_opened()
        try:
            with job.cond:
                cursor = clamp_cursor(
                    self.headers.get("Last-Event-ID"), job.seq
                )
                first_retained = job.events[0][0] if job.events else job.seq + 1
                snapshot = None
                if cursor < first_retained - 1 or (cursor == 0 and job.seq == 0):
                    snapshot = job.progress_data()
                    cursor = job.seq
            if snapshot is not None:
                self.wfile.write(
                    encode_event(
                        snapshot, event="snapshot",
                        id=cursor if cursor else None, retry=SSE_RETRY_MS,
                    )
                )
            else:
                # A standalone retry frame: no data (so no dispatched
                # event), but per spec it sets the stream-wide
                # reconnection time the moment the line is processed.
                self.wfile.write(f"retry: {SSE_RETRY_MS}\n\n".encode("utf-8"))
            self.wfile.flush()

            last_write = time.monotonic()
            while not store.closed:
                with job.cond:
                    batch = [event for event in job.events if event[0] > cursor]
                    if not batch:
                        if job.status in SETTLED and cursor >= job.seq:
                            return  # terminal already delivered; done
                        job.cond.wait(0.5)
                        batch = [event for event in job.events if event[0] > cursor]
                for seq, name, data in batch:
                    self.wfile.write(encode_event(data, event=name, id=seq))
                    cursor = seq
                    if name in TERMINAL_EVENTS:
                        self.wfile.flush()
                        return
                if batch:
                    self.wfile.flush()
                    last_write = time.monotonic()
                elif time.monotonic() - last_write >= KEEPALIVE_S:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    last_write = time.monotonic()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up
        finally:
            self.app.metrics.sse_closed()


class ServeApp:
    """Everything the daemon owns: store, scheduler, pools, HTTP server.

    Binding happens in the constructor so startup failures (port in
    use, bad state dir) surface as one-line
    :class:`~repro.errors.EvaluationError`\\ s before any thread starts.

    ``max_concurrent_jobs`` lanes execute jobs concurrently, each on
    its own :class:`WorkerPool` partition of roughly
    ``workers / max_concurrent_jobs`` processes (at least one per
    lane, so lanes can exceed ``workers`` when it is smaller than the
    lane count).  ``max_queued_jobs`` bounds admission (429 when
    full); ``retain_jobs``/``retain_age_s`` configure settled-job GC.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8734,
        state_dir: str = "repro-serve",
        workers: int = 2,
        max_concurrent_jobs: int = 1,
        max_queued_jobs: Optional[int] = None,
        retain_jobs: Optional[int] = None,
        retain_age_s: Optional[float] = None,
        inject_crash: Optional[dict] = None,
        quiet: bool = False,
    ):
        self.quiet = quiet
        if max_concurrent_jobs < 1:
            raise EvaluationError(
                f"--max-concurrent-jobs must be >= 1, got {max_concurrent_jobs}"
            )
        if workers < 1:
            raise EvaluationError(f"--jobs must be >= 1, got {workers}")
        try:
            os.makedirs(state_dir, exist_ok=True)
        except OSError as exc:
            raise EvaluationError(
                f"cannot create state dir {state_dir!r}: {exc.strerror or exc}"
            ) from None
        if not os.access(state_dir, os.W_OK):
            raise EvaluationError(f"state dir {state_dir!r} is not writable")
        self.metrics = ServeMetrics()
        self.store = JobStore(state_dir, max_queued=max_queued_jobs)
        per_lane = max(1, workers // max_concurrent_jobs)
        self.pools = [WorkerPool(per_lane) for _ in range(max_concurrent_jobs)]
        self.scheduler = JobScheduler(
            self.store,
            self.pools,
            inject_crash=inject_crash,
            metrics=self.metrics,
            retain_jobs=retain_jobs,
            retain_age_s=retain_age_s,
        )
        try:
            self.httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            raise EvaluationError(
                f"cannot bind http://{host}:{port}: {exc.strerror or exc}"
            ) from None
        self.httpd.daemon_threads = True
        self.httpd.app = self  # type: ignore[attr-defined]
        self._serve_thread: Optional[threading.Thread] = None
        self._stopped = False

    @property
    def total_workers(self) -> int:
        return sum(pool.workers for pool in self.pools)

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServeApp":
        recovered = self.store.recover()
        requeued = [job for job in recovered if job.status == "queued"]
        if requeued and not self.quiet:
            sys.stderr.write(
                f"serve: recovered {len(recovered)} job(s), "
                f"resuming {len(requeued)}: "
                f"{', '.join(job.id for job in requeued)}\n"
            )
        # Apply retention to what recovery loaded before running
        # anything: a daemon restarted after months prunes stale
        # settled jobs up front.
        self.scheduler.gc()
        self.scheduler.start()
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain every lane (each
        in-flight job goes back to queued with its checkpoint intact),
        wake every SSE subscriber, terminate the worker pools."""
        if self._stopped:
            return
        self._stopped = True
        self.httpd.shutdown()
        self.scheduler.drain()
        if self.scheduler.is_alive():
            self.scheduler.join(timeout=60.0)
        self.store.close()
        self.httpd.server_close()
        for pool in self.pools:
            pool.shutdown()

    def run_until_signal(self) -> int:
        """Foreground mode for the CLI: serve until SIGINT/SIGTERM."""
        received: list[int] = []
        done = threading.Event()

        def handle(signum: int, _frame) -> None:
            # Second signal: give up on graceful and exit immediately.
            signal.signal(signal.SIGINT, signal.default_int_handler)
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            received.append(signum)
            done.set()

        previous = {
            signum: signal.signal(signum, handle)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            self.start()
            host, port = self.address
            print(
                f"serving on http://{host}:{port} "
                f"(state dir {self.store.state_dir!r}, "
                f"{len(self.pools)} lane(s) x "
                f"{self.pools[0].workers} worker(s)); Ctrl-C to stop"
            )
            done.wait()
            signum = received[0] if received else signal.SIGTERM
            print(
                f"shutting down on {signal.Signals(signum).name}: draining "
                f"in-flight jobs (progress is checkpointed; restart resumes them)"
            )
            self.stop()
            return 128 + signum
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    # -- rendering -----------------------------------------------------
    def _jobs_by_status(self) -> dict[str, int]:
        by_status: dict[str, int] = {}
        for job in self.store.list_jobs():
            status = job.to_summary()["status"]
            by_status[status] = by_status.get(status, 0) + 1
        return by_status

    def health(self) -> dict:
        return {
            "status": "ok",
            "jobs": self._jobs_by_status(),
            "queue_depth": self.store.queue_depth(),
            "lanes": len(self.scheduler.lanes),
            "lanes_busy": self.scheduler.busy,
            "workers": self.total_workers,
        }

    def retry_after_hint(self) -> int:
        """Seconds until the admission queue plausibly has a slot.

        Queue depth times the mean settled-job wall time, divided
        across the lanes.  Before any job has settled there is no wall
        time to learn from, but queue depth is still a signal: a
        cold-start hint assumes 5 s per queued job instead of answering
        a flat 5 s regardless of how much work is already waiting.  A
        hint, not a promise — both paths share the [1 s, 600 s] clamp.
        """
        depth = self.store.queue_depth()
        lanes = len(self.scheduler.lanes)
        mean_wall = self.metrics.mean_wall_s()
        per_job = 5.0 if mean_wall is None else mean_wall
        estimate = per_job * max(depth, 1) / lanes
        return max(1, min(600, int(estimate + 0.5)))

    def render_metrics(self) -> str:
        """The ``GET /metrics`` Prometheus-text exposition."""
        return self.metrics.render(
            jobs_by_status=self._jobs_by_status(),
            queue_depth=self.store.queue_depth(),
            lanes_busy=self.scheduler.busy,
            lanes_total=len(self.scheduler.lanes),
            pools=[
                (index, pool.workers, pool.in_flight)
                for index, pool in enumerate(self.pools)
            ],
        )

    def render_report(self, job: Job) -> str:
        """The job dashboard: final result if done, live prefix else."""
        with job.cond:
            status = job.status
            result_text = job.result_text
            if result_text is None:
                data = {
                    "fleet": {
                        "sessions": job.payload["sessions"],
                        "seed": job.payload["seed"],
                        "shard_size": job.payload["shard_size"],
                        "shards": job.shards_total,
                    },
                    "run": {
                        "sessions_completed": job.sessions_completed,
                        "retries": 0,
                        "failed_shards": [],
                    },
                    "aggregate": (
                        merge_partials(job.partials)
                        if job.partials
                        else FleetAggregate()
                    ).to_dict(),
                }
            else:
                data = json.loads(result_text)
        progress = job.to_detail()["progress"]
        status_line = (
            f"status: {status} — {progress['shards_done']}/"
            f"{progress['shards_total']} shards, "
            f"{progress['sessions_completed']}/{progress['sessions_total']} sessions"
        )
        if status == RUNNING:
            status_line += " (live partial aggregate; refresh for updates)"
        elif status == CANCELLED:
            status_line += " (cancelled; aggregate covers completed shards only)"
        return render_fleet_html(data, title=f"fleet {job.id}", status_line=status_line)

    def render_index(self) -> str:
        rows = []
        for job in self.store.list_jobs():
            summary = job.to_summary()
            # Everything interpolated here originates from a request
            # payload or the state dir (recovered records can carry
            # arbitrary ids and spec values) — escape it all, not just
            # the fields that look dangerous today.
            esc = {
                key: html.escape(str(summary[key]), quote=True)
                for key in (
                    "id", "status", "shards_done", "shards_total", "sessions",
                )
            }
            rows.append(
                "<tr>"
                f'<td><a href="/jobs/{esc["id"]}">{esc["id"]}</a></td>'
                f"<td>{esc['status']}</td>"
                f"<td>{esc['shards_done']}/{esc['shards_total']}</td>"
                f"<td>{esc['sessions']}</td>"
                f'<td><a href="/jobs/{esc["id"]}/report">report</a> · '
                f'<a href="/jobs/{esc["id"]}/events">events</a></td>'
                "</tr>"
            )
        body = (
            "<table><tr><th>job</th><th>status</th><th>shards</th>"
            "<th>sessions</th><th>links</th></tr>" + "".join(rows) + "</table>"
            if rows
            else "<p>No jobs yet. Submit one with "
            "<code>curl -X POST /jobs -d '{\"sessions\": 64}'</code>.</p>"
        )
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            "<title>repro serve</title></head><body>"
            "<h1>repro serve — fleet jobs</h1>" + body + "</body></html>"
        )


def main_serve(
    host: str,
    port: int,
    state_dir: str,
    workers: int,
    max_concurrent_jobs: int = 1,
    max_queued_jobs: Optional[int] = None,
    retain_jobs: Optional[int] = None,
    retain_age_s: Optional[float] = None,
    quiet: bool = False,
) -> int:
    """CLI entry: build the app (startup errors raise one-line
    :class:`EvaluationError`), then serve until signalled."""
    inject = os.environ.get("REPRO_FLEET_INJECT_CRASH")
    app = ServeApp(
        host=host,
        port=port,
        state_dir=state_dir,
        workers=workers,
        max_concurrent_jobs=max_concurrent_jobs,
        max_queued_jobs=max_queued_jobs,
        retain_jobs=retain_jobs,
        retain_age_s=retain_age_s,
        inject_crash=json.loads(inject) if inject else None,
        quiet=quiet,
    )
    return app.run_until_signal()
