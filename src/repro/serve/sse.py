"""Server-Sent Events framing (RFC-free, WHATWG EventSource spec).

The daemon streams job progress as SSE because it needs exactly what
SSE gives for free over plain HTTP: ordered events with ids (so a
client can reconnect with ``Last-Event-ID``), a server-suggested
``retry`` interval, and text payloads that may span multiple lines —
all without any dependency beyond a socket.

:func:`encode_event` implements the wire framing; :func:`iter_events`
is the matching parser (used by the test suite and the smoke script as
a minimal client).  Round-tripping preserves payload text exactly,
trailing newline included — which is what lets the terminal ``result``
event carry the byte-identical ``repro fleet --json-out`` document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import EvaluationError


@dataclass(frozen=True)
class ServerEvent:
    """One decoded SSE event."""

    data: str
    event: str = "message"
    id: Optional[str] = None
    retry: Optional[int] = None


def encode_event(
    data: str,
    event: Optional[str] = None,
    id: Optional[str | int] = None,
    retry: Optional[int] = None,
) -> bytes:
    """Frame one event for the wire.

    ``data`` may contain newlines; each line becomes its own ``data:``
    field, and a trailing newline is preserved through the spec's
    reconstruction rule (the client joins data lines with ``\\n``, so a
    final empty ``data:`` line restores the trailing newline exactly).
    """
    for field_name, value in (("event", event), ("id", str(id) if id is not None else None)):
        if value is not None and ("\n" in value or "\r" in value):
            raise EvaluationError(f"SSE {field_name} field must be single-line: {value!r}")
    lines: list[str] = []
    if retry is not None:
        lines.append(f"retry: {int(retry)}")
    if id is not None:
        lines.append(f"id: {id}")
    if event is not None:
        lines.append(f"event: {event}")
    for data_line in data.split("\n"):
        lines.append(f"data: {data_line}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def _field(line: str) -> tuple[str, str]:
    """Split one SSE line into (field, value) per the spec: the value
    is everything after the first ``:``, minus one leading space."""
    name, _, value = line.partition(":")
    if value.startswith(" "):
        value = value[1:]
    return name, value


def iter_events(lines: Iterable[str]) -> Iterator[ServerEvent]:
    """Parse a decoded SSE text stream into events.

    ``lines`` yields text lines *without* their terminators (e.g.
    ``io.TextIOWrapper`` line iteration with newline stripping done by
    the caller).  Per the spec: blank line dispatches the pending
    event, ``data`` buffers accumulate joined by newline, the last
    newline of the buffer is stripped, comment lines (leading ``:``)
    are ignored, and events with an empty data buffer are dropped.

    Two fields outlive a dispatch, exactly as in the spec: the
    *last-event-id* buffer persists until a new ``id`` line replaces
    it, and ``retry`` sets the stream-wide reconnection time the
    moment its line is processed — so a standalone ``retry: N`` frame
    (no data, hence no dispatched event) still reaches the client, as
    the ``retry`` attribute of every subsequently dispatched event.
    """
    data_lines: list[str] = []
    event_name: Optional[str] = None
    event_id: Optional[str] = None
    retry: Optional[int] = None
    for raw in lines:
        line = raw.rstrip("\r\n") if raw.endswith(("\r", "\n")) else raw
        if line == "":
            if data_lines:
                yield ServerEvent(
                    data="\n".join(data_lines),
                    event=event_name or "message",
                    id=event_id,
                    retry=retry,
                )
            data_lines = []
            event_name = None
            continue
        if line.startswith(":"):
            continue  # comment / keep-alive
        name, value = _field(line)
        if name == "data":
            data_lines.append(value)
        elif name == "event":
            event_name = value
        elif name == "id":
            event_id = value
        elif name == "retry":
            try:
                retry = int(value)
            except ValueError:
                pass  # spec: ignore non-integer retry values
        # unknown fields are ignored (spec)
