"""Job lifecycle for the ``repro serve`` daemon.

A *job* is one fleet population to simulate: the canonical payload of a
``POST /jobs`` body, a status, a per-job checkpoint journal, and — while
the daemon lives — an in-memory event log streamed to SSE subscribers.

Restart safety is the defining property.  Everything a restarted daemon
needs is on disk in the state directory, written atomically or
append-only:

* ``<id>.job.json`` — the canonical payload plus the last *settled*
  status (``queued``/``cancelled``/``failed``).  ``running`` is never
  persisted: a daemon killed mid-job leaves the file saying ``queued``,
  which is exactly what recovery should do with it.
* ``<id>.ckpt`` — the fleet checkpoint journal
  (:mod:`repro.fleet.checkpoint`), fsync'd per shard.
* ``<id>.result.json`` — the terminal result document, byte-identical
  to ``repro fleet --json-out`` for the same spec; written atomically,
  its existence *is* the ``done`` status.

On restart, :meth:`JobStore.recover` re-enqueues every non-settled job
with ``resume`` semantics, so a SIGTERM'd daemon finishes its in-flight
jobs byte-identically to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from typing import Optional

from repro.errors import EvaluationError
from repro.fleet import Fleet, FleetAggregate, WorkerPool
from repro.ioutil import write_file_atomic
from repro.serve.metrics import ServeMetrics
from repro.serve.schemas import build_fleet_spec, normalize_job_payload

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: statuses that survive restarts as-is (everything else re-runs)
SETTLED = (DONE, FAILED, CANCELLED)

#: SSE event names that end a job's stream
TERMINAL_EVENTS = ("result", "failed", "cancelled")

#: per-job replay window: events older than this are summarised by a
#: ``snapshot`` on reconnect instead of replayed one by one
EVENT_WINDOW = 1024

#: daemon-generated job ids; recovered state dirs may contain others
_JOB_NUMBER = re.compile(r"^job-(\d+)$")


class QueueFull(EvaluationError):
    """Admission refused: the queue is at ``max_queued`` jobs.

    The server maps this to HTTP 429 with a ``Retry-After`` hint;
    recovery is exempt (a restarted daemon never drops persisted
    jobs, no matter how many it finds queued on disk).
    """


def merge_partials(partials: dict[int, dict]) -> FleetAggregate:
    """Merge shard partials in shard-index order.

    Index order is the one fixed order the batch driver uses, so a
    prefix aggregate streamed after shard ``k`` lands is byte-identical
    to what a batch run over exactly that shard subset would report —
    regardless of the (nondeterministic) order shards completed in.
    """
    aggregate = FleetAggregate()
    for index in sorted(partials):
        aggregate.merge(FleetAggregate.from_dict(partials[index]["aggregate"]))
    return aggregate


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class Job:
    """One submitted fleet job and its live, lock-guarded state."""

    def __init__(self, job_id: str, payload: dict, status: str = QUEUED):
        self.id = job_id
        self.payload = payload
        self.status = status
        #: admission priority — higher runs sooner; ties break by
        #: submission order.  Older persisted records predate the field.
        self.priority: int = payload.get("priority", 0)
        #: store-assigned admission sequence number; a requeued job
        #: keeps its original one, so a daemon drain puts it back ahead
        #: of everything submitted after it at the same priority.
        self.submit_seq = 0
        #: wall-clock time the job reached a settled status (retention
        #: GC orders and ages settled jobs by this)
        self.settled_at: Optional[float] = None
        self.error: Optional[str] = None
        self.ok: Optional[bool] = None
        self.result_text: Optional[str] = None
        self.cancel_requested = False
        self.stop = threading.Event()
        self.resumed_shards = 0

        self.shards_total = _ceil_div(payload["sessions"], payload["shard_size"])
        self.shards_done = 0
        self.sessions_completed = 0
        self.partials: dict[int, dict] = {}

        self.cond = threading.Condition()
        self.seq = 0
        #: retained (seq, name, data) events for replay; older ones are
        #: covered by the snapshot a late subscriber receives first
        self.events: deque[tuple[int, str, str]] = deque(maxlen=EVENT_WINDOW)

    @property
    def sort_key(self) -> tuple[int, int]:
        """Queue order: highest priority first, then admission order."""
        return (-self.priority, self.submit_seq)

    # -- event log -----------------------------------------------------
    def publish(self, name: str, data: str) -> int:
        with self.cond:
            self.seq += 1
            self.events.append((self.seq, name, data))
            self.cond.notify_all()
            return self.seq

    def progress_data(self, shard: Optional[dict] = None) -> str:
        """The JSON body of an ``update``/``snapshot`` event.

        Callers must hold no expectation of atomicity beyond what the
        job condition lock gives them; the runner publishes under it.
        """
        body = {
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "sessions_total": self.payload["sessions"],
            "sessions_completed": self.sessions_completed,
            "aggregate": merge_partials(self.partials).to_dict(),
        }
        if shard is not None:
            body["shard"] = shard["shard"]
            body["shard_sessions"] = shard["sessions"]
        return json.dumps(body, sort_keys=True)

    # -- API projections ----------------------------------------------
    def to_summary(self) -> dict:
        with self.cond:
            return {
                "id": self.id,
                "status": self.status,
                "priority": self.priority,
                "sessions": self.payload["sessions"],
                "shards_done": self.shards_done,
                "shards_total": self.shards_total,
                "ok": self.ok,
            }

    def to_detail(self) -> dict:
        with self.cond:
            detail = {
                "id": self.id,
                "status": self.status,
                "priority": self.priority,
                "spec": dict(self.payload),
                "progress": {
                    "shards_done": self.shards_done,
                    "shards_total": self.shards_total,
                    "sessions_completed": self.sessions_completed,
                    "sessions_total": self.payload["sessions"],
                    "resumed_shards": self.resumed_shards,
                },
                "ok": self.ok,
                "error": self.error,
                "cancel_requested": self.cancel_requested,
                "links": {
                    "events": f"/jobs/{self.id}/events",
                    "report": f"/jobs/{self.id}/report",
                },
            }
            return detail


class JobStore:
    """All jobs the daemon knows, backed by the state directory.

    ``max_queued`` bounds the *admission* queue (jobs waiting for a
    scheduler lane); when it is full, :meth:`submit` raises
    :class:`QueueFull` instead of accepting work the daemon cannot
    start.  Running and settled jobs never count against the bound,
    and :meth:`recover` is exempt — persisted jobs are always loaded.
    """

    def __init__(self, state_dir: str, max_queued: Optional[int] = None):
        if max_queued is not None and max_queued < 1:
            raise EvaluationError(
                f"max_queued must be >= 1 (or None for unbounded), "
                f"got {max_queued}"
            )
        self.state_dir = state_dir
        self.max_queued = max_queued
        self._lock = threading.Condition()
        self._jobs: dict[str, Job] = {}
        #: queued job ids; order is decided at claim time by
        #: :attr:`Job.sort_key` (priority, then admission sequence)
        self._queue: list[str] = []
        self._submit_seq = 0
        self.closed = False

    # -- paths ---------------------------------------------------------
    def job_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.job.json")

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.ckpt")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.result.json")

    def _persist(self, job: Job) -> None:
        record = {"id": job.id, "status": job.status, "spec": job.payload}
        if job.error is not None:
            record["error"] = job.error
        if job.settled_at is not None:
            record["settled_at"] = job.settled_at
        write_file_atomic(
            self.job_path(job.id), json.dumps(record, sort_keys=True) + "\n"
        )

    # -- lifecycle -----------------------------------------------------
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def submit(self, payload: object) -> Job:
        """Validate, persist, and enqueue one job; returns it.

        Raises :class:`QueueFull` when the admission queue is at
        ``max_queued`` — before anything is persisted, so a rejected
        submission leaves no trace in the state dir.
        """
        canonical = normalize_job_payload(payload)
        with self._lock:
            if self.closed:
                raise EvaluationError("job store is shut down")
            if self.max_queued is not None and len(self._queue) >= self.max_queued:
                raise QueueFull(
                    f"admission queue is full ({len(self._queue)}/"
                    f"{self.max_queued} queued jobs); retry later"
                )
            # Recovered state dirs may hold ids this daemon did not
            # mint; number past the daemon-format ones only.
            numbers = (
                int(match.group(1))
                for match in map(_JOB_NUMBER.match, self._jobs)
                if match is not None
            )
            job = Job(f"job-{1 + max(numbers, default=0):04d}", canonical)
            self._submit_seq += 1
            job.submit_seq = self._submit_seq
            self._jobs[job.id] = job
            self._persist(job)
            self._queue.append(job.id)
            self._lock.notify_all()
            return job

    def recover(self) -> list[Job]:
        """Load the state directory written by a previous daemon life.

        Jobs with a result document are ``done``; settled statuses
        (``cancelled``/``failed``) load as-is; everything else —
        including jobs that were mid-run when the daemon died — goes
        back on the queue, to be resumed from its checkpoint journal.
        """
        recovered: list[Job] = []
        for name in sorted(os.listdir(self.state_dir)):
            if not name.endswith(".job.json"):
                continue
            with open(os.path.join(self.state_dir, name), encoding="utf-8") as handle:
                record = json.load(handle)
            job = Job(record["id"], record["spec"], status=record["status"])
            job.error = record.get("error")
            job.settled_at = record.get("settled_at")
            result_path = self.result_path(job.id)
            if os.path.exists(result_path):
                with open(result_path, encoding="utf-8") as handle:
                    job.result_text = handle.read()
                job.status = DONE
                result = json.loads(job.result_text)
                job.shards_done = job.shards_total
                job.sessions_completed = result["run"]["sessions_completed"]
                job.ok = not result["run"]["failed_shards"]
                if job.settled_at is None:
                    # Result written, daemon died before re-persisting
                    # the record: the result file's mtime is settle time.
                    job.settled_at = os.path.getmtime(result_path)
            elif job.status not in SETTLED:
                job.status = QUEUED
            recovered.append(job)
        # The admission bound deliberately does not apply here:
        # persisted jobs are never dropped, however many were queued
        # at shutdown.
        with self._lock:
            for job in recovered:
                self._submit_seq += 1
                job.submit_seq = self._submit_seq
                self._jobs[job.id] = job
                if job.status == QUEUED:
                    self._queue.append(job.id)
            self._lock.notify_all()
        return recovered

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def claim_next(self, timeout: float = 0.5) -> Optional[Job]:
        """Pop the best queued job and mark it running (scheduler only).

        "Best" is highest priority, oldest admission within a priority
        — :attr:`Job.sort_key`.  Safe to call from any number of
        scheduler lanes concurrently; each queued job is claimed once.
        """
        with self._lock:
            if not self._queue:
                self._lock.wait(timeout)
            if self.closed or not self._queue:
                return None
            job_id = min(self._queue, key=lambda jid: self._jobs[jid].sort_key)
            self._queue.remove(job_id)
            job = self._jobs[job_id]
        with job.cond:
            job.status = RUNNING
        return job

    def requeue(self, job: Job) -> None:
        """Put a drained (daemon-shutdown) job back in queued state.

        Its persisted record already says ``queued`` — running is never
        written to disk — so only the in-memory state moves.  The job
        keeps its original admission sequence, so it sorts ahead of
        everything submitted after it at the same priority.
        """
        with job.cond:
            job.status = QUEUED
            job.stop = threading.Event()
        with self._lock:
            self._queue.append(job.id)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job outright or request stop of a running one."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        with self._lock:
            with job.cond:
                if job.status in SETTLED:
                    raise EvaluationError(
                        f"job {job_id} is already {job.status}; nothing to cancel"
                    )
                job.cancel_requested = True
                if job.status == QUEUED:
                    if job_id in self._queue:
                        self._queue.remove(job_id)
                    job.status = CANCELLED
                    job.settled_at = time.time()
                    self._persist(job)
                else:
                    job.stop.set()
        if job.status == CANCELLED:
            job.publish("cancelled", json.dumps({"id": job.id, "status": CANCELLED}))
        return job

    def settle(self, job: Job, status: str, *, error: Optional[str] = None) -> None:
        """Move a job to a terminal status and persist it."""
        with job.cond:
            job.status = status
            job.error = error
            job.settled_at = time.time()
        with self._lock:
            self._persist(job)

    def prune(
        self,
        retain_jobs: Optional[int] = None,
        retain_age_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> list[str]:
        """Retention GC: drop settled jobs beyond the policy.

        A settled job is pruned when it falls outside the newest
        ``retain_jobs`` settled jobs, or settled more than
        ``retain_age_s`` seconds ago; either limit alone prunes.
        Unsettled jobs (queued/running) are never candidates, so their
        checkpoint journals are never touched.  Per job the files go
        in resurrection-proof order — ``<id>.job.json`` first (without
        it a half-pruned job can never be recovered and re-run),
        result and checkpoint after — and the in-memory entry last.
        """
        if retain_jobs is None and retain_age_s is None:
            return []
        now = time.time() if now is None else now
        with self._lock:
            settled = [
                job for job in self._jobs.values() if job.status in SETTLED
            ]
            # Newest settle first; jobs with no recorded settle time
            # (legacy records) age as oldest.
            settled.sort(key=lambda job: job.settled_at or 0.0, reverse=True)
            doomed: list[Job] = []
            for rank, job in enumerate(settled):
                too_many = retain_jobs is not None and rank >= retain_jobs
                age = now - (job.settled_at or 0.0)
                too_old = retain_age_s is not None and age > retain_age_s
                if too_many or too_old:
                    doomed.append(job)
            for job in doomed:
                for path in (
                    self.job_path(job.id),
                    self.result_path(job.id),
                    self.checkpoint_path(job.id),
                ):
                    try:
                        os.remove(path)
                    except FileNotFoundError:
                        pass
                del self._jobs[job.id]
        return [job.id for job in doomed]

    def close(self) -> None:
        with self._lock:
            self.closed = True
            self._lock.notify_all()
        for job in self.list_jobs():
            with job.cond:
                job.cond.notify_all()


class _JobLane(threading.Thread):
    """One concurrent job slot: a claim loop over its own worker pool.

    A lane owns a :class:`WorkerPool` partition outright, so a hang in
    one job rebuilds only that lane's workers — jobs in other lanes
    never lose in-flight shards to a neighbour's misbehaviour — and
    warm worker processes carry over from job to job within the lane.
    """

    def __init__(self, scheduler: "JobScheduler", index: int, pool: WorkerPool):
        super().__init__(name=f"repro-serve-lane-{index}", daemon=True)
        self.scheduler = scheduler
        self.store = scheduler.store
        self.index = index
        self.pool = pool
        self._draining = threading.Event()
        self.current: Optional[Job] = None

    def drain(self) -> None:
        """Stop after the current shard: running job goes back to
        queued (its checkpoint keeps its progress), queue stays put."""
        self._draining.set()
        job = self.current
        if job is not None:
            job.stop.set()

    def run(self) -> None:
        while not self._draining.is_set() and not self.store.closed:
            job = self.store.claim_next(timeout=0.2)
            if job is None:
                continue
            self.current = job
            try:
                self._execute(job)
            finally:
                self.current = None

    # -----------------------------------------------------------------
    def _execute(self, job: Job) -> None:
        store = self.store
        metrics = self.scheduler.metrics
        if self._draining.is_set():
            # Drain landed between claim and start: nothing ran yet.
            store.requeue(job)
            return
        started = time.monotonic()

        def wall_s() -> float:
            return time.monotonic() - started

        def on_shard(partial: dict, accepted: int, total: int) -> None:
            with job.cond:
                job.partials[partial["shard"]] = partial
                job.shards_done = accepted
                job.shards_total = total
                job.sessions_completed += partial["sessions"]
                data = job.progress_data(shard=partial)
            metrics.shard_completed(partial["sessions"])
            job.publish("update", data)

        try:
            spec = build_fleet_spec(
                job.payload, inject_crash=self.scheduler.inject_crash
            )
            fleet = Fleet(
                spec,
                jobs=self.pool.workers,
                checkpoint=store.checkpoint_path(job.id),
                # Resume semantics always: a fresh job has no journal
                # (degrades to a fresh checkpoint), a recovered one
                # reloads its completed shards and reruns the rest.
                resume=True,
                pool=self.pool,
                on_shard=on_shard,
                stop=job.stop,
            )
            result = fleet.run()
        except Exception as exc:  # noqa: BLE001 - one job must not kill the daemon
            store.settle(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            metrics.job_settled(FAILED, wall_s())
            job.publish("failed", json.dumps({"id": job.id, "error": job.error}))
            self.scheduler.gc()
            return

        with job.cond:
            job.resumed_shards = result.resumed_shards

        if result.stopped:
            if job.cancel_requested:
                store.settle(job, CANCELLED)
                metrics.job_settled(CANCELLED, wall_s())
                job.publish(
                    "cancelled",
                    json.dumps(
                        {"id": job.id, "status": CANCELLED,
                         "shards_done": job.shards_done}
                    ),
                )
                self.scheduler.gc()
            else:
                # Daemon drain: the job is not over, the daemon is.
                store.requeue(job)
            return

        result_text = result.to_json()
        write_file_atomic(store.result_path(job.id), result_text)
        with job.cond:
            job.result_text = result_text
            job.ok = not result.failures
        store.settle(job, DONE)
        metrics.job_settled(DONE, wall_s())
        job.publish("result", result_text)
        self.scheduler.gc()


class JobScheduler:
    """N concurrent job lanes over a partitioned worker-pool fleet.

    The single-runner design this replaces made "daemon capacity" one
    shared pool; here each lane gets its own :class:`WorkerPool`
    partition so concurrent jobs cannot starve or rebuild each other.
    The scheduler is the facade the daemon drives: ``start``/``drain``/
    ``join`` fan out to every lane, :meth:`gc` applies the retention
    policy after any job settles, and :attr:`busy` feeds the metrics
    and the ``Retry-After`` hint.
    """

    def __init__(
        self,
        store: JobStore,
        pools: list[WorkerPool],
        inject_crash: Optional[dict] = None,
        metrics: Optional[ServeMetrics] = None,
        retain_jobs: Optional[int] = None,
        retain_age_s: Optional[float] = None,
    ):
        if not pools:
            raise EvaluationError("job scheduler needs >= 1 worker pool")
        self.store = store
        self.inject_crash = inject_crash
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.retain_jobs = retain_jobs
        self.retain_age_s = retain_age_s
        self.lanes = [
            _JobLane(self, index, pool) for index, pool in enumerate(pools)
        ]

    def start(self) -> None:
        for lane in self.lanes:
            lane.start()

    def drain(self) -> None:
        """Stop every lane after its current shard; running jobs go
        back to queued with their checkpoints intact."""
        for lane in self.lanes:
            lane.drain()

    def join(self, timeout: Optional[float] = None) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        for lane in self.lanes:
            if not lane.is_alive():
                continue
            remaining = (
                None if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            lane.join(timeout=remaining)

    def is_alive(self) -> bool:
        return any(lane.is_alive() for lane in self.lanes)

    @property
    def busy(self) -> int:
        """Lanes currently executing a job."""
        return sum(1 for lane in self.lanes if lane.current is not None)

    def gc(self) -> list[str]:
        """Apply the retention policy; returns the pruned job ids."""
        pruned = self.store.prune(
            retain_jobs=self.retain_jobs, retain_age_s=self.retain_age_s
        )
        if pruned:
            self.metrics.jobs_pruned_add(len(pruned))
        return pruned
