"""Job lifecycle for the ``repro serve`` daemon.

A *job* is one fleet population to simulate: the canonical payload of a
``POST /jobs`` body, a status, a per-job checkpoint journal, and — while
the daemon lives — an in-memory event log streamed to SSE subscribers.

Restart safety is the defining property.  Everything a restarted daemon
needs is on disk in the state directory, written atomically or
append-only:

* ``<id>.job.json`` — the canonical payload plus the last *settled*
  status (``queued``/``cancelled``/``failed``).  ``running`` is never
  persisted: a daemon killed mid-job leaves the file saying ``queued``,
  which is exactly what recovery should do with it.
* ``<id>.ckpt`` — the fleet checkpoint journal
  (:mod:`repro.fleet.checkpoint`), fsync'd per shard.
* ``<id>.result.json`` — the terminal result document, byte-identical
  to ``repro fleet --json-out`` for the same spec; written atomically,
  its existence *is* the ``done`` status.

On restart, :meth:`JobStore.recover` re-enqueues every non-settled job
with ``resume`` semantics, so a SIGTERM'd daemon finishes its in-flight
jobs byte-identically to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Optional

from repro.errors import EvaluationError
from repro.fleet import Fleet, FleetAggregate, WorkerPool
from repro.ioutil import write_file_atomic
from repro.serve.schemas import build_fleet_spec, normalize_job_payload

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: statuses that survive restarts as-is (everything else re-runs)
SETTLED = (DONE, FAILED, CANCELLED)

#: SSE event names that end a job's stream
TERMINAL_EVENTS = ("result", "failed", "cancelled")

#: per-job replay window: events older than this are summarised by a
#: ``snapshot`` on reconnect instead of replayed one by one
EVENT_WINDOW = 1024


def merge_partials(partials: dict[int, dict]) -> FleetAggregate:
    """Merge shard partials in shard-index order.

    Index order is the one fixed order the batch driver uses, so a
    prefix aggregate streamed after shard ``k`` lands is byte-identical
    to what a batch run over exactly that shard subset would report —
    regardless of the (nondeterministic) order shards completed in.
    """
    aggregate = FleetAggregate()
    for index in sorted(partials):
        aggregate.merge(FleetAggregate.from_dict(partials[index]["aggregate"]))
    return aggregate


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class Job:
    """One submitted fleet job and its live, lock-guarded state."""

    def __init__(self, job_id: str, payload: dict, status: str = QUEUED):
        self.id = job_id
        self.payload = payload
        self.status = status
        self.error: Optional[str] = None
        self.ok: Optional[bool] = None
        self.result_text: Optional[str] = None
        self.cancel_requested = False
        self.stop = threading.Event()
        self.resumed_shards = 0

        self.shards_total = _ceil_div(payload["sessions"], payload["shard_size"])
        self.shards_done = 0
        self.sessions_completed = 0
        self.partials: dict[int, dict] = {}

        self.cond = threading.Condition()
        self.seq = 0
        #: retained (seq, name, data) events for replay; older ones are
        #: covered by the snapshot a late subscriber receives first
        self.events: deque[tuple[int, str, str]] = deque(maxlen=EVENT_WINDOW)

    # -- event log -----------------------------------------------------
    def publish(self, name: str, data: str) -> int:
        with self.cond:
            self.seq += 1
            self.events.append((self.seq, name, data))
            self.cond.notify_all()
            return self.seq

    def progress_data(self, shard: Optional[dict] = None) -> str:
        """The JSON body of an ``update``/``snapshot`` event.

        Callers must hold no expectation of atomicity beyond what the
        job condition lock gives them; the runner publishes under it.
        """
        body = {
            "shards_done": self.shards_done,
            "shards_total": self.shards_total,
            "sessions_total": self.payload["sessions"],
            "sessions_completed": self.sessions_completed,
            "aggregate": merge_partials(self.partials).to_dict(),
        }
        if shard is not None:
            body["shard"] = shard["shard"]
            body["shard_sessions"] = shard["sessions"]
        return json.dumps(body, sort_keys=True)

    # -- API projections ----------------------------------------------
    def to_summary(self) -> dict:
        with self.cond:
            return {
                "id": self.id,
                "status": self.status,
                "sessions": self.payload["sessions"],
                "shards_done": self.shards_done,
                "shards_total": self.shards_total,
                "ok": self.ok,
            }

    def to_detail(self) -> dict:
        with self.cond:
            detail = {
                "id": self.id,
                "status": self.status,
                "spec": dict(self.payload),
                "progress": {
                    "shards_done": self.shards_done,
                    "shards_total": self.shards_total,
                    "sessions_completed": self.sessions_completed,
                    "sessions_total": self.payload["sessions"],
                    "resumed_shards": self.resumed_shards,
                },
                "ok": self.ok,
                "error": self.error,
                "cancel_requested": self.cancel_requested,
                "links": {
                    "events": f"/jobs/{self.id}/events",
                    "report": f"/jobs/{self.id}/report",
                },
            }
            return detail


class JobStore:
    """All jobs the daemon knows, backed by the state directory."""

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        self._lock = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._queue: deque[str] = deque()
        self.closed = False

    # -- paths ---------------------------------------------------------
    def job_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.job.json")

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.ckpt")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.result.json")

    def _persist(self, job: Job) -> None:
        record = {"id": job.id, "status": job.status, "spec": job.payload}
        if job.error is not None:
            record["error"] = job.error
        write_file_atomic(
            self.job_path(job.id), json.dumps(record, sort_keys=True) + "\n"
        )

    # -- lifecycle -----------------------------------------------------
    def submit(self, payload: object) -> Job:
        """Validate, persist, and enqueue one job; returns it."""
        canonical = normalize_job_payload(payload)
        with self._lock:
            if self.closed:
                raise EvaluationError("job store is shut down")
            number = 1 + max(
                (int(job_id.split("-")[1]) for job_id in self._jobs), default=0
            )
            job = Job(f"job-{number:04d}", canonical)
            self._jobs[job.id] = job
            self._persist(job)
            self._queue.append(job.id)
            self._lock.notify_all()
            return job

    def recover(self) -> list[Job]:
        """Load the state directory written by a previous daemon life.

        Jobs with a result document are ``done``; settled statuses
        (``cancelled``/``failed``) load as-is; everything else —
        including jobs that were mid-run when the daemon died — goes
        back on the queue, to be resumed from its checkpoint journal.
        """
        recovered: list[Job] = []
        for name in sorted(os.listdir(self.state_dir)):
            if not name.endswith(".job.json"):
                continue
            with open(os.path.join(self.state_dir, name), encoding="utf-8") as handle:
                record = json.load(handle)
            job = Job(record["id"], record["spec"], status=record["status"])
            job.error = record.get("error")
            result_path = self.result_path(job.id)
            if os.path.exists(result_path):
                with open(result_path, encoding="utf-8") as handle:
                    job.result_text = handle.read()
                job.status = DONE
                result = json.loads(job.result_text)
                job.shards_done = job.shards_total
                job.sessions_completed = result["run"]["sessions_completed"]
                job.ok = not result["run"]["failed_shards"]
            elif job.status not in SETTLED:
                job.status = QUEUED
            recovered.append(job)
        with self._lock:
            for job in recovered:
                self._jobs[job.id] = job
                if job.status == QUEUED:
                    self._queue.append(job.id)
            self._lock.notify_all()
        return recovered

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def claim_next(self, timeout: float = 0.5) -> Optional[Job]:
        """Pop the oldest queued job and mark it running (runner only)."""
        with self._lock:
            if not self._queue:
                self._lock.wait(timeout)
            if self.closed or not self._queue:
                return None
            job = self._jobs[self._queue.popleft()]
        with job.cond:
            job.status = RUNNING
        return job

    def requeue(self, job: Job) -> None:
        """Put a drained (daemon-shutdown) job back in queued state.

        Its persisted record already says ``queued`` — running is never
        written to disk — so only the in-memory state moves.
        """
        with job.cond:
            job.status = QUEUED
            job.stop = threading.Event()
        with self._lock:
            self._queue.appendleft(job.id)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job outright or request stop of a running one."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        with self._lock:
            with job.cond:
                if job.status in SETTLED:
                    raise EvaluationError(
                        f"job {job_id} is already {job.status}; nothing to cancel"
                    )
                job.cancel_requested = True
                if job.status == QUEUED:
                    if job_id in self._queue:
                        self._queue.remove(job_id)
                    job.status = CANCELLED
                    self._persist(job)
                else:
                    job.stop.set()
        if job.status == CANCELLED:
            job.publish("cancelled", json.dumps({"id": job.id, "status": CANCELLED}))
        return job

    def settle(self, job: Job, status: str, *, error: Optional[str] = None) -> None:
        """Move a job to a terminal status and persist it."""
        with job.cond:
            job.status = status
            job.error = error
        with self._lock:
            self._persist(job)

    def close(self) -> None:
        with self._lock:
            self.closed = True
            self._lock.notify_all()
        for job in self.list_jobs():
            with job.cond:
                job.cond.notify_all()


class JobRunner(threading.Thread):
    """The single job-execution thread: queue in, fleet runs out.

    Jobs run one at a time on the shared :class:`WorkerPool`, so "the
    daemon's capacity" is one knob (``--jobs``) and warm worker
    processes carry over from job to job.  Parallelism *within* a job
    is the fleet driver's shard fan-out, exactly as in the batch CLI.
    """

    def __init__(self, store: JobStore, pool: WorkerPool, inject_crash: Optional[dict] = None):
        super().__init__(name="repro-serve-runner", daemon=True)
        self.store = store
        self.pool = pool
        self.inject_crash = inject_crash
        self._draining = threading.Event()
        self.current: Optional[Job] = None

    def drain(self) -> None:
        """Stop after the current shard: running job goes back to
        queued (its checkpoint keeps its progress), queue stays put."""
        self._draining.set()
        job = self.current
        if job is not None:
            job.stop.set()

    def run(self) -> None:
        while not self._draining.is_set() and not self.store.closed:
            job = self.store.claim_next(timeout=0.2)
            if job is None:
                continue
            self.current = job
            try:
                self._execute(job)
            finally:
                self.current = None

    # -----------------------------------------------------------------
    def _execute(self, job: Job) -> None:
        store = self.store
        if self._draining.is_set():
            # Drain landed between claim and start: nothing ran yet.
            store.requeue(job)
            return

        def on_shard(partial: dict, accepted: int, total: int) -> None:
            with job.cond:
                job.partials[partial["shard"]] = partial
                job.shards_done = accepted
                job.shards_total = total
                job.sessions_completed += partial["sessions"]
                data = job.progress_data(shard=partial)
            job.publish("update", data)

        try:
            spec = build_fleet_spec(job.payload, inject_crash=self.inject_crash)
            fleet = Fleet(
                spec,
                jobs=self.pool.workers,
                checkpoint=store.checkpoint_path(job.id),
                # Resume semantics always: a fresh job has no journal
                # (degrades to a fresh checkpoint), a recovered one
                # reloads its completed shards and reruns the rest.
                resume=True,
                pool=self.pool,
                on_shard=on_shard,
                stop=job.stop,
            )
            result = fleet.run()
        except Exception as exc:  # noqa: BLE001 - one job must not kill the daemon
            store.settle(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            job.publish("failed", json.dumps({"id": job.id, "error": job.error}))
            return

        with job.cond:
            job.resumed_shards = result.resumed_shards

        if result.stopped:
            if job.cancel_requested:
                store.settle(job, CANCELLED)
                job.publish(
                    "cancelled",
                    json.dumps(
                        {"id": job.id, "status": CANCELLED,
                         "shards_done": job.shards_done}
                    ),
                )
            else:
                # Daemon drain: the job is not over, the daemon is.
                store.requeue(job)
            return

        result_text = result.to_json()
        write_file_atomic(store.result_path(job.id), result_text)
        with job.cond:
            job.result_text = result_text
            job.ok = not result.failures
        store.settle(job, DONE)
        job.publish("result", result_text)
