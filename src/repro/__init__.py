"""GreenWeb (PLDI 2016) reproduction.

A research-quality Python implementation of *GreenWeb: Language
Extensions for Energy-Efficient Mobile Web Computing* (Zhu & Reddi,
PLDI 2016): the QoS language extensions, the predictive ACMP/DVFS
browser runtime, the AutoGreen automatic annotator, and every substrate
they need (a discrete-event browser-engine simulator and a calibrated
big.LITTLE hardware model), plus the full evaluation harness that
regenerates the paper's figures.

Quickstart::

    from repro import Session

    session = Session.for_application("todo", governor="greenweb",
                                      scenario="imperceptible")
    result = session.run_full_interaction()
    print(result.energy_j, result.mean_violation_pct)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — QoS abstractions, the GreenWeb CSS extension,
  the predictive runtime, baseline governors (the paper's contribution).
* :mod:`repro.scenarios` — usage scenarios as parameterizable
  simulation actors (``thermal(cap_mhz=1100)``, ``battery(...)``, ...).
* :mod:`repro.autogreen` — automatic annotation (paper Sec. 5).
* :mod:`repro.browser` — Chromium-like frame pipeline simulator.
* :mod:`repro.hardware` — big.LITTLE platform with DVFS and energy.
* :mod:`repro.web` — DOM / CSS / events / script substrate.
* :mod:`repro.workloads` — the twelve Table 3 applications.
* :mod:`repro.evaluation` — per-figure experiment harness.
* :mod:`repro.fleet` — population-scale parallel session simulation
  with streaming, mergeable aggregation.
"""

from repro.core.annotations import AnnotationRegistry
from repro.core.language import GreenWebAnnotation, extract_annotations
from repro.core.qos import (
    QoSSpec,
    QoSTarget,
    QoSType,
    ResponseExpectation,
    UsageScenario,
)
from repro.core.runtime import GreenWebRuntime
from repro.fleet import Fleet, FleetSpec
from repro.policies import POLICIES, PolicySpec, register
from repro.scenarios import SCENARIOS, ScenarioSpec
from repro.session import Session

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Session",
    "Fleet",
    "FleetSpec",
    "QoSType",
    "QoSTarget",
    "QoSSpec",
    "ResponseExpectation",
    "UsageScenario",
    "GreenWebAnnotation",
    "extract_annotations",
    "AnnotationRegistry",
    "GreenWebRuntime",
    "POLICIES",
    "PolicySpec",
    "SCENARIOS",
    "ScenarioSpec",
    "register",
]
