"""Exception hierarchy for the GreenWeb reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised for invalid operations on the discrete-event kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled into the past or on a dead kernel."""


class HardwareError(ReproError):
    """Raised for invalid hardware platform configuration or operation."""


class FrequencyError(HardwareError):
    """Raised when a requested operating point does not exist."""


class DomError(ReproError):
    """Raised for malformed DOM operations (bad tree edits, lookups)."""


class CssError(ReproError):
    """Base class for CSS tokenizer / parser errors."""


class CssSyntaxError(CssError):
    """Raised when a stylesheet cannot be tokenized or parsed.

    Carries ``line`` and ``column`` attributes (1-based) locating the
    offending input where available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SelectorError(CssError):
    """Raised when a selector cannot be parsed."""


class HtmlParseError(ReproError):
    """Raised when the minimal HTML parser encounters malformed markup."""


class BrowserError(ReproError):
    """Raised for invalid browser-engine operations."""


class AnnotationError(ReproError):
    """Raised when a GreenWeb annotation is syntactically or semantically
    invalid (unknown event name, malformed QoS declaration, bad targets)."""


class QosError(ReproError):
    """Raised for invalid QoS type / target constructions."""


class RuntimeModelError(ReproError):
    """Raised when the GreenWeb runtime's predictive models are misused
    (e.g. asked to predict before profiling has produced coefficients)."""


class WorkloadError(ReproError):
    """Raised for unknown applications or malformed interaction scripts."""


class EvaluationError(ReproError):
    """Raised when an experiment is misconfigured."""
