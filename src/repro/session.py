"""High-level session facade: the one-stop public API.

A :class:`Session` wires together a platform, a page, a governor, and
an interaction driver, so downstream users can run GreenWeb
experiments in a few lines::

    from repro import Session

    session = Session.for_application("todo", governor="greenweb",
                                      scenario="imperceptible")
    result = session.run_full_interaction()
    print(result.energy_j, result.mean_violation_pct)

For custom pages (your own DOM, callbacks, and annotations) use
:meth:`Session.for_page`.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.engine import Browser, BrowserPolicy
from repro.browser.page import Page
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import UsageScenario
from repro.errors import EvaluationError
from repro.evaluation.runner import RunResult, make_policy, resolve_spec, run_workload
from repro.hardware.platform import MobilePlatform, odroid_xu_e
from repro.scenarios import SCENARIOS, ScenarioSpec, build_live_scenario
from repro.sim.tracing import TRACE_LEVELS
from repro.workloads.registry import APP_NAMES


def _coerce_scenario(scenario: "UsageScenario | ScenarioSpec | str") -> ScenarioSpec:
    """Validate and canonicalise through the scenario registry (one
    vocabulary for the CLI, fleet mixes, and this facade)."""
    return SCENARIOS.normalize(scenario)


class Session:
    """A configured (application, governor, scenario) experiment."""

    def __init__(
        self,
        app_name: str,
        governor: str = "greenweb",
        scenario: "UsageScenario | ScenarioSpec | str" = UsageScenario.IMPERCEPTIBLE,
        seed: int = 0,
        runtime_kwargs: Optional[dict] = None,
        trace_level: str = "full",
    ) -> None:
        # Registry-backed validation: bad names and bad (spec or
        # runtime_kwargs) parameters fail here, not mid-run; the stored
        # governor is the canonical spec string so two sessions with
        # equal parameterizations serialise identically.
        resolve_spec(governor, runtime_kwargs)
        if trace_level not in TRACE_LEVELS:
            raise EvaluationError(
                f"unknown trace level {trace_level!r}; known: {list(TRACE_LEVELS)}"
            )
        self.app_name = app_name
        self.governor = resolve_spec(governor).canonical()
        self.scenario = _coerce_scenario(scenario)
        self.seed = seed
        self.runtime_kwargs = runtime_kwargs
        self.trace_level = trace_level

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_application(
        cls,
        app_name: str,
        governor: str = "greenweb",
        scenario: "UsageScenario | ScenarioSpec | str" = UsageScenario.IMPERCEPTIBLE,
        seed: int = 0,
    ) -> "Session":
        """A session over one of the paper's twelve applications
        (:data:`repro.workloads.APP_NAMES`)."""
        if app_name not in APP_NAMES:
            raise EvaluationError(
                f"unknown application {app_name!r}; known: {list(APP_NAMES)}"
            )
        return cls(app_name, governor, scenario, seed)

    @classmethod
    def for_page(
        cls,
        page: Page,
        governor: str = "greenweb",
        scenario: "UsageScenario | ScenarioSpec | str" = UsageScenario.IMPERCEPTIBLE,
        seed: int = 0,
    ) -> tuple[MobilePlatform, Browser, BrowserPolicy]:
        """Assemble a live (platform, browser, policy) stack for a
        custom page; the caller drives inputs directly via
        ``browser.dispatch_event`` or an
        :class:`~repro.workloads.InteractionDriver`.  ``seed`` feeds
        the scenario's RNG lane (dynamic scenarios only)."""
        spec = _coerce_scenario(scenario)
        platform = odroid_xu_e()
        live = build_live_scenario(spec, platform, seed=seed)
        registry = AnnotationRegistry.from_stylesheet(page.stylesheet)
        policy = make_policy(governor, platform, registry, live)
        browser = Browser(platform, page, policy=policy)
        live.attach(browser)
        return platform, browser, policy

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_micro_interaction(self, settle_s: float = 4.0) -> RunResult:
        """Run the application's micro-benchmark trace (Sec. 7.2)."""
        return run_workload(
            self.app_name,
            self.governor,
            self.scenario,
            trace_kind="micro",
            seed=self.seed,
            settle_s=settle_s,
            runtime_kwargs=self.runtime_kwargs,
            trace_level=self.trace_level,
        )

    def run_full_interaction(self, settle_s: float = 4.0) -> RunResult:
        """Run the application's full interaction trace (Sec. 7.3)."""
        return run_workload(
            self.app_name,
            self.governor,
            self.scenario,
            trace_kind="full",
            seed=self.seed,
            settle_s=settle_s,
            runtime_kwargs=self.runtime_kwargs,
            trace_level=self.trace_level,
        )

    # ------------------------------------------------------------------
    # Fleet / worker interop
    # ------------------------------------------------------------------
    def as_job(self, trace_kind: str = "full", settle_s: float = 4.0) -> dict:
        """This session as a plain picklable
        :func:`repro.evaluation.runner.run_workload_job` payload — the
        form process pools, :mod:`repro.fleet` shards, and future RPC
        backends consume.
        """
        job = {
            "app": self.app_name,
            "governor": self.governor,
            "scenario": self.scenario.canonical(),
            "trace_kind": trace_kind,
            "seed": self.seed,
            "settle_s": settle_s,
            "trace_level": self.trace_level,
        }
        if self.runtime_kwargs:
            job["runtime_kwargs"] = dict(self.runtime_kwargs)
        return job

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Session {self.app_name} governor={self.governor} "
            f"scenario={self.scenario}>"
        )
