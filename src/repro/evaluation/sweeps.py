"""Parameter sweeps: grids over (app x governor x scenario x seed).

The paper repeats every experiment three times and reports medians,
noting ~5% run-to-run variation (Sec. 7.1).  The simulator is
deterministic per seed, so "run-to-run" becomes "seed-to-seed": the
seed perturbs workload draws (callback work, complexity surges) the way
re-recording an interaction would on real hardware.

:func:`run_sweep` executes a grid and returns flat rows;
:func:`write_csv` persists them for external analysis;
:func:`seed_variation` quantifies the seed sensitivity of one cell.
"""

from __future__ import annotations

import csv
import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.qos import UsageScenario
from repro.errors import EvaluationError
from repro.evaluation.runner import RunResult, run_workload
from repro.policies import POLICIES
from repro.workloads.registry import APP_NAMES


@dataclass(frozen=True)
class SweepSpec:
    """One experiment grid."""

    apps: tuple[str, ...] = APP_NAMES
    governors: tuple[str, ...] = ("perf", "interactive", "greenweb")
    scenarios: tuple[UsageScenario, ...] = (
        UsageScenario.IMPERCEPTIBLE,
        UsageScenario.USABLE,
    )
    trace_kind: str = "micro"
    seeds: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        unknown_apps = set(self.apps) - set(APP_NAMES)
        if unknown_apps:
            raise EvaluationError(f"unknown apps in sweep: {sorted(unknown_apps)}")
        # Registry-backed: each governor may be any registered policy
        # spec (parameterized variants sweep as distinct columns); store
        # the canonical strings so CSV rows group consistently.
        object.__setattr__(
            self,
            "governors",
            tuple(POLICIES.normalize(governor).canonical() for governor in self.governors),
        )

    @property
    def cell_count(self) -> int:
        return len(self.apps) * len(self.governors) * len(self.scenarios) * len(self.seeds)


def run_sweep(spec: SweepSpec, progress=None) -> list[RunResult]:
    """Execute every grid cell; ``progress(done, total)`` is called
    after each if provided."""
    results: list[RunResult] = []
    total = spec.cell_count
    for app in spec.apps:
        for governor in spec.governors:
            for scenario in spec.scenarios:
                for seed in spec.seeds:
                    results.append(
                        run_workload(app, governor, scenario, spec.trace_kind, seed)
                    )
                    if progress is not None:
                        progress(len(results), total)
    return results


#: Columns written by :func:`write_csv`, in order.
CSV_COLUMNS = (
    "app",
    "governor",
    "scenario",
    "trace_kind",
    "duration_s",
    "energy_j",
    "active_energy_j",
    "active_time_s",
    "frames",
    "inputs",
    "skipped_vsyncs",
    "mean_violation_pct",
    "annotated_events",
    "freq_switches",
    "migrations",
)


def result_row(result: RunResult) -> dict[str, object]:
    """Flatten one :class:`RunResult` into a CSV row dict."""
    return {
        "app": result.app,
        "governor": result.governor,
        "scenario": str(result.scenario),
        "trace_kind": result.trace_kind,
        "duration_s": round(result.duration_s, 3),
        "energy_j": round(result.energy_j, 6),
        "active_energy_j": round(result.active_energy_j, 6),
        "active_time_s": round(result.active_time_s, 3),
        "frames": result.frames,
        "inputs": result.inputs,
        "skipped_vsyncs": result.skipped_vsyncs,
        "mean_violation_pct": round(result.mean_violation_pct, 3),
        "annotated_events": result.annotated_events,
        "freq_switches": result.freq_switches,
        "migrations": result.migrations,
    }


def write_csv(results: Iterable[RunResult], path: str) -> int:
    """Write sweep results as CSV; returns the row count."""
    rows = [result_row(r) for r in results]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


@dataclass(frozen=True)
class SeedVariation:
    """Seed-sensitivity summary for one grid cell."""

    app: str
    governor: str
    energies_j: tuple[float, ...]
    violations_pct: tuple[float, ...]

    @property
    def energy_median_j(self) -> float:
        return statistics.median(self.energies_j)

    @property
    def energy_rel_spread_pct(self) -> float:
        """(max - min) / median, in percent — the paper's ~5% claim."""
        median = self.energy_median_j
        if median == 0:
            return 0.0
        return 100.0 * (max(self.energies_j) - min(self.energies_j)) / median


def seed_variation(
    app: str,
    governor: str = "greenweb",
    scenario: UsageScenario = UsageScenario.IMPERCEPTIBLE,
    trace_kind: str = "micro",
    seeds: Sequence[int] = (0, 1, 2),
) -> SeedVariation:
    """Run one cell across seeds (the paper's three repetitions)."""
    if len(seeds) < 2:
        raise EvaluationError("seed variation needs at least two seeds")
    energies = []
    violations = []
    for seed in seeds:
        result = run_workload(app, governor, scenario, trace_kind, seed)
        energies.append(result.active_energy_j)
        violations.append(result.mean_violation_pct)
    return SeedVariation(app, governor, tuple(energies), tuple(violations))
