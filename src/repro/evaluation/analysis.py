"""Frame-timeline analysis: the statistics browser people actually read.

Beyond the paper's violation metric, this module computes the standard
rendering-performance statistics from a run's trace — latency
percentiles, effective FPS over time, and jank counts (frames that
missed >= 2 VSync deadlines, the "tiny hitches" of Sec. 3.3 that make
per-frame targets necessary) — plus a static-configuration trade-off
sweep that maps the ACMP energy/latency space the paper's Sec. 2
motivates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.browser.vsync import VSYNC_PERIOD_US
from repro.errors import EvaluationError
from repro.sim.tracing import TraceLog


@dataclass(frozen=True)
class FrameTimelineStats:
    """Summary statistics over a run's displayed frames."""

    frame_count: int
    duration_s: float
    latency_p50_us: float
    latency_p95_us: float
    latency_p99_us: float
    latency_max_us: float
    mean_fps: float
    jank_count: int

    @property
    def jank_rate(self) -> float:
        """Fraction of frames that missed >= 2 VSync deadlines."""
        return self.jank_count / self.frame_count if self.frame_count else 0.0


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1])."""
    if not values:
        raise EvaluationError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise EvaluationError(f"fraction out of [0, 1]: {fraction}")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return float(ordered[rank - 1])


def timeline_stats_from_latencies(
    latencies: Sequence[float],
    first_us: int,
    last_us: int,
    vsync_period_us: int = VSYNC_PERIOD_US,
) -> FrameTimelineStats:
    """Shared timeline-statistics computation over displayed-frame
    latencies plus the first/last display timestamps.

    Both :func:`frame_timeline_stats` (post-hoc scan) and the streaming
    :class:`~repro.evaluation.folds.FrameTimelineFold` call this, so
    the two paths agree bit for bit.
    """
    if not latencies:
        return FrameTimelineStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
    latencies = [float(latency) for latency in latencies]
    span_us = max(last_us - first_us, 1)
    jank = sum(1 for latency in latencies if latency >= 2 * vsync_period_us)
    return FrameTimelineStats(
        frame_count=len(latencies),
        duration_s=span_us / 1e6,
        latency_p50_us=percentile(latencies, 0.50),
        latency_p95_us=percentile(latencies, 0.95),
        latency_p99_us=percentile(latencies, 0.99),
        latency_max_us=max(latencies),
        mean_fps=(len(latencies) - 1) / (span_us / 1e6) if len(latencies) > 1 else 0.0,
        jank_count=jank,
    )


def frame_timeline_stats(
    trace: TraceLog, vsync_period_us: int = VSYNC_PERIOD_US
) -> FrameTimelineStats:
    """Compute timeline statistics from ``frame displayed`` records."""
    frames = trace.filter(category="frame", name="displayed")
    if not frames:
        return FrameTimelineStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
    return timeline_stats_from_latencies(
        [float(f["max_latency_us"]) for f in frames],
        frames[0].time_us,
        frames[-1].time_us,
        vsync_period_us,
    )


def fps_over_time(
    trace: TraceLog, bucket_ms: float = 1000.0
) -> list[tuple[float, float]]:
    """(bucket start in seconds, frames/s) series from the trace."""
    if bucket_ms <= 0:
        raise EvaluationError(f"non-positive bucket: {bucket_ms}")
    frames = trace.filter(category="frame", name="displayed")
    if not frames:
        return []
    bucket_us = int(bucket_ms * 1000)
    counts: dict[int, int] = {}
    for frame in frames:
        counts[frame.time_us // bucket_us] = counts.get(frame.time_us // bucket_us, 0) + 1
    series = []
    for bucket in range(min(counts), max(counts) + 1):
        series.append((bucket * bucket_us / 1e6, counts.get(bucket, 0) / (bucket_ms / 1000)))
    return series


# ----------------------------------------------------------------------
# Runtime prediction accuracy (Sec. 6.2's model, judged)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredictionAccuracy:
    """How well the runtime's Eq. 1 model predicted frame latencies."""

    pairs: int
    mean_abs_rel_error: float
    p90_abs_rel_error: float
    under_predictions: int  # observed > predicted (the risky direction)

    @property
    def under_prediction_rate(self) -> float:
        return self.under_predictions / self.pairs if self.pairs else 0.0


def prediction_accuracy(trace: TraceLog) -> PredictionAccuracy:
    """Pair the GreenWeb runtime's ``predict`` records with the next
    ``observe`` record of the same key and summarise the relative error.

    Only stable-phase observations are judged (profiling frames are not
    predictions).  Pairs are formed in time order per key: a prediction
    is matched with the first later observation for its key.
    """
    pending: dict[str, float] = {}
    errors: list[float] = []
    under = 0
    for record in trace.records:
        if record.category != "greenweb":
            continue
        if record.name == "predict":
            pending[record["key"]] = float(record["predicted_us"])
        elif record.name == "observe" and record["phase"] == "stable":
            key = record["key"]
            predicted = pending.pop(key, None)
            if predicted is None or predicted <= 0:
                continue
            observed = float(record["observed_us"])
            errors.append(abs(observed - predicted) / predicted)
            if observed > predicted:
                under += 1
    if not errors:
        return PredictionAccuracy(0, 0.0, 0.0, 0)
    return PredictionAccuracy(
        pairs=len(errors),
        mean_abs_rel_error=sum(errors) / len(errors),
        p90_abs_rel_error=percentile(errors, 0.9),
        under_predictions=under,
    )


# ----------------------------------------------------------------------
# Static-configuration trade-off space (paper Sec. 2 motivation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TradeoffPoint:
    """One static configuration's (latency, energy) outcome."""

    cluster: str
    freq_mhz: int
    mean_frame_latency_us: float
    active_energy_j: float
    mean_violation_pct: float

    @property
    def label(self) -> str:
        return f"{self.cluster}@{self.freq_mhz}"


def pareto_frontier(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
    """The latency/energy Pareto-optimal subset (both minimised)."""
    frontier = []
    for candidate in points:
        dominated = any(
            other.mean_frame_latency_us <= candidate.mean_frame_latency_us
            and other.active_energy_j <= candidate.active_energy_j
            and (
                other.mean_frame_latency_us < candidate.mean_frame_latency_us
                or other.active_energy_j < candidate.active_energy_j
            )
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda p: p.mean_frame_latency_us)


def run_tradeoff_space(
    app: str = "cnet", seed: int = 0, scenario=None
) -> list[TradeoffPoint]:
    """Run ``app``'s micro trace pinned at every static configuration.

    This is the space the GreenWeb runtime navigates: the returned
    points show big-max as the latency extreme, little-min as the
    energy extreme, and the frontier in between (paper Sec. 2: ACMP is
    "long known to provide a wide performance-energy trade-off space").
    """
    from repro.browser.engine import Browser
    from repro.core.qos import UsageScenario
    from repro.evaluation.runner import _ActiveWindowAccountant
    from repro.hardware.platform import odroid_xu_e
    from repro.sim.clock import s_to_us
    from repro.workloads.interactions import InteractionDriver
    from repro.workloads.registry import build_app

    points = []
    reference = odroid_xu_e()
    for config in reference.all_configs():
        bundle = build_app(app, seed)
        platform = odroid_xu_e(
            record_power_intervals=False, initial_config=config
        )
        browser = Browser(platform, bundle.page)  # no-op policy: pinned config
        accountant = _ActiveWindowAccountant(platform)
        driver = InteractionDriver(browser)
        driver.schedule(bundle.micro_trace)
        platform.run_for(bundle.micro_trace.duration_us + s_to_us(6))
        latencies = browser.tracker.all_frame_latencies_us()
        mean_latency = sum(latencies) / len(latencies) if latencies else float("inf")

        # Violations against the app's annotated targets.
        from repro.core.annotations import AnnotationRegistry
        from repro.evaluation.metrics import event_violation_pct, mean_violation_pct

        sc = scenario if scenario is not None else UsageScenario.IMPERCEPTIBLE
        registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
        violations = []
        for scripted, record in zip(
            bundle.micro_trace.sorted_events(), browser.tracker.records
        ):
            target = (
                bundle.page.document.get_element_by_id(scripted.target_id)
                if scripted.target_id
                else bundle.page.document.root
            )
            spec = registry.lookup(target, scripted.event_type)
            violations.append(
                event_violation_pct(record, spec, sc) if spec else None
            )
        points.append(
            TradeoffPoint(
                cluster=config.cluster,
                freq_mhz=config.freq_mhz,
                mean_frame_latency_us=mean_latency,
                active_energy_j=accountant.active_energy_j,
                mean_violation_pct=mean_violation_pct(violations),
            )
        )
    return points
