"""Text and HTML rendering of experiment results.

Each ``render_*`` function takes the rows its experiment produced and
returns a plain-text table whose rows/series mirror the corresponding
paper figure or table, with the paper's reference numbers alongside
where the paper states them.  :func:`render_fleet_html` is the HTML
counterpart for fleet aggregates: the dashboard the ``repro serve``
daemon serves at ``GET /jobs/{id}/report``.
"""

from __future__ import annotations

import html as _html
from typing import Optional, Sequence

from repro.core.qos import TABLE1_CATEGORIES
from repro.evaluation.experiments import (
    DistributionRow,
    FullInteractionRow,
    MicrobenchRow,
    SwitchingRow,
    Table3Row,
)
from repro.evaluation.metrics import cluster_residency


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _rule(widths: Sequence[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def _row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "%",
    max_value: Optional[float] = None,
) -> str:
    """A horizontal ASCII bar chart — the terminal rendering of the
    paper's bar figures (used by the CLI's ``figures`` command)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not values:
        return "(no data)"
    top = max_value if max_value is not None else max(max(values), 1e-12)
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * min(value, top) / top)) if top > 0 else 0
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:6.1f}{unit}")
    return "\n".join(lines)


def render_table1() -> str:
    """The paper's Table 1: QoS type x target interaction categories."""
    widths = (12, 16, 10, 60)
    lines = [
        "Table 1: interaction categories (QoS type x QoS target)",
        _row(("QoS type", "QoS target", "Interact.", "Description"), widths),
        _rule(widths),
    ]
    for category in TABLE1_CATEGORIES:
        target = category.target
        if target.imperceptible_ms >= 1000:
            target_text = f"({target.imperceptible_ms/1000:g}, {target.usable_ms/1000:g}) s"
        else:
            target_text = f"({target.imperceptible_ms:g}, {target.usable_ms:g}) ms"
        lines.append(
            _row(
                (
                    str(category.qos_type),
                    target_text,
                    ", ".join(category.interactions),
                    category.description,
                ),
                widths,
            )
        )
    return "\n".join(lines)


def render_fig9(rows: list[MicrobenchRow]) -> str:
    """Figs. 9a/9b: micro-benchmark energy (normalised to Perf) and
    added QoS violations for GreenWeb-I / GreenWeb-U."""
    widths = (12, 11, 9, 9, 10, 10)
    lines = [
        "Fig. 9: micro-benchmarks (energy normalised to Perf; violations on top of Perf)",
        _row(("app", "QoS type", "GW-I E%", "GW-U E%", "+viol I%", "+viol U%"), widths),
        _rule(widths),
    ]
    for row in rows:
        lines.append(
            _row(
                (
                    row.app,
                    str(row.qos_type),
                    f"{row.greenweb_i_energy_norm_pct:.1f}",
                    f"{row.greenweb_u_energy_norm_pct:.1f}",
                    f"{row.greenweb_i_added_violation_pct:.2f}",
                    f"{row.greenweb_u_added_violation_pct:.2f}",
                ),
                widths,
            )
        )
    lines.append(_rule(widths))
    lines.append(
        f"mean energy saving: GreenWeb-I {100 - _mean([r.greenweb_i_energy_norm_pct for r in rows]):.1f}% "
        f"(paper: 31.9%), GreenWeb-U {100 - _mean([r.greenweb_u_energy_norm_pct for r in rows]):.1f}% "
        f"(paper: 78.0%)"
    )
    lines.append(
        f"mean added violations: I {_mean([r.greenweb_i_added_violation_pct for r in rows]):.2f}% "
        f"(paper: 1.3%), U {_mean([r.greenweb_u_added_violation_pct for r in rows]):.2f}% (paper: 1.2%)"
    )
    return "\n".join(lines)


def render_fig10(rows: list[FullInteractionRow]) -> str:
    """Figs. 10a/b/c: full-interaction energy and violations."""
    widths = (12, 9, 9, 9, 11, 10, 10)
    lines = [
        "Fig. 10: full interactions (energy normalised to Perf; violations on top of Perf)",
        _row(
            ("app", "Inter E%", "GW-I E%", "GW-U E%", "+vI inter%", "+vI GW%", "+vU GW%"),
            widths,
        ),
        _rule(widths),
    ]
    for row in sorted(rows, key=lambda r: r.greenweb_i_energy_norm_pct):
        lines.append(
            _row(
                (
                    row.app,
                    f"{row.interactive_energy_norm_pct:.1f}",
                    f"{row.greenweb_i_energy_norm_pct:.1f}",
                    f"{row.greenweb_u_energy_norm_pct:.1f}",
                    f"{row.interactive_added_violation_i_pct:.2f}",
                    f"{row.greenweb_i_added_violation_pct:.2f}",
                    f"{row.greenweb_u_added_violation_pct:.2f}",
                ),
                widths,
            )
        )
    lines.append(_rule(widths))
    saving_i = _mean([r.greenweb_i_saving_vs_interactive_pct for r in rows])
    saving_u = _mean([r.greenweb_u_saving_vs_interactive_pct for r in rows])
    lines.append(
        f"mean saving vs Interactive: GreenWeb-I {saving_i:.1f}% (paper: 29.2%), "
        f"GreenWeb-U {saving_u:.1f}% (paper: 66.0%)"
    )
    lines.append(
        f"mean added violations: GreenWeb-I {_mean([r.greenweb_i_added_violation_pct for r in rows]):.2f}% "
        f"(paper: 0.8%), GreenWeb-U {_mean([r.greenweb_u_added_violation_pct for r in rows]):.2f}% "
        f"(paper: 0.6%)"
    )
    return "\n".join(lines)


def render_fig11(rows: list[DistributionRow]) -> str:
    """Figs. 11a/11b: architecture configuration distribution."""
    widths = (12, 10, 12, 10, 12)
    lines = [
        "Fig. 11: configuration residency during interactions (GreenWeb-I vs GreenWeb-U)",
        _row(("app", "big% (I)", "little% (I)", "big% (U)", "little% (U)"), widths),
        _rule(widths),
    ]
    for row in rows:
        by_cluster_i = cluster_residency(row.residency_i)
        by_cluster_u = cluster_residency(row.residency_u)
        lines.append(
            _row(
                (
                    row.app,
                    f"{100 * by_cluster_i.get('big', 0.0):.1f}",
                    f"{100 * by_cluster_i.get('little', 0.0):.1f}",
                    f"{100 * by_cluster_u.get('big', 0.0):.1f}",
                    f"{100 * by_cluster_u.get('little', 0.0):.1f}",
                ),
                widths,
            )
        )
    lines.append(_rule(widths))
    lines.append(
        f"mean big-cluster share: imperceptible {100 * _mean([r.big_fraction_i for r in rows]):.1f}% "
        f"vs usable {100 * _mean([r.big_fraction_u for r in rows]):.1f}% "
        f"(paper: GreenWeb-I biases toward big configurations much more than GreenWeb-U)"
    )
    return "\n".join(lines)


def render_fig12(rows: list[SwitchingRow]) -> str:
    """Fig. 12: configuration switching frequency."""
    widths = (12, 10, 9, 10, 9)
    lines = [
        "Fig. 12: configuration switches per scheduling opportunity (%)",
        _row(("app", "freq (I)", "mig (I)", "freq (U)", "mig (U)"), widths),
        _rule(widths),
    ]
    for row in rows:
        lines.append(
            _row(
                (
                    row.app,
                    f"{row.freq_switch_pct_i:.1f}",
                    f"{row.migration_pct_i:.1f}",
                    f"{row.freq_switch_pct_u:.1f}",
                    f"{row.migration_pct_u:.1f}",
                ),
                widths,
            )
        )
    lines.append(_rule(widths))
    lines.append(
        f"mean switching: I {_mean([r.total_i for r in rows]):.1f}%, "
        f"U {_mean([r.total_u for r in rows]):.1f}% (paper: ~20% on average)"
    )
    return "\n".join(lines)


def render_table3(rows: list[Table3Row]) -> str:
    """Table 3: application characteristics, paper vs. measured."""
    widths = (12, 9, 11, 15, 11, 11, 13, 13)
    lines = [
        "Table 3: applications (paper value / measured value)",
        _row(
            ("app", "interact", "QoS type", "QoS target", "time (s)", "events",
             "annot% paper", "annot% meas"),
            widths,
        ),
        _rule(widths),
    ]
    for row in rows:
        lines.append(
            _row(
                (
                    row.app,
                    row.interaction,
                    row.qos_type,
                    row.qos_target,
                    f"{row.paper_duration_s}/{row.measured_duration_s:.0f}",
                    f"{row.paper_events}/{row.measured_events}",
                    f"{row.paper_annotation_pct:.1f}",
                    f"{row.measured_annotation_pct:.1f}",
                ),
                widths,
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML dashboard (used by `repro serve`'s GET /jobs/{id}/report)
# ----------------------------------------------------------------------

#: Dashboard styling: roles as CSS custom properties, light and dark
#: values both selected against their surface (not an automatic flip).
#: Series hues follow the measure, not the row: blue for energy
#: magnitude, orange for QoS violations, everywhere they appear.
_FLEET_CSS = """
.viz-root { color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f1f0ee; --border: #dcdad5;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --energy: #2a78d6; --violation: #eb6834; }
@media (prefers-color-scheme: dark) { .viz-root { color-scheme: dark;
  --surface-1: #1a1a19; --surface-2: #242422; --border: #3a3935;
  --text-primary: #ffffff; --text-secondary: #c3c2b7;
  --energy: #3987e5; --violation: #d95926; } }
.viz-root { background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif; margin: 0; padding: 24px;
  max-width: 72rem; }
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 16px; }
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .tile { background: var(--surface-2); border-radius: 8px;
  padding: 10px 14px; min-width: 9rem; }
.viz-root .tile .v { font-size: 20px; font-variant-numeric: tabular-nums; }
.viz-root .tile .k { color: var(--text-secondary); font-size: 12px; }
.viz-root table { border-collapse: collapse; width: 100%;
  font-variant-numeric: tabular-nums; }
.viz-root th { text-align: left; color: var(--text-secondary);
  font-weight: 500; font-size: 12px; }
.viz-root th, .viz-root td { padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--border); }
.viz-root td.num { text-align: right; white-space: nowrap; }
.viz-root .bar { display: inline-block; vertical-align: middle;
  height: 10px; border-radius: 0 4px 4px 0; min-width: 2px; }
.viz-root .bar.energy { background: var(--energy); }
.viz-root .bar.violation { background: var(--violation); }
.viz-root .barcell { width: 30%; }
.viz-root .hist { display: flex; align-items: flex-end; gap: 2px;
  height: 90px; margin: 6px 0 2px; }
.viz-root .hist .col { flex: 1; background: var(--energy);
  border-radius: 4px 4px 0 0; min-height: 1px; }
.viz-root .hist-x { display: flex; justify-content: space-between;
  color: var(--text-secondary); font-size: 11px; }
.viz-root .warn { color: var(--violation); }
"""


def _esc(value: object) -> str:
    return _html.escape(str(value), quote=True)


def _bar_html(value: float, top: float, kind: str, label: str) -> str:
    """One horizontal data bar with its direct value label alongside.

    The label is real text in ink tokens (never bar-colored) so every
    value is readable without relying on bar length or hue.
    """
    width = 0.0 if top <= 0 else 100.0 * min(value, top) / top
    return (
        f'<span class="bar {kind}" style="width:{width:.1f}%" '
        f'title="{_esc(label)}"></span> {_esc(label)}'
    )


def _group_rows_html(groups: dict, label_header: str) -> str:
    """A per-group comparison table (policies or applications)."""
    if not groups:
        return "<p class='sub'>no sessions aggregated yet</p>"
    top_energy = max(g["energy_j"]["mean"] for g in groups.values())
    top_violation = max(
        max(g["violation_pct"]["mean"] for g in groups.values()), 1e-12
    )
    rows = []
    for name in sorted(groups):
        group = groups[name]
        sessions = group["sessions"]
        switches = group.get("freq_switches", 0)
        migrations = group.get("migrations", 0)
        per_session = (switches + migrations) / sessions if sessions else 0.0
        mean_energy = group["energy_j"]["mean"]
        mean_violation = group["violation_pct"]["mean"]
        energy_bar = _bar_html(mean_energy, top_energy, "energy", f"{mean_energy:.3f} J")
        violation_bar = _bar_html(
            mean_violation, top_violation, "violation", f"{mean_violation:.2f}%"
        )
        rows.append(
            "<tr>"
            f"<td>{_esc(name)}</td>"
            f'<td class="num">{sessions}</td>'
            f'<td class="barcell">{energy_bar}</td>'
            f'<td class="barcell">{violation_bar}</td>'
            f'<td class="num" title="{switches} frequency switches + '
            f'{migrations} migrations">{per_session:.1f}</td>'
            "</tr>"
        )
    return (
        f"<table><tr><th>{_esc(label_header)}</th><th>sessions</th>"
        "<th>mean energy / session</th><th>mean QoS violation</th>"
        "<th>switches / session</th></tr>" + "".join(rows) + "</table>"
    )


def _cells_html(by_cell: dict) -> str:
    """Policy comparison per (app, scenario): bars normalised within
    each app x scenario group, so policies serving the same workload
    are directly comparable."""
    if not by_cell:
        return "<p class='sub'>no sessions aggregated yet</p>"
    parsed = []
    for key in sorted(by_cell):
        # "|" is reserved: spec parsing and cell_key() both reject it in
        # every field, so this split is unambiguous.
        app, scenario, governor = key.split("|", 2)
        parsed.append((app, scenario, governor, by_cell[key]))
    tops: dict = {}
    for app, scenario, _governor, group in parsed:
        bucket = tops.setdefault((app, scenario), {"energy": 0.0, "violation": 1e-12})
        bucket["energy"] = max(bucket["energy"], group["energy_j"]["mean"])
        bucket["violation"] = max(bucket["violation"], group["violation_pct"]["mean"])
    rows = []
    previous = None
    for app, scenario, governor, group in parsed:
        sessions = group["sessions"]
        switches = group.get("freq_switches", 0) + group.get("migrations", 0)
        per_session = switches / sessions if sessions else 0.0
        top = tops[(app, scenario)]
        workload = f"{app} / {scenario}"
        mean_energy = group["energy_j"]["mean"]
        mean_violation = group["violation_pct"]["mean"]
        energy_bar = _bar_html(
            mean_energy, top["energy"], "energy", f"{mean_energy:.3f} J"
        )
        violation_bar = _bar_html(
            mean_violation, top["violation"], "violation", f"{mean_violation:.2f}%"
        )
        rows.append(
            "<tr>"
            f"<td>{_esc(workload) if workload != previous else ''}</td>"
            f"<td>{_esc(governor)}</td>"
            f'<td class="num">{sessions}</td>'
            f'<td class="barcell">{energy_bar}</td>'
            f'<td class="barcell">{violation_bar}</td>'
            f'<td class="num">{per_session:.1f}</td>'
            "</tr>"
        )
        previous = workload
    return (
        "<table><tr><th>app / scenario</th><th>policy</th><th>sessions</th>"
        "<th>mean energy / session</th><th>mean QoS violation</th>"
        "<th>switches / session</th></tr>" + "".join(rows) + "</table>"
    )


def _hist_html(hist: dict, unit: str) -> str:
    """A fixed-bucket histogram as a column chart with a table fallback
    in the title attributes (counts are also exact in the tooltip)."""
    counts = hist["counts"]
    top = max(max(counts), 1)
    width = (hist["hi"] - hist["lo"]) / hist["buckets"]
    cols = []
    for index, count in enumerate(counts):
        lo = hist["lo"] + index * width
        height = 100.0 * count / top
        cols.append(
            f'<div class="col" style="height:{max(height, 1.0):.1f}%'
            f'{";opacity:.25" if count == 0 else ""}" '
            f'title="[{lo:g}, {lo + width:g}) {unit}: {count} sessions"></div>'
        )
    extra = []
    if hist["underflow"]:
        extra.append(f"{hist['underflow']} below {hist['lo']:g}")
    if hist["overflow"]:
        extra.append(f"{hist['overflow']} above {hist['hi']:g}")
    note = f'<p class="sub">{_esc("; ".join(extra))}</p>' if extra else ""
    return (
        f'<div class="hist">{"".join(cols)}</div>'
        f'<div class="hist-x"><span>{hist["lo"]:g}</span>'
        f"<span>{_esc(unit)}</span><span>{hist['hi']:g}</span></div>" + note
    )


def render_fleet_html(data: dict, title: str, status_line: str = "") -> str:
    """The fleet dashboard: one self-contained HTML document.

    ``data`` is :meth:`repro.fleet.FleetResult.to_dict` (or the same
    shape built from a live prefix aggregate): ``fleet`` facts, ``run``
    execution facts, and the mergeable ``aggregate``.  Stdlib-only, no
    scripts, no external assets — safe to serve from the daemon and to
    save as a report artifact.
    """
    fleet = data.get("fleet", {})
    run = data.get("run", {})
    aggregate = data["aggregate"]
    energy = aggregate["energy_j"]
    violation = aggregate["violation_pct"]

    tiles = [
        (f"{aggregate['sessions']}", "sessions aggregated"),
        (f"{energy['sum']:.2f} J", "total energy"),
        (f"{energy['mean']:.3f} J", "mean energy / session"),
        (f"{violation['mean']:.2f}%", "mean QoS violation"),
        (f"{aggregate['frames']}", "frames"),
        (f"{aggregate['inputs']}", "inputs"),
        (
            f"{aggregate.get('freq_switches', 0)} + {aggregate.get('migrations', 0)}",
            "freq switches + migrations",
        ),
    ]
    tiles_html = "".join(
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(key)}</div></div>'
        for value, key in tiles
    )

    failed = run.get("failed_shards", [])
    failed_html = ""
    if failed:
        items = "".join(
            f"<li>shard {_esc(f['shard'])} after {_esc(f['attempts'])} "
            f"attempt(s): {_esc(f['error'])}</li>"
            for f in failed
        )
        failed_html = (
            f'<h2 class="warn">failed shards ({len(failed)})</h2><ul>{items}</ul>'
        )

    facts = (
        f"population: {fleet.get('sessions', '?')} sessions, "
        f"seed {fleet.get('seed', '?')}, "
        f"{fleet.get('shards', '?')} shards x <= {fleet.get('shard_size', '?')}; "
        f"completed {run.get('sessions_completed', 0)} sessions, "
        f"{run.get('retries', 0)} retries"
    )

    return f"""<!doctype html>
<html><head><meta charset="utf-8">
<title>{_esc(title)}</title>
<style>{_FLEET_CSS}</style>
</head><body class="viz-root">
<h1>{_esc(title)}</h1>
<p class="sub">{_esc(status_line)}</p>
<p class="sub">{_esc(facts)}</p>
<div class="tiles">{tiles_html}</div>
{failed_html}
<h2>Policies</h2>
{_group_rows_html(aggregate.get("by_governor", {}), "policy")}
<h2>Applications</h2>
{_group_rows_html(aggregate.get("by_app", {}), "app")}
<h2>Policy comparison per app &times; scenario</h2>
{_cells_html(aggregate.get("by_cell", {}))}
<h2>Energy per session (J)</h2>
{_hist_html(aggregate["energy_hist"], "J")}
<h2>QoS violation per session (%)</h2>
{_hist_html(aggregate["violation_hist"], "%")}
<h2>Input latency per session (ms)</h2>
{_hist_html(aggregate["latency_hist"], "ms")}
</body></html>
"""
