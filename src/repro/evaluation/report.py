"""Text rendering of experiment results in the paper's shapes.

Each ``render_*`` function takes the rows its experiment produced and
returns a plain-text table whose rows/series mirror the corresponding
paper figure or table, with the paper's reference numbers alongside
where the paper states them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.qos import TABLE1_CATEGORIES
from repro.evaluation.experiments import (
    DistributionRow,
    FullInteractionRow,
    MicrobenchRow,
    SwitchingRow,
    Table3Row,
)
from repro.evaluation.metrics import cluster_residency


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _rule(widths: Sequence[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def _row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "%",
    max_value: Optional[float] = None,
) -> str:
    """A horizontal ASCII bar chart — the terminal rendering of the
    paper's bar figures (used by the CLI's ``figures`` command)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not values:
        return "(no data)"
    top = max_value if max_value is not None else max(max(values), 1e-12)
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * min(value, top) / top)) if top > 0 else 0
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:6.1f}{unit}")
    return "\n".join(lines)


def render_table1() -> str:
    """The paper's Table 1: QoS type x target interaction categories."""
    widths = (12, 16, 10, 60)
    lines = [
        "Table 1: interaction categories (QoS type x QoS target)",
        _row(("QoS type", "QoS target", "Interact.", "Description"), widths),
        _rule(widths),
    ]
    for category in TABLE1_CATEGORIES:
        target = category.target
        if target.imperceptible_ms >= 1000:
            target_text = f"({target.imperceptible_ms/1000:g}, {target.usable_ms/1000:g}) s"
        else:
            target_text = f"({target.imperceptible_ms:g}, {target.usable_ms:g}) ms"
        lines.append(
            _row(
                (
                    str(category.qos_type),
                    target_text,
                    ", ".join(category.interactions),
                    category.description,
                ),
                widths,
            )
        )
    return "\n".join(lines)


def render_fig9(rows: list[MicrobenchRow]) -> str:
    """Figs. 9a/9b: micro-benchmark energy (normalised to Perf) and
    added QoS violations for GreenWeb-I / GreenWeb-U."""
    widths = (12, 11, 9, 9, 10, 10)
    lines = [
        "Fig. 9: micro-benchmarks (energy normalised to Perf; violations on top of Perf)",
        _row(("app", "QoS type", "GW-I E%", "GW-U E%", "+viol I%", "+viol U%"), widths),
        _rule(widths),
    ]
    for row in rows:
        lines.append(
            _row(
                (
                    row.app,
                    str(row.qos_type),
                    f"{row.greenweb_i_energy_norm_pct:.1f}",
                    f"{row.greenweb_u_energy_norm_pct:.1f}",
                    f"{row.greenweb_i_added_violation_pct:.2f}",
                    f"{row.greenweb_u_added_violation_pct:.2f}",
                ),
                widths,
            )
        )
    lines.append(_rule(widths))
    lines.append(
        f"mean energy saving: GreenWeb-I {100 - _mean([r.greenweb_i_energy_norm_pct for r in rows]):.1f}% "
        f"(paper: 31.9%), GreenWeb-U {100 - _mean([r.greenweb_u_energy_norm_pct for r in rows]):.1f}% "
        f"(paper: 78.0%)"
    )
    lines.append(
        f"mean added violations: I {_mean([r.greenweb_i_added_violation_pct for r in rows]):.2f}% "
        f"(paper: 1.3%), U {_mean([r.greenweb_u_added_violation_pct for r in rows]):.2f}% (paper: 1.2%)"
    )
    return "\n".join(lines)


def render_fig10(rows: list[FullInteractionRow]) -> str:
    """Figs. 10a/b/c: full-interaction energy and violations."""
    widths = (12, 9, 9, 9, 11, 10, 10)
    lines = [
        "Fig. 10: full interactions (energy normalised to Perf; violations on top of Perf)",
        _row(
            ("app", "Inter E%", "GW-I E%", "GW-U E%", "+vI inter%", "+vI GW%", "+vU GW%"),
            widths,
        ),
        _rule(widths),
    ]
    for row in sorted(rows, key=lambda r: r.greenweb_i_energy_norm_pct):
        lines.append(
            _row(
                (
                    row.app,
                    f"{row.interactive_energy_norm_pct:.1f}",
                    f"{row.greenweb_i_energy_norm_pct:.1f}",
                    f"{row.greenweb_u_energy_norm_pct:.1f}",
                    f"{row.interactive_added_violation_i_pct:.2f}",
                    f"{row.greenweb_i_added_violation_pct:.2f}",
                    f"{row.greenweb_u_added_violation_pct:.2f}",
                ),
                widths,
            )
        )
    lines.append(_rule(widths))
    saving_i = _mean([r.greenweb_i_saving_vs_interactive_pct for r in rows])
    saving_u = _mean([r.greenweb_u_saving_vs_interactive_pct for r in rows])
    lines.append(
        f"mean saving vs Interactive: GreenWeb-I {saving_i:.1f}% (paper: 29.2%), "
        f"GreenWeb-U {saving_u:.1f}% (paper: 66.0%)"
    )
    lines.append(
        f"mean added violations: GreenWeb-I {_mean([r.greenweb_i_added_violation_pct for r in rows]):.2f}% "
        f"(paper: 0.8%), GreenWeb-U {_mean([r.greenweb_u_added_violation_pct for r in rows]):.2f}% "
        f"(paper: 0.6%)"
    )
    return "\n".join(lines)


def render_fig11(rows: list[DistributionRow]) -> str:
    """Figs. 11a/11b: architecture configuration distribution."""
    widths = (12, 10, 12, 10, 12)
    lines = [
        "Fig. 11: configuration residency during interactions (GreenWeb-I vs GreenWeb-U)",
        _row(("app", "big% (I)", "little% (I)", "big% (U)", "little% (U)"), widths),
        _rule(widths),
    ]
    for row in rows:
        by_cluster_i = cluster_residency(row.residency_i)
        by_cluster_u = cluster_residency(row.residency_u)
        lines.append(
            _row(
                (
                    row.app,
                    f"{100 * by_cluster_i.get('big', 0.0):.1f}",
                    f"{100 * by_cluster_i.get('little', 0.0):.1f}",
                    f"{100 * by_cluster_u.get('big', 0.0):.1f}",
                    f"{100 * by_cluster_u.get('little', 0.0):.1f}",
                ),
                widths,
            )
        )
    lines.append(_rule(widths))
    lines.append(
        f"mean big-cluster share: imperceptible {100 * _mean([r.big_fraction_i for r in rows]):.1f}% "
        f"vs usable {100 * _mean([r.big_fraction_u for r in rows]):.1f}% "
        f"(paper: GreenWeb-I biases toward big configurations much more than GreenWeb-U)"
    )
    return "\n".join(lines)


def render_fig12(rows: list[SwitchingRow]) -> str:
    """Fig. 12: configuration switching frequency."""
    widths = (12, 10, 9, 10, 9)
    lines = [
        "Fig. 12: configuration switches per scheduling opportunity (%)",
        _row(("app", "freq (I)", "mig (I)", "freq (U)", "mig (U)"), widths),
        _rule(widths),
    ]
    for row in rows:
        lines.append(
            _row(
                (
                    row.app,
                    f"{row.freq_switch_pct_i:.1f}",
                    f"{row.migration_pct_i:.1f}",
                    f"{row.freq_switch_pct_u:.1f}",
                    f"{row.migration_pct_u:.1f}",
                ),
                widths,
            )
        )
    lines.append(_rule(widths))
    lines.append(
        f"mean switching: I {_mean([r.total_i for r in rows]):.1f}%, "
        f"U {_mean([r.total_u for r in rows]):.1f}% (paper: ~20% on average)"
    )
    return "\n".join(lines)


def render_table3(rows: list[Table3Row]) -> str:
    """Table 3: application characteristics, paper vs. measured."""
    widths = (12, 9, 11, 15, 11, 11, 13, 13)
    lines = [
        "Table 3: applications (paper value / measured value)",
        _row(
            ("app", "interact", "QoS type", "QoS target", "time (s)", "events",
             "annot% paper", "annot% meas"),
            widths,
        ),
        _rule(widths),
    ]
    for row in rows:
        lines.append(
            _row(
                (
                    row.app,
                    row.interaction,
                    row.qos_type,
                    row.qos_target,
                    f"{row.paper_duration_s}/{row.measured_duration_s:.0f}",
                    f"{row.paper_events}/{row.measured_events}",
                    f"{row.paper_annotation_pct:.1f}",
                    f"{row.measured_annotation_pct:.1f}",
                ),
                widths,
            )
        )
    return "\n".join(lines)
