"""QoS-target sweep: the energy dial the GreenWeb language exposes.

The whole premise of the paper is that expressing the *required*
latency lets the system spend exactly enough energy — so the central
curve of the system is energy (and violations) as a function of the
annotated target.  This sweep re-annotates one application's animation
with a range of explicit per-frame targets (Table 2's third form,
``continuous, ti, tu``) and runs the GreenWeb runtime against each.

Expected shape: energy decreases monotonically-ish as the target
relaxes, with a knee where the little cluster becomes feasible; beyond
the display's refresh interval (16.7 ms) tightening the target buys
nothing (frames cannot ship faster than VSync), which is *why* the
paper's imperceptible default is 16.6 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.browser.engine import Browser
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import UsageScenario
from repro.errors import EvaluationError
from repro.evaluation.metrics import event_violation_pct, mean_violation_pct
from repro.evaluation.runner import _ActiveWindowAccountant
from repro.policies import POLICIES
from repro.hardware.platform import odroid_xu_e
from repro.sim.clock import s_to_us
from repro.web.css.parser import parse_stylesheet
from repro.workloads.interactions import InteractionDriver
from repro.workloads.registry import build_app


@dataclass(frozen=True)
class TargetSweepPoint:
    """One annotated-target setting's outcome."""

    target_ms: float
    active_energy_j: float
    mean_violation_pct: float
    frames: int
    big_share: float


#: (app, selector, event) triples the sweep knows how to re-annotate.
SWEEPABLE = {
    "cnet": ("div#menu", "onclick"),
    "w3schools": ("div#tryit", "onclick"),
    "goo_ne_jp": ("div#panel", "ontouchstart"),
}


def run_target_sweep(
    app: str = "cnet",
    targets_ms: Sequence[float] = (8.0, 12.0, 16.6, 25.0, 33.3, 50.0, 80.0),
    seed: int = 0,
    governor: str = "greenweb",
) -> list[TargetSweepPoint]:
    """Run ``app``'s micro trace with its animation re-annotated at each
    explicit per-frame target (TI = TU = target, imperceptible scenario,
    so the annotated value is the operative one).  ``governor`` is any
    registered policy spec — sweeping an ablation variant is just e.g.
    ``governor="greenweb(ewma_model_update=false)"``."""
    governor_spec = POLICIES.normalize(governor)
    if app not in SWEEPABLE:
        raise EvaluationError(
            f"target sweep supports {sorted(SWEEPABLE)}, not {app!r}"
        )
    selector, prop = SWEEPABLE[app]
    points = []
    for target_ms in targets_ms:
        if target_ms <= 0:
            raise EvaluationError(f"non-positive target {target_ms}")
        bundle = build_app(app, seed, with_manual_annotations=False)
        css = (
            f"{selector}:QoS {{ {prop}-qos: continuous, "
            f"{target_ms:g}, {target_ms:g}; }}"
        )
        bundle.page.stylesheet.extend(parse_stylesheet(css))
        registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)

        platform = odroid_xu_e(record_power_intervals=False)
        runtime = POLICIES.build(
            governor_spec, platform, registry, UsageScenario.IMPERCEPTIBLE
        )
        browser = Browser(platform, bundle.page, policy=runtime)
        accountant = _ActiveWindowAccountant(platform)
        driver = InteractionDriver(browser)
        driver.schedule(bundle.micro_trace)
        platform.run_for(bundle.micro_trace.duration_us + s_to_us(4))

        violations = []
        for scripted, record in zip(
            bundle.micro_trace.sorted_events(), browser.tracker.records
        ):
            target = bundle.page.document.get_element_by_id(scripted.target_id)
            spec = registry.lookup(target, scripted.event_type)
            if spec is not None:
                violations.append(
                    event_violation_pct(record, spec, UsageScenario.IMPERCEPTIBLE)
                )

        from repro.evaluation.metrics import cluster_residency, windowed_config_residency
        from repro.hardware.dvfs import CpuConfig

        residency = windowed_config_residency(
            platform.trace, accountant.windows, initial=CpuConfig("big", 1800)
        )
        points.append(
            TargetSweepPoint(
                target_ms=target_ms,
                active_energy_j=accountant.active_energy_j,
                mean_violation_pct=mean_violation_pct(violations),
                frames=browser.stats.frames,
                big_share=cluster_residency(residency).get("big", 0.0),
            )
        )
    return points
