"""Evaluation metrics (paper Sec. 7).

QoS violation: "the percentage by which a frame latency exceeds the QoS
target.  For example, a frame latency of 200 ms leads to a 100% QoS
violation under a 100 ms QoS target.  For events with a 'continuous'
QoS type, we report the geometric mean of all associated frames."

The geometric mean is computed over ``(1 + v_i)`` factors (violations
are ratios, and many frames have zero violation, which a bare geometric
mean would collapse to zero) — then mapped back to a percentage.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.browser.frame_tracker import InputRecord
from repro.core.qos import QoSSpec, QoSType, UsageScenario
from repro.errors import EvaluationError
from repro.hardware.dvfs import CpuConfig
from repro.sim.tracing import TraceLog


def violation_pct(latency_us: float, target_us: float) -> float:
    """Percentage by which a frame latency exceeds the target (>= 0)."""
    if target_us <= 0:
        raise EvaluationError(f"non-positive target {target_us}")
    return max(0.0, (latency_us - target_us) / target_us * 100.0)


def geo_mean_violation_pct(latencies_us: Sequence[float], target_us: float) -> float:
    """Geometric-mean violation across a continuous event's frames."""
    if not latencies_us:
        return 0.0
    log_sum = 0.0
    for latency in latencies_us:
        log_sum += math.log1p(violation_pct(latency, target_us) / 100.0)
    return (math.exp(log_sum / len(latencies_us)) - 1.0) * 100.0


def event_violation_pct(
    record: InputRecord, spec: QoSSpec, scenario: "UsageScenario | object"
) -> Optional[float]:
    """The QoS violation of one input event under its spec.

    ``scenario`` is a :class:`UsageScenario` or a live scenario object
    (:mod:`repro.scenarios`); for dynamic scenarios the operative
    target is sampled at the event's *dispatch* time — the target the
    user held the interaction to when they issued it — so accounting
    does not depend on when metrics are collected.

    Returns None for events that produced no frames (nothing to judge).
    """
    if record.frame_count == 0:
        return None
    target_us = spec.target_ms_at(scenario, record.msg.start_us) * 1_000.0
    if spec.qos_type is QoSType.SINGLE:
        return violation_pct(float(record.first_frame_latency_us), target_us)
    return geo_mean_violation_pct([float(l) for l in record.frame_latencies_us], target_us)


def mean_violation_pct(violations: Sequence[Optional[float]]) -> float:
    """Mean over the events that had something to judge (0 if none)."""
    values = [v for v in violations if v is not None]
    return sum(values) / len(values) if values else 0.0


def applied_configs(trace: TraceLog) -> list[tuple[int, CpuConfig]]:
    """The run's ``config/applied`` events as an ordered
    ``(time_us, config)`` list — the compact form both the post-hoc
    scans below and the streaming
    :class:`~repro.evaluation.folds.ConfigTimelineFold` operate on."""
    return [
        (record.time_us, CpuConfig(record["cluster"], record["freq_mhz"]))
        for record in trace.filter(category="config", name="applied")
    ]


def residency_from_applied(
    applied: Sequence[tuple[int, CpuConfig]],
    start_us: int,
    end_us: int,
    initial: CpuConfig,
) -> dict[CpuConfig, float]:
    """Shared residency computation over an applied-config timeline.

    Both :func:`config_residency` (post-hoc scan) and the streaming
    fold call this, so the two paths associate floats in the same order
    and agree bit for bit.
    """
    if end_us <= start_us:
        raise EvaluationError("empty residency window")
    timeline: list[tuple[int, CpuConfig]] = [(start_us, initial)]
    for time_us, config in applied:
        if time_us <= start_us:
            timeline[0] = (start_us, config)
        elif time_us <= end_us:
            timeline.append((time_us, config))
    timeline.append((end_us, timeline[-1][1]))

    residency: dict[CpuConfig, float] = {}
    total = end_us - start_us
    for (t0, config), (t1, _next_config) in zip(timeline, timeline[1:]):
        dt = t1 - t0
        if dt > 0:
            residency[config] = residency.get(config, 0.0) + dt / total
    return residency


def config_residency(
    trace: TraceLog, start_us: int, end_us: int, initial: CpuConfig
) -> dict[CpuConfig, float]:
    """Fraction of wall time spent in each <cluster, frequency>
    configuration over [start_us, end_us] (Fig. 11's distribution).

    Reads the platform's ``config/applied`` trace records; ``initial``
    is the configuration in force at ``start_us``.
    """
    return residency_from_applied(applied_configs(trace), start_us, end_us, initial)


def windowed_residency_from_applied(
    applied: Sequence[tuple[int, CpuConfig]],
    windows: Sequence[tuple[int, int]],
    initial: CpuConfig,
) -> dict[CpuConfig, float]:
    """Shared windowed-residency computation (see
    :func:`residency_from_applied` for why it is factored out)."""
    applied = [(0, initial)] + list(applied)
    weights: dict[CpuConfig, float] = {}
    total = 0
    for start, end in windows:
        if end <= start:
            continue
        total += end - start
        # Config in force at window start:
        index = 0
        for i, (t, _cfg) in enumerate(applied):
            if t <= start:
                index = i
            else:
                break
        t0 = start
        current = applied[index][1]
        for t, config in applied[index + 1 :]:
            if t >= end:
                break
            if t > t0:
                weights[current] = weights.get(current, 0.0) + (t - t0)
                t0 = t
            current = config
        weights[current] = weights.get(current, 0.0) + (end - t0)
    if total <= 0:
        return {}
    return {config: weight / total for config, weight in weights.items()}


def windowed_config_residency(
    trace: TraceLog,
    windows: Sequence[tuple[int, int]],
    initial: CpuConfig,
) -> dict[CpuConfig, float]:
    """Config residency restricted to the union of time windows —
    the per-interaction view of Fig. 11 (idle gaps between interactions
    would otherwise swamp the distribution)."""
    return windowed_residency_from_applied(applied_configs(trace), windows, initial)


def cluster_residency(residency: dict[CpuConfig, float]) -> dict[str, float]:
    """Collapse a config residency into per-cluster fractions."""
    out: dict[str, float] = {}
    for config, fraction in residency.items():
        out[config.cluster] = out.get(config.cluster, 0.0) + fraction
    return out


def switching_per_frame_pct(
    freq_switches: int, migrations: int, opportunities: int
) -> tuple[float, float]:
    """Fig. 12's metric: configuration switches per scheduling
    opportunity (we count each input event and each produced frame as
    one opportunity, since the runtime takes a configuration decision
    at both), split into frequency changes and core migrations
    (percent)."""
    if opportunities <= 0:
        return (0.0, 0.0)
    return (
        100.0 * freq_switches / opportunities,
        100.0 * migrations / opportunities,
    )
