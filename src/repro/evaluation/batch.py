"""Batched session execution.

:func:`run_workload_jobs_batched` is the batched twin of calling
:func:`repro.evaluation.runner.run_workload_job` in a loop: it prepares
every session world up front, advances all of their kernels through
their measurement windows on one :class:`~repro.sim.batch.BatchRunner`
frontier, then collects each result.  Sessions share no mutable state,
and preparation/collection are the exact same code
(:class:`~repro.evaluation.runner.SessionExecution`) the scalar engine
runs, so results are byte-identical — a guarantee enforced by
``tests/differential/``.

Post-hoc policies (the oracle) replay pinned scalar runs internally and
cannot be frontier-stepped; their jobs transparently fall back to the
scalar path, in place, so callers never need to special-case them.

The batch also amortizes interpreter overhead: after preparation the
long-lived session worlds are moved to the garbage collector's
permanent generation (``gc.freeze``), so the run's constant churn of
short-lived events never drags them through gen-0 scans.
"""

from __future__ import annotations

import gc
from typing import Optional, Sequence

from repro.evaluation.runner import (
    SessionExecution,
    run_result_to_dict,
    run_workload_job,
    resolve_spec,
)
from repro.policies import POLICIES
from repro.sim.batch import DEFAULT_QUANTUM_US, BatchRunner


def prepare_job(spec: dict) -> Optional[SessionExecution]:
    """Build the prepared world for one job dict, or ``None`` when the
    job's policy is post-hoc and must run through the scalar path.

    Accepts the same keys as
    :func:`repro.evaluation.runner.run_workload_job`.
    """
    policy_spec = resolve_spec(
        spec.get("governor", "greenweb"), spec.get("runtime_kwargs")
    )
    if POLICIES.get(policy_spec.name).posthoc is not None:
        return None
    return SessionExecution(
        spec["app"],
        policy_spec.label(),
        spec.get("scenario", "imperceptible"),
        spec.get("trace_kind", "full"),
        int(spec.get("seed", 0)),
        float(spec.get("settle_s", 4.0)),
        spec.get("trace_level", "full"),
        lambda platform, registry, live_scenario: POLICIES.build(
            policy_spec, platform, registry, live_scenario
        ),
    )


def run_workload_jobs_batched(
    jobs: Sequence[dict], quantum_us: int = DEFAULT_QUANTUM_US
) -> list[dict]:
    """Run a list of job dicts as one lockstep batch.

    Args:
        jobs: job dicts as accepted by
            :func:`repro.evaluation.runner.run_workload_job`.
        quantum_us: frontier lookahead slack, forwarded to
            :class:`~repro.sim.batch.BatchRunner`.

    Returns:
        One result dict per job, in input order, byte-identical to the
        scalar engine's output for the same job.
    """
    results: list[Optional[dict]] = [None] * len(jobs)
    pending: list[tuple[int, SessionExecution]] = []

    for index, spec in enumerate(jobs):
        execution = prepare_job(spec)
        if execution is None:
            results[index] = run_workload_job(spec)
        else:
            pending.append((index, execution))

    if pending:
        runner = BatchRunner(
            [execution.platform.kernel for _index, execution in pending],
            quantum_us=quantum_us,
        )
        deadlines = [
            execution.platform.kernel.now_us + execution.window_us
            for _index, execution in pending
        ]
        gc.collect()
        gc.freeze()
        try:
            runner.run_until(deadlines)
        finally:
            gc.unfreeze()
        for index, execution in pending:
            results[index] = run_result_to_dict(execution.finish())
    return results
