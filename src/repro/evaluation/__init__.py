"""Evaluation harness: metrics, runners, and per-figure experiments.

Reproduces the paper's Sec. 7 methodology:

* :mod:`repro.evaluation.metrics` — QoS violation (per-frame percentage
  over target; geometric mean across a continuous event's frames),
  architecture-configuration residency (Fig. 11), and configuration
  switching frequency (Fig. 12).
* :mod:`repro.evaluation.runner` — run one (application, governor,
  scenario, trace) combination on a fresh platform + browser stack.
* :mod:`repro.evaluation.experiments` — the figure/table experiment
  matrix (Figs. 9, 10, 11, 12; Tables 1, 3) plus ablations.
* :mod:`repro.evaluation.report` — text rendering of each experiment in
  the shape the paper reports it.
"""

from repro.evaluation.metrics import (
    config_residency,
    event_violation_pct,
    geo_mean_violation_pct,
    violation_pct,
)
from repro.evaluation.runner import GOVERNORS, RunResult, run_workload
from repro.evaluation.analysis import (
    frame_timeline_stats,
    fps_over_time,
    pareto_frontier,
    prediction_accuracy,
    run_tradeoff_space,
)
from repro.evaluation.experiments import (
    run_fig9_microbenchmarks,
    run_fig10_full_interactions,
    run_fig11_distribution,
    run_fig12_switching,
    run_table3_characteristics,
)
from repro.evaluation.sweeps import SweepSpec, run_sweep, seed_variation, write_csv

__all__ = [
    "violation_pct",
    "geo_mean_violation_pct",
    "event_violation_pct",
    "config_residency",
    "RunResult",
    "run_workload",
    "GOVERNORS",
    "run_fig9_microbenchmarks",
    "run_fig10_full_interactions",
    "run_fig11_distribution",
    "run_fig12_switching",
    "run_table3_characteristics",
    "frame_timeline_stats",
    "fps_over_time",
    "prediction_accuracy",
    "run_tradeoff_space",
    "pareto_frontier",
    "SweepSpec",
    "run_sweep",
    "write_csv",
    "seed_variation",
]
