"""Run one (application, governor, scenario, trace) combination.

Each run builds a fresh platform + browser + page, replays the trace
for a fixed wall-clock window (trace duration + settle), and collects
the paper's metrics: total energy, per-event QoS violations,
configuration residency, and switching counts.

Fixed-window measurement mirrors the paper's methodology: energy is
power integrated over the real execution time of the interaction
session, so a governor that idles at high power keeps paying for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.engine import Browser, BrowserPolicy, target_key
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import QoSSpec, UsageScenario
from repro.core.runtime import GreenWebRuntime
from repro.errors import EvaluationError
from repro.evaluation.folds import ConfigTimelineFold
from repro.evaluation.metrics import event_violation_pct, mean_violation_pct
from repro.hardware.dvfs import CpuConfig
from repro.hardware.platform import odroid_xu_e
from repro.policies import POLICIES, PolicySpec
from repro.scenarios import SCENARIOS, Scenario, ScenarioSpec
from repro.sim.clock import s_to_us
from repro.sim.random import RngStreams
from repro.sim.tracing import TraceLog
from repro.workloads.interactions import InteractionDriver
from repro.workloads.registry import build_app

#: The paper's governor set (Sec. 7.1's bake-off plus the ablation
#: references) — the names whose bare-spec results are pinned by the
#: parity test.  The full policy list, including post-hoc baselines
#: and third-party registrations, is ``POLICIES.names()``.
GOVERNORS: tuple[str, ...] = (
    "perf",
    "interactive",
    "powersave",
    "ondemand",
    "greenweb",
    "ebs",
)


def resolve_spec(
    governor: "PolicySpec | str", runtime_kwargs: Optional[dict] = None
) -> PolicySpec:
    """Validate a governor spec (string or :class:`PolicySpec`) against
    the registry, merging legacy ``runtime_kwargs`` as spec parameters.

    Raises :class:`EvaluationError` for unknown policy names, unknown
    parameters (including ``runtime_kwargs`` a policy does not take),
    and type mismatches.
    """
    spec = POLICIES.normalize(governor)
    if runtime_kwargs:
        spec = POLICIES.normalize(spec.with_params(**runtime_kwargs))
    return spec


class _ActiveWindowAccountant:
    """Integrates energy over the union of input-active windows.

    The paper's micro-benchmarks report the energy of *the interaction*
    (event dispatch until its associated frames complete), not of the
    idle gaps between repetitions.  The accountant watches the trace
    stream: an input's window opens at dispatch and closes at its
    completion record; overlapping windows merge.
    """

    def __init__(self, platform) -> None:
        self._platform = platform
        self._open_inputs: set[int] = set()
        self._window_start_j: float = 0.0
        self.active_energy_j = 0.0
        self.active_time_us = 0
        self._window_start_us = 0
        #: closed [start_us, end_us] active windows, in order
        self.windows: list[tuple[int, int]] = []
        platform.trace.subscribe(self._on_record)

    def _on_record(self, record) -> None:
        if record.category != "input":
            return
        meter = self._platform.meter
        if record.name == "complete":
            if record["uid"] in self._open_inputs:
                self._open_inputs.discard(record["uid"])
                if not self._open_inputs:
                    meter.finalize(record.time_us)
                    self.active_energy_j += meter.total_j - self._window_start_j
                    self.active_time_us += record.time_us - self._window_start_us
                    self.windows.append((self._window_start_us, record.time_us))
        else:  # a dispatch record (named by its event type)
            if not self._open_inputs:
                meter.finalize(record.time_us)
                self._window_start_j = meter.total_j
                self._window_start_us = record.time_us
            self._open_inputs.add(record["uid"])


@dataclass
class RunResult:
    """Everything measured in one run."""

    app: str
    governor: str
    #: the canonical scenario spec string (``"imperceptible"``,
    #: ``"thermal(cap_mhz=1100)"``, ...)
    scenario: str
    trace_kind: str
    duration_s: float
    energy_j: float
    #: energy integrated only while >= 1 input was in flight (the
    #: paper's per-interaction micro-benchmark accounting)
    active_energy_j: float
    active_time_s: float
    frames: int
    inputs: int
    skipped_vsyncs: int
    #: per-event violations, trace order; None = event produced no frame
    #: or was unannotated (excluded from means, as in the paper).
    event_violations_pct: list[Optional[float]]
    config_residency: dict[CpuConfig, float]
    #: residency restricted to input-active windows (Fig. 11's view)
    active_config_residency: dict[CpuConfig, float]
    freq_switches: int
    migrations: int
    annotated_events: int
    runtime_stats: Optional[dict] = None

    @property
    def mean_violation_pct(self) -> float:
        return mean_violation_pct(self.event_violations_pct)

    @property
    def switch_count(self) -> int:
        return self.freq_switches + self.migrations

    def energy_vs(self, baseline: "RunResult") -> float:
        """This run's energy as a fraction of a baseline run's."""
        if baseline.energy_j <= 0:
            raise EvaluationError("baseline consumed no energy")
        return self.energy_j / baseline.energy_j

    def active_energy_vs(self, baseline: "RunResult") -> float:
        """Active-window energy relative to a baseline run's."""
        if baseline.active_energy_j <= 0:
            raise EvaluationError("baseline has no active-window energy")
        return self.active_energy_j / baseline.active_energy_j

    def to_dict(self) -> dict:
        """Plain picklable/JSON-able form; see :func:`run_result_to_dict`."""
        return run_result_to_dict(self)


def make_policy(
    governor: "PolicySpec | str",
    platform,
    registry: AnnotationRegistry,
    scenario: "UsageScenario | Scenario",
    runtime_kwargs: Optional[dict] = None,
) -> BrowserPolicy:
    """Instantiate a governor policy from a spec (string or parsed).

    ``scenario`` is what the policy will read targets through: a static
    :class:`UsageScenario` or a live bound
    :class:`~repro.scenarios.base.Scenario`
    (:func:`repro.scenarios.build_live_scenario` builds one for
    hand-assembled stacks)."""
    spec = resolve_spec(governor, runtime_kwargs)
    return POLICIES.build(spec, platform, registry, scenario)


def _resolve_trace(bundle, trace_kind: str):
    if trace_kind == "micro":
        return bundle.micro_trace
    if trace_kind == "full":
        return bundle.full_trace
    raise EvaluationError(f"unknown trace kind {trace_kind!r}")


def trace_event_keys(app: str, seed: int, trace_kind: str) -> list[str]:
    """The policy event key of every trace event, in trace order.

    Matches the ``target_key@event_type`` keys live policies compute in
    ``on_input``, letting post-hoc policies (the oracle) line up
    per-event violations with per-key decisions without running the
    browser.
    """
    bundle = build_app(app, seed)
    trace = _resolve_trace(bundle, trace_kind)
    keys = []
    for scripted in trace.sorted_events():
        target = (
            bundle.page.document.get_element_by_id(scripted.target_id)
            if scripted.target_id
            else bundle.page.document.root
        )
        if target is None:
            raise EvaluationError(
                f"trace {trace.name!r} targets missing element #{scripted.target_id}"
            )
        keys.append(f"{target_key(target)}@{scripted.event_type}")
    return keys


def run_workload(
    app: str,
    governor: "PolicySpec | str",
    scenario: "UsageScenario | ScenarioSpec | str" = UsageScenario.IMPERCEPTIBLE,
    trace_kind: str = "full",
    seed: int = 0,
    settle_s: float = 4.0,
    runtime_kwargs: Optional[dict] = None,
    trace_level: str = "full",
) -> RunResult:
    """Run one experiment cell and return its measurements.

    Args:
        app: application name (see :data:`repro.workloads.APP_NAMES`).
        governor: a policy spec — a bare registered name (see
            ``POLICIES.names()``), a parameterized string like
            ``"greenweb(ewma_alpha=0.25)"``, or a :class:`PolicySpec`.
        scenario: the usage scenario — a registered name or
            parameterized spec like ``"thermal(cap_mhz=1100)"`` (see
            ``SCENARIOS.names()``), a :class:`ScenarioSpec`, or a
            legacy :class:`UsageScenario` value.  The static pair is
            GreenWeb's QoS target choice (Perf and Interactive "behave
            the same independently of the usage scenario", Sec. 7.1 —
            only their violation accounting changes); dynamic scenarios
            additionally act on the simulation (thermal caps, injected
            work).
        trace_kind: ``"micro"`` or ``"full"``.
        seed: workload seed.
        settle_s: wall-clock tail after the last input.
        runtime_kwargs: extra policy parameters merged into the spec
            (legacy ablation-knob path; unknown parameters raise).
        trace_level: :data:`repro.sim.tracing.TRACE_LEVELS` member.
            Every metric in the returned :class:`RunResult` is fed by
            streaming folds over the ``input``/``config`` categories
            (or by non-trace counters), so ``"full"`` and ``"gated"``
            produce identical results — ``"gated"`` just never retains
            the records.  ``"off"`` disables tracing entirely and
            zeroes the trace-derived fields (active energy, residency).
    """
    spec = resolve_spec(governor, runtime_kwargs)
    scenario_spec = SCENARIOS.normalize(scenario)
    entry = POLICIES.get(spec.name)
    if entry.posthoc is not None:
        return entry.posthoc(
            spec,
            app=app,
            scenario=scenario_spec,
            trace_kind=trace_kind,
            seed=seed,
            settle_s=settle_s,
            trace_level=trace_level,
        )
    return execute_run(
        app,
        spec.label(),
        scenario_spec,
        trace_kind,
        seed,
        settle_s,
        trace_level,
        lambda platform, registry, live_scenario: POLICIES.build(
            spec, platform, registry, live_scenario
        ),
    )


class SessionExecution:
    """One prepared measurement world, split so the scalar and batched
    engines share every byte of setup and collection code.

    ``__init__`` builds everything :func:`execute_run` used to build
    before advancing the clock; :meth:`run_scalar` replays the window on
    this session's own kernel; :meth:`finish` collects the
    :class:`RunResult`.  The batched path
    (:func:`repro.evaluation.batch.run_workload_jobs_batched`) skips
    :meth:`run_scalar` and instead hands ``platform.kernel`` plus
    ``window_us`` to a :class:`~repro.sim.batch.BatchRunner`, then calls
    :meth:`finish` — the only difference is *which loop* advances the
    kernel, which is why results are byte-identical (and why the
    differential suite exists to keep them that way).
    """

    def __init__(
        self,
        app: str,
        governor_label: str,
        scenario: "UsageScenario | ScenarioSpec | str",
        trace_kind: str,
        seed: int,
        settle_s: float,
        trace_level: str,
        policy_factory,
    ) -> None:
        self.app = app
        self.governor_label = governor_label
        self.scenario_spec = SCENARIOS.normalize(scenario)
        self.trace_kind = trace_kind

        bundle = build_app(app, seed)
        trace = _resolve_trace(bundle, trace_kind)

        self.platform = odroid_xu_e(
            record_power_intervals=False, trace=TraceLog.for_level(trace_level)
        )
        # Each session gets a FRESH live scenario (instances carry run
        # state) bound to its platform and a forked RNG lane, so
        # scenario randomness never perturbs workload streams.  Bound
        # before the policy so the policy can read its targets from it.
        self.scenario: Scenario = SCENARIOS.build(self.scenario_spec).bind(
            self.platform, RngStreams(seed).fork("scenario")
        )
        registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
        self.policy = policy_factory(self.platform, registry, self.scenario)
        self.browser = Browser(self.platform, bundle.page, policy=self.policy)
        self.scenario.attach(self.browser)
        self._config_fold = ConfigTimelineFold().attach(self.platform.trace)
        self._accountant = _ActiveWindowAccountant(self.platform)
        driver = InteractionDriver(self.browser)

        # Pre-resolve each trace event's QoS spec (annotation state is
        # static); used for violation accounting under EVERY governor so
        # comparisons judge identical targets.
        self._ordered = trace.sorted_events()
        specs: list[Optional[QoSSpec]] = []
        for scripted in self._ordered:
            target = (
                bundle.page.document.get_element_by_id(scripted.target_id)
                if scripted.target_id
                else bundle.page.document.root
            )
            if target is None:
                raise EvaluationError(
                    f"trace {trace.name!r} targets missing element #{scripted.target_id}"
                )
            specs.append(registry.lookup(target, scripted.event_type))
        self._specs = specs

        driver.schedule(trace)
        #: the fixed measurement window (trace duration + settle tail)
        self.window_us = trace.duration_us + s_to_us(settle_s)

    def run_scalar(self) -> None:
        """Advance this session's own kernel through the window."""
        self.platform.run_for(self.window_us)

    def finish(self) -> RunResult:
        """Collect metrics after the window has been executed (by either
        engine); the kernel clock must already be at the deadline."""
        platform = self.platform
        browser = self.browser
        platform.meter.finalize(platform.kernel.now_us)

        records = browser.tracker.records
        if len(records) != len(self._ordered):
            raise EvaluationError(
                f"dispatched {len(records)} inputs but trace has {len(self._ordered)}"
            )
        violations: list[Optional[float]] = []
        for record, spec in zip(records, self._specs):
            if spec is None:
                violations.append(None)
            else:
                violations.append(event_violation_pct(record, spec, self.scenario))

        # Residency comes from the streaming fold rather than a post-hoc
        # trace scan, so a non-retaining ("gated") log yields the same
        # numbers as "full" — see repro.evaluation.folds.
        residency = self._config_fold.residency(
            0, platform.kernel.now_us, initial=CpuConfig("big", 1800)
        )
        active_residency = self._config_fold.windowed(
            self._accountant.windows, initial=CpuConfig("big", 1800)
        )
        runtime_stats = None
        if isinstance(self.policy, GreenWebRuntime):
            stats = self.policy.stats
            runtime_stats = {
                "inputs_seen": stats.inputs_seen,
                "unannotated_inputs": stats.unannotated_inputs,
                "predictions": stats.predictions,
                "profiling_frames": stats.profiling_frames,
                "violations_fed_back": stats.violations_fed_back,
                "boosts_up": stats.boosts_up,
                "boosts_down": stats.boosts_down,
                "recalibrations": stats.recalibrations,
                "idle_drops": stats.idle_drops,
            }

        return RunResult(
            app=self.app,
            governor=self.governor_label,
            scenario=self.scenario_spec.canonical(),
            trace_kind=self.trace_kind,
            duration_s=platform.kernel.now_us / 1e6,
            energy_j=platform.meter.total_j,
            active_energy_j=self._accountant.active_energy_j,
            active_time_s=self._accountant.active_time_us / 1e6,
            frames=browser.stats.frames,
            inputs=browser.stats.inputs,
            skipped_vsyncs=browser.stats.skipped_vsyncs,
            event_violations_pct=violations,
            config_residency=residency,
            active_config_residency=active_residency,
            freq_switches=platform.dvfs.freq_switches,
            migrations=platform.dvfs.migrations,
            annotated_events=sum(1 for s in self._specs if s is not None),
            runtime_stats=runtime_stats,
        )


def execute_run(
    app: str,
    governor_label: str,
    scenario: "UsageScenario | ScenarioSpec | str",
    trace_kind: str,
    seed: int,
    settle_s: float,
    trace_level: str,
    policy_factory,
) -> RunResult:
    """The measurement core shared by live-policy runs and post-hoc
    replays: build the world (including a fresh bound scenario), let
    ``policy_factory(platform, registry, scenario)`` supply the policy,
    replay the trace for the fixed window, collect metrics.
    :func:`run_workload` is the spec-aware front door; the oracle calls
    this directly with its pinned-replay policies — each replay gets
    its own scenario instance, so thermal state never leaks between
    replays.
    """
    execution = SessionExecution(
        app, governor_label, scenario, trace_kind, seed, settle_s, trace_level,
        policy_factory,
    )
    execution.run_scalar()
    return execution.finish()


def run_result_to_dict(result: RunResult) -> dict:
    """Flatten a :class:`RunResult` into plain picklable/JSON-able data.

    ``CpuConfig`` residency keys become their ``"cluster@MHz"`` strings
    (the scenario is already a canonical spec string), so the dict
    survives any serialisation boundary (process pools, JSON files,
    future RPC).
    """
    return {
        "app": result.app,
        "governor": result.governor,
        "scenario": str(result.scenario),
        "trace_kind": result.trace_kind,
        "duration_s": result.duration_s,
        "energy_j": result.energy_j,
        "active_energy_j": result.active_energy_j,
        "active_time_s": result.active_time_s,
        "frames": result.frames,
        "inputs": result.inputs,
        "skipped_vsyncs": result.skipped_vsyncs,
        "event_violations_pct": list(result.event_violations_pct),
        "mean_violation_pct": result.mean_violation_pct,
        "config_residency": {
            str(config): fraction for config, fraction in result.config_residency.items()
        },
        "active_config_residency": {
            str(config): fraction
            for config, fraction in result.active_config_residency.items()
        },
        "freq_switches": result.freq_switches,
        "migrations": result.migrations,
        "annotated_events": result.annotated_events,
        "runtime_stats": result.runtime_stats,
    }


def run_workload_job(spec: dict) -> dict:
    """Worker-safe :func:`run_workload`: plain dict in, plain dict out.

    This is the module-level entry point process pools (and future RPC
    backends) call: it is importable without side effects, and both the
    argument and the return value are built from picklable primitives
    only.  Recognised keys (all but ``app`` optional): ``app``,
    ``governor``, ``scenario``, ``trace_kind``, ``seed``, ``settle_s``,
    ``runtime_kwargs``, ``trace_level``.
    """
    result = run_workload(
        spec["app"],
        spec.get("governor", "greenweb"),
        spec.get("scenario", "imperceptible"),
        trace_kind=spec.get("trace_kind", "full"),
        seed=int(spec.get("seed", 0)),
        settle_s=float(spec.get("settle_s", 4.0)),
        runtime_kwargs=spec.get("runtime_kwargs"),
        trace_level=spec.get("trace_level", "full"),
    )
    return run_result_to_dict(result)
