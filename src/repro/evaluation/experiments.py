"""Per-figure experiment definitions (paper Sec. 7).

Every function runs its experiment matrix and returns structured rows;
:mod:`repro.evaluation.report` renders them in the paper's shape.
Results are normalised exactly as the paper normalises them:

* energy is reported relative to *Perf* (lower is better);
* QoS violations are reported as *additional* violations on top of
  Perf's under the same scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.qos import QoSType, UsageScenario
from repro.evaluation.metrics import cluster_residency, switching_per_frame_pct
from repro.evaluation.runner import RunResult, run_workload
from repro.fleet.pool import parallel_map
from repro.hardware.dvfs import CpuConfig
from repro.workloads.registry import APP_NAMES, app_spec

I = UsageScenario.IMPERCEPTIBLE
U = UsageScenario.USABLE


def _run_cell(cell: tuple) -> RunResult:
    """Module-level (hence picklable) runner for one experiment cell."""
    app, governor, scenario, trace_kind, seed = cell
    return run_workload(app, governor, scenario, trace_kind, seed)


def _run_matrix(
    apps: list[str],
    variants: list[tuple[str, UsageScenario]],
    trace_kind: str,
    seed: int,
    jobs: int,
) -> dict[str, list[RunResult]]:
    """Run apps x variants, optionally fanned out over worker processes,
    and return the per-app result rows in variant order."""
    cells = [
        (app, governor, scenario, trace_kind, seed)
        for app in apps
        for governor, scenario in variants
    ]
    results = parallel_map(_run_cell, cells, jobs)
    stride = len(variants)
    return {
        app: results[index * stride : (index + 1) * stride]
        for index, app in enumerate(apps)
    }


# ----------------------------------------------------------------------
# Fig. 9: micro-benchmarks
# ----------------------------------------------------------------------
@dataclass
class MicrobenchRow:
    """One application's micro-benchmark results (Figs. 9a + 9b)."""

    app: str
    qos_type: QoSType
    perf_energy_j: float
    greenweb_i_energy_norm_pct: float
    greenweb_u_energy_norm_pct: float
    greenweb_i_added_violation_pct: float
    greenweb_u_added_violation_pct: float

    @property
    def i_saving_pct(self) -> float:
        return 100.0 - self.greenweb_i_energy_norm_pct

    @property
    def u_saving_pct(self) -> float:
        return 100.0 - self.greenweb_u_energy_norm_pct


def run_fig9_microbenchmarks(
    apps: Optional[list[str]] = None, seed: int = 0, jobs: int = 1
) -> list[MicrobenchRow]:
    """Figs. 9a/9b: GreenWeb-I and GreenWeb-U vs. Perf on each app's
    micro interaction.  ``jobs > 1`` runs the matrix on worker
    processes; the rows are identical either way."""
    app_list = list(apps or APP_NAMES)
    matrix = _run_matrix(
        app_list,
        [("perf", I), ("perf", U), ("greenweb", I), ("greenweb", U)],
        "micro",
        seed,
        jobs,
    )
    rows = []
    for app in app_list:
        perf_i, perf_u, green_i, green_u = matrix[app]
        rows.append(
            MicrobenchRow(
                app=app,
                qos_type=app_spec(app).micro_qos_type,
                perf_energy_j=perf_i.active_energy_j,
                # Micro-benchmarks compare per-interaction (active
                # window) energy, as the paper's Fig. 9a does.
                greenweb_i_energy_norm_pct=100.0 * green_i.active_energy_vs(perf_i),
                greenweb_u_energy_norm_pct=100.0 * green_u.active_energy_vs(perf_u),
                greenweb_i_added_violation_pct=max(
                    0.0, green_i.mean_violation_pct - perf_i.mean_violation_pct
                ),
                greenweb_u_added_violation_pct=max(
                    0.0, green_u.mean_violation_pct - perf_u.mean_violation_pct
                ),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 10: full interactions
# ----------------------------------------------------------------------
@dataclass
class FullInteractionRow:
    """One application's full-interaction results (Figs. 10a/b/c)."""

    app: str
    perf_energy_j: float
    interactive_energy_norm_pct: float
    greenweb_i_energy_norm_pct: float
    greenweb_u_energy_norm_pct: float
    interactive_added_violation_i_pct: float
    interactive_added_violation_u_pct: float
    greenweb_i_added_violation_pct: float
    greenweb_u_added_violation_pct: float
    #: the underlying runs, for Figs. 11/12 post-processing
    runs: dict[str, RunResult] = field(default_factory=dict)

    @property
    def greenweb_i_saving_vs_interactive_pct(self) -> float:
        if self.interactive_energy_norm_pct <= 0:
            return 0.0
        return 100.0 * (
            1.0 - self.greenweb_i_energy_norm_pct / self.interactive_energy_norm_pct
        )

    @property
    def greenweb_u_saving_vs_interactive_pct(self) -> float:
        if self.interactive_energy_norm_pct <= 0:
            return 0.0
        return 100.0 * (
            1.0 - self.greenweb_u_energy_norm_pct / self.interactive_energy_norm_pct
        )


def run_fig10_full_interactions(
    apps: Optional[list[str]] = None, seed: int = 0, jobs: int = 1
) -> list[FullInteractionRow]:
    """Figs. 10a/b/c: Interactive + GreenWeb-I/U vs. Perf, full traces.
    ``jobs > 1`` runs the matrix on worker processes; the rows are
    identical either way."""
    app_list = list(apps or APP_NAMES)
    matrix = _run_matrix(
        app_list,
        [
            ("perf", I),
            ("perf", U),
            ("interactive", I),
            ("interactive", U),
            ("greenweb", I),
            ("greenweb", U),
        ],
        "full",
        seed,
        jobs,
    )
    rows = []
    for app in app_list:
        perf_i, perf_u, inter_i, inter_u, green_i, green_u = matrix[app]
        rows.append(
            FullInteractionRow(
                app=app,
                perf_energy_j=perf_i.energy_j,
                # Full-interaction energy compares the interaction
                # sessions' active windows (idle gaps between scripted
                # inputs carry no information about the governors and
                # depend only on trace spacing).  RunResult also keeps
                # wall-clock totals; EXPERIMENTS.md reports both.
                interactive_energy_norm_pct=100.0 * inter_i.active_energy_vs(perf_i),
                greenweb_i_energy_norm_pct=100.0 * green_i.active_energy_vs(perf_i),
                greenweb_u_energy_norm_pct=100.0 * green_u.active_energy_vs(perf_u),
                interactive_added_violation_i_pct=max(
                    0.0, inter_i.mean_violation_pct - perf_i.mean_violation_pct
                ),
                interactive_added_violation_u_pct=max(
                    0.0, inter_u.mean_violation_pct - perf_u.mean_violation_pct
                ),
                greenweb_i_added_violation_pct=max(
                    0.0, green_i.mean_violation_pct - perf_i.mean_violation_pct
                ),
                greenweb_u_added_violation_pct=max(
                    0.0, green_u.mean_violation_pct - perf_u.mean_violation_pct
                ),
                runs={
                    "perf_i": perf_i,
                    "interactive_i": inter_i,
                    "greenweb_i": green_i,
                    "greenweb_u": green_u,
                },
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 11: architecture configuration distribution
# ----------------------------------------------------------------------
@dataclass
class DistributionRow:
    """One application's config residency under GreenWeb-I/U (Fig. 11)."""

    app: str
    residency_i: dict[CpuConfig, float]
    residency_u: dict[CpuConfig, float]

    @property
    def big_fraction_i(self) -> float:
        return cluster_residency(self.residency_i).get("big", 0.0)

    @property
    def big_fraction_u(self) -> float:
        return cluster_residency(self.residency_u).get("big", 0.0)


def run_fig11_distribution(
    apps: Optional[list[str]] = None,
    seed: int = 0,
    fig10_rows: Optional[list[FullInteractionRow]] = None,
) -> list[DistributionRow]:
    """Figs. 11a/11b: where GreenWeb spends its time.  Reuses Fig. 10's
    runs when provided (the distributions come from the same traces)."""
    rows = []
    if fig10_rows is not None:
        for row in fig10_rows:
            rows.append(
                DistributionRow(
                    app=row.app,
                    residency_i=row.runs["greenweb_i"].active_config_residency,
                    residency_u=row.runs["greenweb_u"].active_config_residency,
                )
            )
        return rows
    for app in apps or APP_NAMES:
        green_i = run_workload(app, "greenweb", I, "full", seed)
        green_u = run_workload(app, "greenweb", U, "full", seed)
        rows.append(
            DistributionRow(
                app=app,
                residency_i=green_i.active_config_residency,
                residency_u=green_u.active_config_residency,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 12: configuration switching frequency
# ----------------------------------------------------------------------
@dataclass
class SwitchingRow:
    """One application's switching behaviour (Fig. 12)."""

    app: str
    freq_switch_pct_i: float
    migration_pct_i: float
    freq_switch_pct_u: float
    migration_pct_u: float

    @property
    def total_i(self) -> float:
        return self.freq_switch_pct_i + self.migration_pct_i

    @property
    def total_u(self) -> float:
        return self.freq_switch_pct_u + self.migration_pct_u


def run_fig12_switching(
    apps: Optional[list[str]] = None,
    seed: int = 0,
    fig10_rows: Optional[list[FullInteractionRow]] = None,
) -> list[SwitchingRow]:
    """Fig. 12: frequency switches vs. core migrations per frame."""
    rows = []

    def make_row(app: str, green_i: RunResult, green_u: RunResult) -> SwitchingRow:
        fi, mi = switching_per_frame_pct(
            green_i.freq_switches, green_i.migrations, green_i.inputs + green_i.frames
        )
        fu, mu = switching_per_frame_pct(
            green_u.freq_switches, green_u.migrations, green_u.inputs + green_u.frames
        )
        return SwitchingRow(app, fi, mi, fu, mu)

    if fig10_rows is not None:
        return [
            make_row(row.app, row.runs["greenweb_i"], row.runs["greenweb_u"])
            for row in fig10_rows
        ]
    for app in apps or APP_NAMES:
        green_i = run_workload(app, "greenweb", I, "full", seed)
        green_u = run_workload(app, "greenweb", U, "full", seed)
        rows.append(make_row(app, green_i, green_u))
    return rows


# ----------------------------------------------------------------------
# Table 3: application characteristics
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    """Measured vs. paper application characteristics."""

    app: str
    interaction: str
    qos_type: str
    qos_target: str
    paper_duration_s: int
    measured_duration_s: float
    paper_events: int
    measured_events: int
    paper_annotation_pct: float
    measured_annotation_pct: float


def run_table3_characteristics(seed: int = 0) -> list[Table3Row]:
    """Table 3: per-app events / durations / annotation coverage."""
    from repro.core.annotations import AnnotationRegistry
    from repro.workloads.registry import build_app

    rows = []
    for app in APP_NAMES:
        bundle = build_app(app, seed)
        spec = bundle.spec
        registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
        annotated = 0
        for scripted in bundle.full_trace.events:
            target = (
                bundle.page.document.get_element_by_id(scripted.target_id)
                if scripted.target_id
                else bundle.page.document.root
            )
            if registry.lookup(target, scripted.event_type) is not None:
                annotated += 1
        rows.append(
            Table3Row(
                app=app,
                interaction=str(spec.micro_interaction).capitalize(),
                qos_type=str(spec.micro_qos_type).capitalize(),
                qos_target=spec.micro_target_label,
                paper_duration_s=spec.full_duration_s,
                measured_duration_s=bundle.full_trace.duration_s,
                paper_events=spec.full_events,
                measured_events=len(bundle.full_trace),
                paper_annotation_pct=spec.annotation_pct,
                measured_annotation_pct=100.0 * annotated / len(bundle.full_trace),
            )
        )
    return rows
