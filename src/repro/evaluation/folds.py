"""Streaming trace consumers ("folds").

A fold subscribes to a :class:`~repro.sim.tracing.TraceLog` and
accumulates a metric *while the run executes*, so the evaluation runner
and fleet workers no longer need the full trace retained in memory:
with a gated, non-retaining log the per-session footprint is constant
no matter how long the session runs.

Every fold reproduces the corresponding post-hoc scan **exactly** —
same algorithm, same float association order — which is what keeps
figure and fleet-aggregate JSON byte-identical across trace levels
(asserted by tests).  Each fold declares the trace categories it
consumes in ``categories``; a gated log's allowlist must cover the
union of its attached folds' categories (see
:func:`gated_categories_for`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hardware.dvfs import CpuConfig
from repro.sim.tracing import TraceLog, TraceRecord


class TraceFold:
    """Base class: a live trace subscriber that folds records into a
    constant-size accumulator."""

    #: trace categories this fold reads; everything else is ignored.
    categories: frozenset[str] = frozenset()

    def attach(self, trace: TraceLog) -> "TraceFold":
        """Subscribe to ``trace`` and return self (for chaining)."""
        trace.subscribe(self.on_record)
        return self

    def on_record(self, record: TraceRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def replay(self, trace: TraceLog) -> "TraceFold":
        """Fold a *retained* trace after the fact (post-hoc parity path:
        feeding a full log through ``replay`` gives the same state as
        having been attached for the whole run)."""
        for record in trace.records:
            if record.category in self.categories:
                self.on_record(record)
        return self


def gated_categories_for(*folds: TraceFold) -> frozenset[str]:
    """The category allowlist a gated log needs to feed ``folds``."""
    out: frozenset[str] = frozenset()
    for fold in folds:
        out = out | fold.categories
    return out


class ConfigTimelineFold(TraceFold):
    """Collects ``config/applied`` events; answers the Fig. 11
    residency questions without the full trace.

    Memory is O(configuration switches), not O(records).
    """

    categories = frozenset({"config"})

    def __init__(self) -> None:
        self.applied: list[tuple[int, CpuConfig]] = []

    def on_record(self, record: TraceRecord) -> None:
        if record.category == "config" and record.name == "applied":
            self.applied.append(
                (record.time_us, CpuConfig(record["cluster"], record["freq_mhz"]))
            )

    def residency(
        self, start_us: int, end_us: int, initial: CpuConfig
    ) -> dict[CpuConfig, float]:
        """Identical to :func:`repro.evaluation.metrics.config_residency`
        on the same run's trace."""
        from repro.evaluation.metrics import residency_from_applied

        return residency_from_applied(self.applied, start_us, end_us, initial)

    def windowed(
        self, windows: Sequence[tuple[int, int]], initial: CpuConfig
    ) -> dict[CpuConfig, float]:
        """Identical to
        :func:`repro.evaluation.metrics.windowed_config_residency`."""
        from repro.evaluation.metrics import windowed_residency_from_applied

        return windowed_residency_from_applied(self.applied, windows, initial)


class SwitchingCountsFold(TraceFold):
    """Counts DVFS actions (Fig. 12's numerators) from the stream."""

    categories = frozenset({"dvfs"})

    def __init__(self) -> None:
        self.freq_switches = 0
        self.migrations = 0

    def on_record(self, record: TraceRecord) -> None:
        if record.category != "dvfs":
            return
        if record.name == "freq_switch":
            self.freq_switches += 1
        elif record.name == "migrate":
            self.migrations += 1


class FrameTimelineFold(TraceFold):
    """Accumulates displayed-frame latencies for timeline statistics.

    Memory is O(frames) floats instead of O(records) objects; the
    resulting :class:`~repro.evaluation.analysis.FrameTimelineStats`
    matches the post-hoc scan bit for bit.
    """

    categories = frozenset({"frame"})

    def __init__(self) -> None:
        self.latencies_us: list[float] = []
        self.first_us: Optional[int] = None
        self.last_us: Optional[int] = None

    def on_record(self, record: TraceRecord) -> None:
        if record.category == "frame" and record.name == "displayed":
            self.latencies_us.append(float(record["max_latency_us"]))
            if self.first_us is None:
                self.first_us = record.time_us
            self.last_us = record.time_us

    def stats(self, vsync_period_us: Optional[int] = None):
        """Identical to
        :func:`repro.evaluation.analysis.frame_timeline_stats`."""
        from repro.browser.vsync import VSYNC_PERIOD_US
        from repro.evaluation.analysis import timeline_stats_from_latencies

        return timeline_stats_from_latencies(
            self.latencies_us,
            self.first_us or 0,
            self.last_us or 0,
            vsync_period_us if vsync_period_us is not None else VSYNC_PERIOD_US,
        )


class PredictionAccuracyFold(TraceFold):
    """Pairs GreenWeb ``predict`` records with stable-phase ``observe``
    records as they stream by (Sec. 6.2's model, judged)."""

    categories = frozenset({"greenweb"})

    def __init__(self) -> None:
        self._pending: dict[str, float] = {}
        self.errors: list[float] = []
        self.under_predictions = 0

    def on_record(self, record: TraceRecord) -> None:
        if record.category != "greenweb":
            return
        if record.name == "predict":
            self._pending[record["key"]] = float(record["predicted_us"])
        elif record.name == "observe" and record["phase"] == "stable":
            predicted = self._pending.pop(record["key"], None)
            if predicted is None or predicted <= 0:
                return
            observed = float(record["observed_us"])
            self.errors.append(abs(observed - predicted) / predicted)
            if observed > predicted:
                self.under_predictions += 1

    def result(self):
        """Identical to
        :func:`repro.evaluation.analysis.prediction_accuracy`."""
        from repro.evaluation.analysis import PredictionAccuracy, percentile

        if not self.errors:
            return PredictionAccuracy(0, 0.0, 0.0, 0)
        return PredictionAccuracy(
            pairs=len(self.errors),
            mean_abs_rel_error=sum(self.errors) / len(self.errors),
            p90_abs_rel_error=percentile(self.errors, 0.9),
            under_predictions=self.under_predictions,
        )
