"""AutoGreen: automatic GreenWeb annotation (paper Sec. 5, Fig. 6).

Three phases:

1. **Instrumentation** (:mod:`repro.autogreen.instrument`): discover
   every DOM node and its registered mobile-event callbacks, and wrap
   callback invocation so QoS-relevant actions are observable.
2. **Profiling** (:mod:`repro.autogreen.profiler`): trigger each event
   in a sandbox (application state snapshotted and restored) and follow
   its continuations; the detection rules (:mod:`repro.autogreen.detector`)
   classify the event's QoS type: *continuous* if the callback closure
   reaches a ``requestAnimationFrame``, a jQuery-style ``animate()``,
   or a CSS transition/animation — otherwise *single*.
3. **Generation** (:mod:`repro.autogreen.generate`): emit GreenWeb CSS
   annotations.  Single events conservatively get ``short`` targets —
   AutoGreen cannot know an event's semantics, so it favours QoS over
   energy (the paper's Sec. 5 design decision; the evaluation then
   manually corrects long-latency events, Sec. 7.3).
"""

from repro.autogreen.detector import DetectionSignal, detect_signals
from repro.autogreen.generate import AutoGreenReport, generate_annotations, selector_for
from repro.autogreen.instrument import discover_annotation_targets
from repro.autogreen.profiler import AutoGreen, ProfileResult

__all__ = [
    "AutoGreen",
    "ProfileResult",
    "AutoGreenReport",
    "DetectionSignal",
    "detect_signals",
    "discover_annotation_targets",
    "generate_annotations",
    "selector_for",
]
