"""AutoGreen phase 2: the profiling run (paper Sec. 5, Fig. 6).

"AutoGreen performs a profiling run of each event by explicitly
triggering its callback function.  During the callback execution, the
(injected) detection code checks for certain conditions to determine an
event's QoS type and QoS target."

The profiler snapshots the application's script state, triggers every
discovered (element, event) pair, and follows each callback's
*continuations* (timeouts and rAF registrations) to a bounded depth —
an animation started from a ``setTimeout`` is still the event's
animation, and the paper's end-event listeners would catch it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from repro.autogreen.detector import DetectionSignal, detect_signals
from repro.autogreen.instrument import discover_annotation_targets, instrumented_invoke
from repro.browser.page import Page
from repro.core.qos import QoSSpec, QoSType
from repro.errors import WorkloadError
from repro.web.dom import Element
from repro.web.events import EventType
from repro.web.script import Callback, ScriptEffects


@dataclass
class ProfileResult:
    """The classification of one (element, event) pair."""

    element: Element
    event_type: EventType
    qos_type: QoSType
    signals: list[DetectionSignal] = field(default_factory=list)
    #: how many continuation levels were explored before classification
    depth_explored: int = 0

    @property
    def spec(self) -> QoSSpec:
        """The QoS spec AutoGreen assigns: Table 1 defaults, and for
        ``single`` always the conservative ``short`` expectation."""
        if self.qos_type is QoSType.CONTINUOUS:
            return QoSSpec.continuous()
        return QoSSpec.single()


class AutoGreen:
    """The automatic annotation framework."""

    def __init__(self, page: Page, max_continuation_depth: int = 3) -> None:
        if max_continuation_depth < 0:
            raise WorkloadError("continuation depth must be non-negative")
        self.page = page
        self.max_continuation_depth = max_continuation_depth

    def discover(self) -> list[tuple[Element, EventType]]:
        """Phase 1: the annotation targets."""
        return discover_annotation_targets(self.page)

    def profile_event(self, element: Element, event_type: EventType) -> ProfileResult:
        """Phase 2 for one event: trigger its callbacks in a sandbox and
        classify.  The page's real script state is untouched."""
        sandbox_state = copy.deepcopy(self.page.state)
        signals: list[DetectionSignal] = []
        depth_explored = 0

        frontier: list[tuple[Callback, Optional[EventType]]] = [
            (callback, event_type) for callback in element.listeners(event_type.value)
        ]
        depth = 0
        while frontier and depth <= self.max_continuation_depth:
            next_frontier: list[tuple[Callback, Optional[EventType]]] = []
            for callback, etype in frontier:
                effects = instrumented_invoke(
                    self.page, callback, element, etype, sandbox_state
                )
                for signal in detect_signals(effects, self.page.stylesheet):
                    if signal not in signals:
                        signals.append(signal)
                next_frontier.extend(self._continuations(effects))
            depth_explored = depth
            if signals:
                break  # classification settled; no need to dig deeper
            frontier = next_frontier
            depth += 1

        qos_type = QoSType.CONTINUOUS if signals else QoSType.SINGLE
        return ProfileResult(element, event_type, qos_type, signals, depth_explored)

    @staticmethod
    def _continuations(effects: ScriptEffects) -> list[tuple[Callback, Optional[EventType]]]:
        continuations: list[tuple[Callback, Optional[EventType]]] = []
        for timeout in effects.timeouts:
            continuations.append((timeout.callback, None))
        # rAF handlers already classified the event as continuous, so
        # they are not explored further; timeouts are the only
        # QoS-neutral continuation.
        return continuations

    def run(self) -> list[ProfileResult]:
        """Profile every discovered target."""
        return [self.profile_event(element, etype) for element, etype in self.discover()]
