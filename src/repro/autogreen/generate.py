"""AutoGreen phase 3: annotation generation (paper Sec. 5, Fig. 6).

"After profiling, AutoGreen generates QoS annotations and injects them
back to the original code."

Selectors prefer the most specific stable handle: ``tag#id`` when the
element has an id, else ``tag.classes``, else the bare tag (with an
ambiguity warning recorded in the report, since a tag selector may
over-match).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autogreen.profiler import AutoGreen, ProfileResult
from repro.browser.page import Page
from repro.core.annotations import AnnotationRegistry
from repro.core.language import GreenWebAnnotation, annotation_to_css
from repro.web.css.selectors import parse_selector
from repro.web.dom import Element


def selector_for(element: Element) -> str:
    """A CSS selector (without ``:QoS``) addressing ``element``."""
    if element.id:
        return f"{element.tag}#{element.id}"
    if element.classes:
        return element.tag + "".join(f".{c}" for c in sorted(element.classes))
    return element.tag


@dataclass
class AutoGreenReport:
    """The outcome of a full AutoGreen pass over a page."""

    results: list[ProfileResult]
    annotations: list[GreenWebAnnotation]
    css_text: str
    #: selectors that may over-match (no id and no classes)
    ambiguous_selectors: list[str] = field(default_factory=list)

    @property
    def continuous_count(self) -> int:
        from repro.core.qos import QoSType

        return sum(1 for r in self.results if r.qos_type is QoSType.CONTINUOUS)

    @property
    def single_count(self) -> int:
        return len(self.results) - self.continuous_count


def generate_annotations(results: list[ProfileResult]) -> AutoGreenReport:
    """Turn profile results into GreenWeb annotations + CSS text."""
    annotations: list[GreenWebAnnotation] = []
    ambiguous: list[str] = []
    lines: list[str] = []
    for result in results:
        base = selector_for(result.element)
        if not result.element.id and not result.element.classes:
            ambiguous.append(base)
        selector = parse_selector(f"{base}:QoS")
        annotation = GreenWebAnnotation(
            selector=selector,
            event_type=result.event_type,
            spec=result.spec,
        )
        annotations.append(annotation)
        lines.append(annotation_to_css(annotation))
    return AutoGreenReport(
        results=results,
        annotations=annotations,
        css_text="\n".join(lines),
        ambiguous_selectors=ambiguous,
    )


def annotate_page(page: Page, max_continuation_depth: int = 3) -> AutoGreenReport:
    """End-to-end AutoGreen: discover, profile, generate, and *inject*
    the annotations into the page's stylesheet (so a subsequently built
    :class:`~repro.core.annotations.AnnotationRegistry` sees them)."""
    from repro.web.css.parser import parse_stylesheet

    autogreen = AutoGreen(page, max_continuation_depth)
    report = generate_annotations(autogreen.run())
    if report.css_text:
        page.stylesheet.extend(parse_stylesheet(report.css_text))
    return report


def registry_for_page(page: Page) -> AnnotationRegistry:
    """Build the annotation registry a GreenWeb runtime consumes from a
    page's (possibly AutoGreen-augmented) stylesheet."""
    return AnnotationRegistry.from_stylesheet(page.stylesheet)
