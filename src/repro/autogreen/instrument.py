"""AutoGreen phase 1: DOM node / callback discovery and instrumentation.

"The instrumentation phase first discovers all DOM nodes and their
associated events in an application, and instruments every event
callback to inject QoS detection code." (Sec. 5)

In this reproduction, "injecting detection code" means invoking the
callback against a recording :class:`~repro.web.script.ScriptContext`
and inspecting the captured effects — the exact observation points the
paper's overloaded ``animate()``/rAF functions and registered
``transitionend``/``animationend`` listeners provide.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.browser.page import Page
from repro.web.dom import Element
from repro.web.events import MOBILE_EVENT_TYPES, EventType, coerce_event_type
from repro.web.script import Callback, ScriptContext, ScriptEffects


def discover_annotation_targets(page: Page) -> list[tuple[Element, EventType]]:
    """All (element, event) pairs carrying a mobile-event listener.

    Only the paper's mobile interaction events (click, scroll,
    touchstart, touchend, touchmove, load) are annotation targets;
    desktop-only and browser-internal events are skipped.
    """
    targets: list[tuple[Element, EventType]] = []
    for element in page.document.all_elements():
        for name in element.listened_event_types:
            try:
                event_type = coerce_event_type(name)
            except Exception:
                continue
            if event_type in MOBILE_EVENT_TYPES:
                targets.append((element, event_type))
    return targets


def instrumented_invoke(
    page: Page,
    callback: Callback,
    element: Element,
    event_type: Optional[EventType],
    state: dict,
    rng: Optional[np.random.Generator] = None,
) -> ScriptEffects:
    """Run one callback under instrumentation and return its effects.

    The callback sees a *profiling* state dict (the caller snapshots
    and restores the real one) so profiling runs do not perturb the
    application (Sec. 5's "explicitly triggering its callback
    function" without replaying to the user).
    """
    from repro.web.events import Event

    event = None
    if event_type is not None:
        event = Event(event_type, element, input_id=-1)
    ctx = ScriptContext(
        page.document,
        event=event,
        state=state,
        rng=rng if rng is not None else np.random.default_rng(0),
        now_ms=0.0,
    )
    return callback.invoke(ctx)
