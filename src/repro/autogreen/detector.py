"""AutoGreen's QoS-type detection rules (paper Sec. 5).

"An event's QoS type is set to 'continuous' if its callback function
triggers a jQuery ``animate()`` function, a rAF, or a CSS
transition/animation.  Otherwise the QoS type is set to 'single'."

Detection is over recorded :class:`~repro.web.script.ScriptEffects`:

* ``animate()`` calls and rAF registrations are directly visible
  (the paper overloads the original functions; we record the calls);
* a CSS transition is detected when a style write hits a property the
  cascade declares a transition for (the paper registers a
  ``transitionend`` listener — same observable, earlier);
* a CSS animation is detected when the ``animation`` property is
  written (the paper's ``animationend`` listener equivalent).
"""

from __future__ import annotations

import enum

from repro.web.css.stylesheet import Stylesheet
from repro.web.css.transitions import transition_for
from repro.web.script import ScriptEffects


class DetectionSignal(enum.Enum):
    """Why an event was classified as continuous."""

    RAF = "raf"
    ANIMATE = "animate"
    CSS_TRANSITION = "css-transition"
    CSS_ANIMATION = "css-animation"

    def __str__(self) -> str:
        return self.value


def detect_signals(effects: ScriptEffects, stylesheet: Stylesheet) -> list[DetectionSignal]:
    """The continuous-QoS signals present in one callback's effects."""
    signals: list[DetectionSignal] = []
    if effects.uses_raf:
        signals.append(DetectionSignal.RAF)
    if effects.uses_animate:
        signals.append(DetectionSignal.ANIMATE)
    for write in effects.style_writes:
        if write.property == "animation":
            if DetectionSignal.CSS_ANIMATION not in signals:
                signals.append(DetectionSignal.CSS_ANIMATION)
            continue
        spec = transition_for(stylesheet, write.element, write.property)
        if spec is not None and DetectionSignal.CSS_TRANSITION not in signals:
            signals.append(DetectionSignal.CSS_TRANSITION)
    return signals
