"""Small filesystem helpers shared by the CLI and the serve daemon.

Both entry points write result artifacts that must never be observed
half-written (atomic replace) and validate output paths *before* doing
expensive work (probe without creating).
"""

from __future__ import annotations

import os
import tempfile


def probe_writable(path: str, flag: str) -> None:
    """Fail fast on an unwritable output path *without creating it*.

    Probing by opening in append mode would materialise an empty file;
    if the run then never reaches its final write (failure, Ctrl-C),
    that zero-byte artifact looks exactly like a truncated result.
    """
    if os.path.exists(path):
        if os.path.isdir(path):
            raise IsADirectoryError(f"{flag} path {path!r} is a directory")
        if not os.access(path, os.W_OK):
            raise PermissionError(f"{flag} path {path!r} is not writable")
    else:
        directory = os.path.dirname(os.path.abspath(path))
        if not os.path.isdir(directory):
            raise FileNotFoundError(
                f"{flag} directory {directory!r} does not exist"
            )
        if not os.access(directory, os.W_OK):
            raise PermissionError(f"{flag} directory {directory!r} is not writable")


def write_file_atomic(path: str, text: str) -> None:
    """Write via a sibling temp file and rename, so an interrupted run
    never leaves ``path`` truncated or half-written."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".repro-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        # mkstemp creates 0600 files; give the final output the normal
        # umask-derived permissions instead.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
