"""Cluster specifications, cluster runtime state, and the work model.

Work model
----------
All CPU work in the simulator is a :class:`WorkUnit` with two parts:

* ``cycles`` — *reference cycles*: the number of cycles the work takes
  on a big core at IPC 1.  A little core pays an IPC penalty
  (``ipc_factor`` < 1), so it needs ``cycles / ipc_factor`` real cycles.
* ``fixed_us`` — frequency-independent time: GPU work, memory stalls,
  I/O waits.  This maps directly onto the ``T_independent`` term of the
  Xie et al. DVFS model the GreenWeb runtime fits (paper Eq. 1), which
  is deliberate: the model's functional form is exact, but the runtime
  must still *learn* its coefficients from profiling runs.

Execution time at an operating point is therefore::

    duration_us = fixed_us + cycles / (ipc_factor * freq_mhz)

(with ``freq_mhz`` cycles per microsecond at IPC 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.frequency import OperatingPoint, OppTable


@dataclass(frozen=True)
class WorkUnit:
    """A quantum of CPU work (see module docstring for the model).

    Attributes:
        cycles: reference big-core cycles (>= 0).
        fixed_us: frequency-independent microseconds (>= 0).
    """

    cycles: float
    fixed_us: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise HardwareError(f"negative work cycles: {self.cycles}")
        if self.fixed_us < 0:
            raise HardwareError(f"negative fixed time: {self.fixed_us}")

    @property
    def is_empty(self) -> bool:
        """True if the unit contains no work at all."""
        return self.cycles == 0 and self.fixed_us == 0

    def duration_us(self, ipc_factor: float, freq_mhz: int) -> float:
        """Execution time in microseconds on a core with the given IPC
        factor running at ``freq_mhz``."""
        if ipc_factor <= 0:
            raise HardwareError(f"non-positive IPC factor: {ipc_factor}")
        if freq_mhz <= 0:
            raise HardwareError(f"non-positive frequency: {freq_mhz}")
        return self.fixed_us + self.cycles / (ipc_factor * freq_mhz)

    def scaled(self, fraction: float) -> "WorkUnit":
        """Return a copy with both components scaled by ``fraction``
        (used to compute remaining work after partial execution)."""
        if not 0.0 <= fraction <= 1.0:
            raise HardwareError(f"scale fraction out of [0, 1]: {fraction}")
        return WorkUnit(self.cycles * fraction, self.fixed_us * fraction)

    def __add__(self, other: "WorkUnit") -> "WorkUnit":
        return WorkUnit(self.cycles + other.cycles, self.fixed_us + other.fixed_us)


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one CPU cluster.

    Attributes:
        name: e.g. ``"big"`` or ``"little"``.
        microarchitecture: e.g. ``"Cortex-A15"`` (informational).
        core_count: number of cores in the cluster.
        ipc_factor: relative instructions-per-cycle vs. the reference
            (big) core; big = 1.0, little < 1.0.
        ceff_nf: effective switched capacitance in nanofarads, the ``C``
            of the dynamic power model ``P = C * V^2 * f``.
        leakage_w_per_v: leakage coefficient; static power of a powered
            cluster is ``leakage_w_per_v * voltage``.
        opps: the cluster's DVFS operating-point table.
    """

    name: str
    microarchitecture: str
    core_count: int
    ipc_factor: float
    ceff_nf: float
    leakage_w_per_v: float
    opps: OppTable

    def __post_init__(self) -> None:
        if self.core_count <= 0:
            raise HardwareError(f"cluster {self.name!r} needs at least one core")
        if not 0 < self.ipc_factor <= 2.0:
            raise HardwareError(f"implausible IPC factor {self.ipc_factor}")
        if self.ceff_nf <= 0 or self.leakage_w_per_v < 0:
            raise HardwareError("power coefficients must be positive")

    def duration_us(self, work: WorkUnit, freq_mhz: int) -> float:
        """Time for ``work`` on one core of this cluster at ``freq_mhz``."""
        return work.duration_us(self.ipc_factor, freq_mhz)


class Cluster:
    """Runtime state of one cluster: current OPP and power gating."""

    def __init__(self, spec: ClusterSpec, powered: bool = True) -> None:
        self.spec = spec
        self._opp = spec.opps.min
        self._powered = powered

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def opp(self) -> OperatingPoint:
        """The cluster's current operating point."""
        return self._opp

    @property
    def freq_mhz(self) -> int:
        return self._opp.freq_mhz

    @property
    def powered(self) -> bool:
        """Whether the cluster is powered (unpowered clusters leak
        nothing; the Exynos 5410's clusters can be individually gated)."""
        return self._powered

    def set_opp(self, opp: OperatingPoint) -> None:
        """Set the operating point (must come from this cluster's table)."""
        self.spec.opps.at(opp.freq_mhz)  # validates membership
        self._opp = opp

    def set_frequency(self, freq_mhz: int) -> OperatingPoint:
        """Set the OPP by frequency and return it."""
        opp = self.spec.opps.at(freq_mhz)
        self._opp = opp
        return opp

    def power_on(self) -> None:
        self._powered = True

    def power_off(self) -> None:
        self._powered = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self._powered else "off"
        return f"<Cluster {self.name} {self._opp} {state}>"


def big_cluster_spec() -> ClusterSpec:
    """The Exynos-5410-like big cluster (4x Cortex-A15)."""
    from repro.hardware.frequency import cortex_a15_opps

    return ClusterSpec(
        name="big",
        microarchitecture="Cortex-A15",
        core_count=4,
        ipc_factor=1.0,
        ceff_nf=0.55,
        leakage_w_per_v=0.25,
        opps=cortex_a15_opps(),
    )


def little_cluster_spec() -> ClusterSpec:
    """The Exynos-5410-like little cluster (4x Cortex-A7)."""
    from repro.hardware.frequency import cortex_a7_opps

    return ClusterSpec(
        name="little",
        microarchitecture="Cortex-A7",
        core_count=4,
        ipc_factor=0.50,
        ceff_nf=0.08,
        leakage_w_per_v=0.03,
        opps=cortex_a7_opps(),
    )
