"""Analytical CMOS power model.

Dynamic power of one busy core: ``P_dyn = Ceff * V^2 * f`` with ``Ceff``
in farads, ``V`` in volts and ``f`` in hertz.  Static (leakage) power of
a powered cluster: ``P_leak = k * V``.  An idle but powered cluster pays
leakage only; an unpowered cluster pays nothing.  A small
``deep_idle_w`` floor models the rest of the SoC's always-on rail.

The constants in :mod:`repro.hardware.core` are calibrated so that:

* a big core at 1.8 GHz draws ~1.5 W dynamic (plus ~0.3 W cluster
  leakage), a little core at 600 MHz ~0.1 W — matching published
  A15/A7 measurements to first order, and
* energy-per-work monotonically decreases from big-max toward the
  little cluster, giving the runtime a genuine trade-off space
  (see DESIGN.md Sec. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.core import ClusterSpec
from repro.hardware.frequency import OperatingPoint


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous platform power decomposed by source (watts)."""

    dynamic_w: float
    static_w: float
    base_w: float

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.static_w + self.base_w


class PowerModel:
    """Computes instantaneous power from cluster state and busy counts.

    Args:
        deep_idle_w: constant platform floor (always-on rails, memory
            retention) paid by every governor alike.
        wfi_idle_factor: fraction of cluster leakage still paid when the
            cluster is powered but has no runnable work — cpuidle's WFI
            clock-gating cuts dynamic power entirely and part of the
            effective static draw, but (as on the Exynos 5410, which
            lacks idle power-collapse for the big cluster) a high-V
            idle cluster still leaks substantially.  This is the term
            that makes *Perf* pay for parking at big-max between frames.
    """

    def __init__(self, deep_idle_w: float = 0.012, wfi_idle_factor: float = 0.15) -> None:
        self.deep_idle_w = deep_idle_w
        self.wfi_idle_factor = wfi_idle_factor

    def core_dynamic_w(self, spec: ClusterSpec, opp: OperatingPoint) -> float:
        """Dynamic power of a single busy core at ``opp`` (watts)."""
        ceff_farads = spec.ceff_nf * 1e-9
        freq_hz = opp.freq_mhz * 1e6
        return ceff_farads * opp.voltage_v**2 * freq_hz

    def cluster_static_w(self, spec: ClusterSpec, opp: OperatingPoint) -> float:
        """Leakage power of a powered cluster at ``opp``'s voltage."""
        return spec.leakage_w_per_v * opp.voltage_v

    def cluster_power_w(
        self, spec: ClusterSpec, opp: OperatingPoint, busy_cores: int, powered: bool
    ) -> float:
        """Total power of one cluster given how many cores are busy.

        A fully idle cluster pays ``wfi_idle_factor`` of its leakage
        (WFI clock-gating); a cluster with any busy core pays full
        leakage plus per-busy-core dynamic power.
        """
        if not powered:
            return 0.0
        busy = min(max(busy_cores, 0), spec.core_count)
        if busy == 0:
            return self.cluster_static_w(spec, opp) * self.wfi_idle_factor
        return self.cluster_static_w(spec, opp) + busy * self.core_dynamic_w(spec, opp)

    def breakdown(
        self,
        clusters: list[tuple[ClusterSpec, OperatingPoint, int, bool]],
    ) -> PowerBreakdown:
        """Platform power from ``(spec, opp, busy_cores, powered)`` rows."""
        dynamic = 0.0
        static = 0.0
        for spec, opp, busy_cores, powered in clusters:
            if not powered:
                continue
            busy = min(max(busy_cores, 0), spec.core_count)
            dynamic += busy * self.core_dynamic_w(spec, opp)
            if busy == 0:
                static += self.cluster_static_w(spec, opp) * self.wfi_idle_factor
            else:
                static += self.cluster_static_w(spec, opp)
        return PowerBreakdown(dynamic_w=dynamic, static_w=static, base_w=self.deep_idle_w)

    def energy_per_mcycle_uj(self, spec: ClusterSpec, opp: OperatingPoint) -> float:
        """Energy (microjoules) to retire one million *reference* cycles
        on one core at ``opp``, charging dynamic plus this core's share
        of leakage.  Used by tests to assert the trade-off space shape.
        """
        time_s = 1e6 / (spec.ipc_factor * opp.freq_mhz * 1e6)
        power_w = self.core_dynamic_w(spec, opp) + self.cluster_static_w(spec, opp)
        return power_w * time_s * 1e6
