"""Energy metering by exact integration of piecewise-constant power.

The paper measures energy with 10 mOhm sense resistors sampled at
1 kHz by a NI DAQ and integrates power over real execution time.  In
the simulator, platform power is piecewise constant between state
changes (task start/stop, DVFS apply), so we integrate *exactly* at
each change — equivalent to the limit of infinitely fast sampling.  A
:meth:`EnergyMeter.sample_trace` helper reconstructs the 1 kHz sampled
view for tests and plots that want the paper's measurement grain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import HardwareError
from repro.hardware.power import PowerBreakdown


@dataclass(frozen=True)
class PowerInterval:
    """One interval of constant platform power."""

    start_us: int
    end_us: int
    power_w: float

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us

    @property
    def energy_j(self) -> float:
        return self.power_w * self.duration_us * 1e-6


class EnergyMeter:
    """Integrates platform power into energy, with named marks.

    The meter must be driven in non-decreasing time order; the platform
    calls :meth:`on_power_change` at every power-affecting event and
    :meth:`finalize` when a run ends.
    """

    def __init__(self, start_us: int = 0, record_intervals: bool = True) -> None:
        self._last_change_us = start_us
        self._current_power_w = 0.0
        self._current_dynamic_w = 0.0
        self._total_j = 0.0
        self._dynamic_j = 0.0
        self._marks: dict[str, float] = {}
        self._time_marks: dict[str, int] = {}
        self._record = record_intervals
        self._intervals: list[PowerInterval] = []

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def on_power_change(self, now_us: int, breakdown: PowerBreakdown) -> None:
        """Account energy up to ``now_us`` then switch to the new power."""
        self._integrate_to(now_us)
        self._current_power_w = breakdown.total_w
        self._current_dynamic_w = breakdown.dynamic_w

    def finalize(self, now_us: int) -> None:
        """Integrate the trailing interval up to ``now_us``."""
        self._integrate_to(now_us)

    def _integrate_to(self, now_us: int) -> None:
        if now_us < self._last_change_us:
            raise HardwareError(
                f"energy meter driven backwards: {now_us} < {self._last_change_us}"
            )
        dt_us = now_us - self._last_change_us
        if dt_us > 0:
            self._total_j += self._current_power_w * dt_us * 1e-6
            self._dynamic_j += self._current_dynamic_w * dt_us * 1e-6
            if self._record and self._current_power_w >= 0:
                self._intervals.append(
                    PowerInterval(self._last_change_us, now_us, self._current_power_w)
                )
        self._last_change_us = now_us

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def total_j(self) -> float:
        """Total integrated energy (joules) up to the last change/finalize."""
        return self._total_j

    @property
    def dynamic_j(self) -> float:
        """The dynamic (switching) component of the total."""
        return self._dynamic_j

    @property
    def current_power_w(self) -> float:
        """The instantaneous power currently being integrated."""
        return self._current_power_w

    def mark(self, label: str, now_us: int) -> None:
        """Snapshot the energy counter under ``label`` (integrates first)."""
        self._integrate_to(now_us)
        self._marks[label] = self._total_j
        self._time_marks[label] = now_us

    def since_mark(self, label: str, now_us: Optional[int] = None) -> float:
        """Energy (joules) accumulated since ``mark(label)`` was taken."""
        if label not in self._marks:
            raise HardwareError(f"unknown energy mark {label!r}")
        if now_us is not None:
            self._integrate_to(now_us)
        return self._total_j - self._marks[label]

    def mark_time_us(self, label: str) -> int:
        """The timestamp at which ``label`` was marked."""
        if label not in self._time_marks:
            raise HardwareError(f"unknown energy mark {label!r}")
        return self._time_marks[label]

    @property
    def intervals(self) -> list[PowerInterval]:
        """The piecewise-constant power history (if recording)."""
        return self._intervals

    def sample_trace(self, period_us: int = 1_000) -> list[tuple[int, float]]:
        """Reconstruct a sampled (time_us, power_w) trace at ``period_us``
        granularity — the paper's 1 kHz DAQ view of the same run."""
        if not self._record:
            raise HardwareError("interval recording disabled; no trace available")
        if period_us <= 0:
            raise HardwareError(f"non-positive sample period: {period_us}")
        samples: list[tuple[int, float]] = []
        if not self._intervals:
            return samples
        t = self._intervals[0].start_us
        end = self._intervals[-1].end_us
        index = 0
        while t < end:
            while index < len(self._intervals) and self._intervals[index].end_us <= t:
                index += 1
            if index >= len(self._intervals):
                break
            samples.append((t, self._intervals[index].power_w))
            t += period_us
        return samples
