"""Execution contexts: serial task execution with DVFS preemption.

An :class:`ExecutionContext` models one runnable software thread pinned
to the active cluster (the browser gives one to its renderer main
thread and one to its compositor thread).  Tasks queue FIFO and execute
one at a time; task duration is derived from the platform's *current*
configuration via the :class:`~repro.hardware.core.WorkUnit` model.

When the platform changes configuration mid-task (a frequency switch or
core migration), the context is paused: the running task's remaining
work is computed by proportionally scaling both work components by the
unexecuted fraction, and after the switching overhead elapses the task
resumes at the new speed.  This is what makes DVFS decisions taken
*during* a frame (the GreenWeb runtime's per-frame operation) affect
that frame's latency, exactly as on real hardware.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.hardware.core import WorkUnit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.platform import MobilePlatform

CompletionCallback = Callable[["TaskHandle"], None]

_ZERO_WORK = WorkUnit(0.0, 0.0)


class TaskHandle:
    """Handle for a unit of work submitted to an execution context."""

    __slots__ = (
        "label",
        "work",
        "remaining",
        "on_complete",
        "submitted_us",
        "started_us",
        "completed_us",
        "_completion_event",
    )

    def __init__(
        self,
        work: WorkUnit,
        on_complete: Optional[CompletionCallback],
        label: str,
        submitted_us: int,
    ) -> None:
        self.label = label
        self.work = work
        self.remaining = work
        self.on_complete = on_complete
        self.submitted_us = submitted_us
        self.started_us: Optional[int] = None
        self.completed_us: Optional[int] = None
        self._completion_event = None

    @property
    def done(self) -> bool:
        """True once the task has fully executed."""
        return self.completed_us is not None

    @property
    def queueing_delay_us(self) -> int:
        """Time spent waiting before first execution (0 if never run)."""
        if self.started_us is None:
            return 0
        return self.started_us - self.submitted_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("running" if self.started_us is not None else "queued")
        return f"<Task {self.label!r} {state}>"


class ExecutionContext:
    """One serially executing thread context on the platform."""

    def __init__(self, platform: "MobilePlatform", name: str) -> None:
        self._platform = platform
        self.name = name
        self._queue: deque[TaskHandle] = deque()
        self._current: Optional[TaskHandle] = None
        self._paused = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a task is running or frozen mid-switch."""
        return self._current is not None

    @property
    def queue_depth(self) -> int:
        """Number of tasks waiting behind the current one."""
        return len(self._queue)

    @property
    def current_task(self) -> Optional[TaskHandle]:
        return self._current

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        work: WorkUnit,
        on_complete: Optional[CompletionCallback] = None,
        label: str = "",
    ) -> TaskHandle:
        """Queue ``work``; it starts immediately if the context is idle.

        Zero-work tasks complete on the next kernel tick with zero
        duration (they still respect FIFO ordering).
        """
        handle = TaskHandle(work, on_complete, label, self._platform.kernel._now_us)
        self._queue.append(handle)
        if self._current is None and not self._paused:
            self._start_next()
        return handle

    # ------------------------------------------------------------------
    # Platform hooks (pause/resume around configuration switches)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Freeze the running task, banking its remaining work.

        Idempotent: pausing an already-paused context is a no-op (a new
        DVFS switch may begin while some contexts are still frozen from
        the previous one)."""
        if self._paused:
            return
        self._paused = True
        task = self._current
        if task is None or task._completion_event is None:
            return
        event = task._completion_event
        now = self._platform.kernel._now_us
        started = task.started_us if task.started_us is not None else now
        total = event.time_us - started
        # Zero-duration tasks race the pause; they have nothing left.
        if total > 0:
            fraction_left = max(0.0, 1.0 - (now - started) / total)
            task.remaining = task.remaining.scaled(fraction_left)
        event.cancel()
        task._completion_event = None

    def resume(self) -> None:
        """Resume (or start) execution at the platform's new config.

        Idempotent: resuming a running context is a no-op."""
        if not self._paused:
            return
        self._paused = False
        if self._current is not None:
            self._schedule_completion(self._current)
        elif self._queue:
            self._start_next()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if not self._queue:
            return
        task = self._queue.popleft()
        task.started_us = self._platform.kernel._now_us
        self._current = task
        # Becoming busy may trigger an observer (e.g. the interactive
        # governor's idle-exit boost) that initiates a DVFS switch and
        # pauses this context; in that case completion is scheduled by
        # resume() at the new configuration instead.
        self._platform._context_became_busy(self)
        if not self._paused:
            self._schedule_completion(task)

    def _schedule_completion(self, task: TaskHandle) -> None:
        platform = self._platform
        remaining = task.remaining
        active = platform._active_cluster
        # Inlined WorkUnit.duration_us (same expression, same floats).
        duration = remaining.fixed_us + remaining.cycles / (
            active.spec.ipc_factor * active._opp.freq_mhz
        )
        ticks = max(0, round(duration))
        # Re-anchor started_us so pause() measures elapsed time correctly
        # across resumes.  Only one task runs per context, so the
        # completion event can resolve it through self._current instead
        # of closing over it.
        task.started_us = platform.kernel._now_us
        task._completion_event = platform.kernel.schedule_in(
            ticks, self._finish_current, label=self.name
        )

    def _finish_current(self) -> None:
        self._finish(self._current)

    def _finish(self, task: TaskHandle) -> None:
        now = self._platform.kernel._now_us
        task.completed_us = now
        task.remaining = _ZERO_WORK
        task._completion_event = None
        self._current = None
        if self._platform.record_task_spans:
            self._platform.trace.emit(
                now,
                "task",
                "span",
                context=self.name,
                label=task.label,
                start_us=task.submitted_us,
                run_start_us=task.started_us if task.started_us is not None else now,
                duration_us=now - task.submitted_us,
            )
        # The completion callback runs before the next queued task
        # starts: a task's effects (style writes, dirty bits, config
        # decisions) must be visible to whatever executes next, exactly
        # as straight-line code on a real thread would behave.  The
        # callback may submit new tasks or pause the context.
        if task.on_complete is not None:
            task.on_complete(task)
        if self._current is None:
            if self._queue and not self._paused:
                self._start_next()
            if self._current is None:
                self._platform._context_became_idle(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExecutionContext {self.name} busy={self.busy} q={self.queue_depth}>"
