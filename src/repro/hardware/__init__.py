"""ACMP (big.LITTLE) mobile platform simulator.

This package substitutes for the paper's ODroid XU+E board (Exynos 5410
SoC: 4x Cortex-A15 "big" + 4x Cortex-A7 "little").  It models:

* per-cluster DVFS operating points (A15: 800-1800 MHz @ 100 MHz steps,
  A7: 350-600 MHz @ 50 MHz steps) with a voltage-frequency curve,
* an analytical CMOS power model (dynamic ``C*V^2*f`` + leakage),
* configuration-switching overheads (100 us frequency switch, 20 us
  core migration, as reported in the paper's Sec. 7.1),
* exact energy integration equivalent to the paper's 1 kHz
  sense-resistor measurement.

The entry point is :func:`~repro.hardware.platform.odroid_xu_e`, which
builds a :class:`~repro.hardware.platform.MobilePlatform` shaped like
the paper's testbed.
"""

from repro.hardware.core import ClusterSpec, Cluster, WorkUnit
from repro.hardware.dvfs import DvfsController, CpuConfig
from repro.hardware.energy import EnergyMeter
from repro.hardware.execution import ExecutionContext, TaskHandle
from repro.hardware.frequency import OperatingPoint, OppTable, cortex_a15_opps, cortex_a7_opps
from repro.hardware.platform import MobilePlatform, odroid_xu_e
from repro.hardware.power import PowerModel

__all__ = [
    "OperatingPoint",
    "OppTable",
    "cortex_a15_opps",
    "cortex_a7_opps",
    "ClusterSpec",
    "Cluster",
    "WorkUnit",
    "PowerModel",
    "ExecutionContext",
    "TaskHandle",
    "DvfsController",
    "CpuConfig",
    "EnergyMeter",
    "MobilePlatform",
    "odroid_xu_e",
]
