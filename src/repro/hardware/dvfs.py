"""DVFS actuation: frequency switches and big/little core migration.

The paper reports (Sec. 7.1) a 100 us frequency-switching overhead and
a 20 us core-migration overhead on the Exynos 5410.  The controller
models both: during a switch, all execution contexts are paused (their
in-flight work is frozen) and resume at the new configuration once the
overhead elapses.

The controller also counts the two kinds of switches separately, which
is exactly the data Fig. 12 of the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import HardwareError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.platform import MobilePlatform

#: Frequency-switch overhead within a cluster (paper Sec. 7.1).
FREQ_SWITCH_OVERHEAD_US = 100
#: Big/little migration overhead (paper Sec. 7.1).
MIGRATION_OVERHEAD_US = 20


@dataclass(frozen=True, order=True)
class CpuConfig:
    """An ACMP execution configuration: a <cluster, frequency> tuple."""

    cluster: str
    freq_mhz: int

    def __str__(self) -> str:
        return f"{self.cluster}@{self.freq_mhz}MHz"


class DvfsController:
    """Applies :class:`CpuConfig` requests to a platform with realistic
    switching overheads, coalescing requests that arrive mid-switch."""

    def __init__(
        self,
        platform: "MobilePlatform",
        freq_switch_overhead_us: int = FREQ_SWITCH_OVERHEAD_US,
        migration_overhead_us: int = MIGRATION_OVERHEAD_US,
    ) -> None:
        if freq_switch_overhead_us < 0 or migration_overhead_us < 0:
            raise HardwareError("switching overheads must be non-negative")
        self._platform = platform
        self.freq_switch_overhead_us = freq_switch_overhead_us
        self.migration_overhead_us = migration_overhead_us
        self.freq_switches = 0
        self.migrations = 0
        self._pending_target: Optional[CpuConfig] = None
        self._apply_event = None

    @property
    def in_flight(self) -> bool:
        """True while a switch overhead window is open."""
        return self._apply_event is not None and self._apply_event.pending

    @property
    def switch_count(self) -> int:
        """Total configuration switches (frequency + migration)."""
        return self.freq_switches + self.migrations

    def clamp(self, config: CpuConfig) -> CpuConfig:
        """``config`` adjusted to respect the platform's frequency caps:
        the fastest OPP of its cluster at or below the cap (the slowest
        OPP when the cap sits below the whole table).  Identity when the
        cluster is uncapped."""
        cap = self._platform.frequency_cap(config.cluster)
        if cap is None or config.freq_mhz <= cap:
            return config
        frequencies = self._platform.cluster(config.cluster).spec.opps.frequencies
        allowed = [freq for freq in frequencies if freq <= cap]
        return CpuConfig(config.cluster, max(allowed) if allowed else min(frequencies))

    def enforce_caps(self) -> None:
        """Re-check the applied (or in-flight) configuration against the
        platform's frequency caps, initiating a down-switch when it
        violates them.  Called by
        :meth:`~repro.hardware.platform.MobilePlatform.set_frequency_cap`."""
        target = self._pending_target if self.in_flight else self._platform.config
        clamped = self.clamp(target)
        if clamped != target:
            self.request(clamped)

    def request(self, config: CpuConfig) -> bool:
        """Ask for a new configuration.

        Returns True if a switch was initiated (or an in-flight switch
        retargeted), False if the platform is already at ``config``
        (after clamping to any frequency cap in force — an over-cap
        request lands on the fastest allowed OPP instead).

        Raises:
            HardwareError: for an unknown cluster.
            FrequencyError: for a frequency not in the cluster's table.
        """
        platform = self._platform
        cluster = platform.cluster(config.cluster)
        cluster.spec.opps.at(config.freq_mhz)  # validate frequency early
        config = self.clamp(config)

        if self.in_flight:
            # Coalesce: retarget the pending apply.  If the retarget makes
            # the switch a no-op, cancel it entirely and resume.
            if config == platform.config and self._pending_target != config:
                self._cancel_in_flight()
                return False
            self._pending_target = config
            return True

        if config == platform.config:
            return False

        migrating = config.cluster != platform.active_cluster_name
        if migrating:
            self.migrations += 1
            overhead = self.migration_overhead_us
        else:
            self.freq_switches += 1
            overhead = self.freq_switch_overhead_us

        if platform.trace.wants("dvfs"):
            platform.trace.emit(
                platform.kernel.now_us,
                "dvfs",
                "migrate" if migrating else "freq_switch",
                frm=str(platform.config),
                to=str(config),
                overhead_us=overhead,
            )

        self._pending_target = config
        platform._pause_all_contexts()
        self._apply_event = platform.kernel.schedule_in(
            overhead, self._apply, label=f"dvfs->{config}"
        )
        return True

    def _cancel_in_flight(self) -> None:
        if self._apply_event is not None:
            self._apply_event.cancel()
        self._apply_event = None
        self._pending_target = None
        self._platform._resume_all_contexts()

    def _apply(self) -> None:
        target = self._pending_target
        self._apply_event = None
        self._pending_target = None
        if target is None:  # pragma: no cover - defensive
            raise HardwareError("DVFS apply fired with no target")
        self._platform._apply_config(target)
        self._platform._resume_all_contexts()
