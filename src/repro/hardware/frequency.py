"""DVFS operating points (OPPs) and per-cluster frequency tables.

The paper's platform (Sec. 7.1): big Cortex-A15 cores run 800 MHz to
1.8 GHz at 100 MHz granularity; little Cortex-A7 cores run 350 MHz to
600 MHz at 50 MHz granularity.  Voltages follow a linear V-f curve
calibrated to published Exynos-class operating ranges; the absolute
values only need to produce the right *shape* of the energy-delay
trade-off space (see DESIGN.md Sec. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import FrequencyError


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """One DVFS operating point: a (frequency, voltage) pair.

    Ordering is by frequency (then voltage), so OPPs sort naturally from
    slowest to fastest.
    """

    freq_mhz: int
    voltage_v: float

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise FrequencyError(f"non-positive frequency: {self.freq_mhz} MHz")
        if self.voltage_v <= 0:
            raise FrequencyError(f"non-positive voltage: {self.voltage_v} V")

    def __str__(self) -> str:
        return f"{self.freq_mhz}MHz@{self.voltage_v:.3f}V"


class OppTable:
    """An ordered, immutable table of operating points for one cluster."""

    def __init__(self, points: Sequence[OperatingPoint]) -> None:
        if not points:
            raise FrequencyError("OPP table must contain at least one point")
        ordered = sorted(points)
        freqs = [p.freq_mhz for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise FrequencyError(f"duplicate frequencies in OPP table: {freqs}")
        self._points: tuple[OperatingPoint, ...] = tuple(ordered)
        self._by_freq = {p.freq_mhz: p for p in ordered}

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __contains__(self, freq_mhz: int) -> bool:
        return freq_mhz in self._by_freq

    @property
    def points(self) -> tuple[OperatingPoint, ...]:
        """All OPPs, slowest first."""
        return self._points

    @property
    def frequencies(self) -> tuple[int, ...]:
        """All frequencies in MHz, ascending."""
        return tuple(p.freq_mhz for p in self._points)

    @property
    def min(self) -> OperatingPoint:
        """The slowest OPP."""
        return self._points[0]

    @property
    def max(self) -> OperatingPoint:
        """The fastest OPP."""
        return self._points[-1]

    def at(self, freq_mhz: int) -> OperatingPoint:
        """Exact lookup by frequency.

        Raises:
            FrequencyError: if the frequency is not an OPP of this table.
        """
        try:
            return self._by_freq[freq_mhz]
        except KeyError:
            raise FrequencyError(
                f"{freq_mhz} MHz is not an operating point; "
                f"available: {list(self.frequencies)}"
            ) from None

    def at_least(self, freq_mhz: float) -> OperatingPoint:
        """The slowest OPP whose frequency is >= ``freq_mhz``.

        Raises:
            FrequencyError: if even the fastest OPP is below ``freq_mhz``.
        """
        for point in self._points:
            if point.freq_mhz >= freq_mhz:
                return point
        raise FrequencyError(
            f"no operating point at or above {freq_mhz} MHz (max is {self.max.freq_mhz})"
        )

    def at_most(self, freq_mhz: float) -> OperatingPoint:
        """The fastest OPP whose frequency is <= ``freq_mhz``."""
        for point in reversed(self._points):
            if point.freq_mhz <= freq_mhz:
                return point
        raise FrequencyError(
            f"no operating point at or below {freq_mhz} MHz (min is {self.min.freq_mhz})"
        )

    def step_up(self, freq_mhz: int) -> OperatingPoint:
        """The next-faster OPP (clamped at the top)."""
        current = self.at(freq_mhz)
        index = self._points.index(current)
        return self._points[min(index + 1, len(self._points) - 1)]

    def step_down(self, freq_mhz: int) -> OperatingPoint:
        """The next-slower OPP (clamped at the bottom)."""
        current = self.at(freq_mhz)
        index = self._points.index(current)
        return self._points[max(index - 1, 0)]


def _linear_voltage_curve(
    freqs_mhz: Sequence[int], v_min: float, v_max: float
) -> list[OperatingPoint]:
    lo, hi = min(freqs_mhz), max(freqs_mhz)
    span = hi - lo
    points = []
    for f in freqs_mhz:
        fraction = 0.0 if span == 0 else (f - lo) / span
        points.append(OperatingPoint(f, round(v_min + fraction * (v_max - v_min), 4)))
    return points


def cortex_a15_opps() -> OppTable:
    """OPP table for the big (Cortex-A15) cluster: 800-1800 MHz, 100 MHz
    steps, 0.90 V to 1.23 V."""
    freqs = list(range(800, 1801, 100))
    return OppTable(_linear_voltage_curve(freqs, v_min=0.90, v_max=1.23))


def cortex_a7_opps() -> OppTable:
    """OPP table for the little (Cortex-A7) cluster: 350-600 MHz, 50 MHz
    steps, 0.90 V to 1.05 V."""
    freqs = list(range(350, 601, 50))
    return OppTable(_linear_voltage_curve(freqs, v_min=0.90, v_max=1.05))
