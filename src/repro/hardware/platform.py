"""Platform assembly: clusters + contexts + power + energy + DVFS.

:class:`MobilePlatform` is the hardware facade the rest of the system
talks to.  It owns the simulation kernel, the two clusters, the set of
execution contexts (threads), the power model, the energy meter, and
the DVFS controller, and it keeps utilization statistics that the
Android-style ``interactive`` governor samples.

Only one cluster is active at a time (cluster migration, as on the
Exynos 5410 in the paper's setup); the inactive cluster is power-gated.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import HardwareError
from repro.hardware.core import (
    Cluster,
    ClusterSpec,
    WorkUnit,
    big_cluster_spec,
    little_cluster_spec,
)
from repro.hardware.dvfs import CpuConfig, DvfsController
from repro.hardware.energy import EnergyMeter
from repro.hardware.execution import ExecutionContext
from repro.hardware.power import PowerBreakdown, PowerModel
from repro.sim.kernel import Kernel
from repro.sim.tracing import TraceLog


class MobilePlatform:
    """A big.LITTLE mobile SoC with DVFS, power gating, and energy metering."""

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        cluster_specs: Optional[list[ClusterSpec]] = None,
        power_model: Optional[PowerModel] = None,
        trace: Optional[TraceLog] = None,
        initial_config: Optional[CpuConfig] = None,
        record_power_intervals: bool = True,
        freq_switch_overhead_us: Optional[int] = None,
        migration_overhead_us: Optional[int] = None,
    ) -> None:
        self.kernel = kernel if kernel is not None else Kernel()
        self.trace = trace if trace is not None else TraceLog()
        self.power_model = power_model if power_model is not None else PowerModel()

        specs = cluster_specs if cluster_specs is not None else [
            big_cluster_spec(),
            little_cluster_spec(),
        ]
        if not specs:
            raise HardwareError("platform needs at least one cluster")
        self._clusters: dict[str, Cluster] = {}
        for spec in specs:
            if spec.name in self._clusters:
                raise HardwareError(f"duplicate cluster name {spec.name!r}")
            self._clusters[spec.name] = Cluster(spec, powered=False)

        if initial_config is None:
            first = specs[0]
            initial_config = CpuConfig(first.name, first.opps.max.freq_mhz)
        if initial_config.cluster not in self._clusters:
            raise HardwareError(f"unknown cluster {initial_config.cluster!r}")

        self._active_name = initial_config.cluster
        active = self._clusters[self._active_name]
        active.power_on()
        active.set_frequency(initial_config.freq_mhz)
        self._active_cluster = active
        #: bumped on every applied configuration; all cluster state
        #: changes flow through __init__/_apply_config, so this (with
        #: the busy count) fully keys the instantaneous power state.
        self._power_state_version = 0

        #: cluster name -> f_max ceiling (MHz) currently imposed by the
        #: environment (thermal throttling); empty = uncapped.  The
        #: DVFS controller clamps every request against this.
        self._freq_caps: dict[str, int] = {}

        self._contexts: list[ExecutionContext] = []
        self._busy: set[ExecutionContext] = set()
        self._power_cache: dict = {}
        self._paused_depth = 0
        self._busy_observers: list = []
        #: opt-in: emit a "task/span" trace record for every completed
        #: task (start, duration, context, label) — the per-thread
        #: timeline view for chrome-trace exports.  Off by default to
        #: keep evaluation-scale runs lean.
        self.record_task_spans = False

        # Utilization accounting (for the interactive governor).
        self._util_last_us = self.kernel.now_us
        self._busy_ctx_integral_us = 0.0  # sum over contexts of busy time
        self._any_busy_integral_us = 0.0  # wall time with >=1 busy context

        self.meter = EnergyMeter(
            start_us=self.kernel.now_us, record_intervals=record_power_intervals
        )
        from repro.hardware.dvfs import (
            FREQ_SWITCH_OVERHEAD_US,
            MIGRATION_OVERHEAD_US,
        )

        self.dvfs = DvfsController(
            self,
            freq_switch_overhead_us=(
                freq_switch_overhead_us
                if freq_switch_overhead_us is not None
                else FREQ_SWITCH_OVERHEAD_US
            ),
            migration_overhead_us=(
                migration_overhead_us
                if migration_overhead_us is not None
                else MIGRATION_OVERHEAD_US
            ),
        )
        self._notify_power_change()

    # ------------------------------------------------------------------
    # Topology and configuration
    # ------------------------------------------------------------------
    @property
    def cluster_names(self) -> list[str]:
        return list(self._clusters)

    def cluster(self, name: str) -> Cluster:
        """Look up a cluster by name."""
        try:
            return self._clusters[name]
        except KeyError:
            raise HardwareError(
                f"unknown cluster {name!r}; have {list(self._clusters)}"
            ) from None

    @property
    def active_cluster_name(self) -> str:
        return self._active_name

    @property
    def active_cluster(self) -> Cluster:
        return self._active_cluster

    @property
    def config(self) -> CpuConfig:
        """The current <cluster, frequency> execution configuration."""
        active = self.active_cluster
        return CpuConfig(active.name, active.freq_mhz)

    def all_configs(self) -> list[CpuConfig]:
        """Every <cluster, frequency> combination the platform offers,
        ordered little-to-big then slow-to-fast (17 on the default
        platform: 6 little + 11 big)."""
        configs = []
        for name in sorted(self._clusters, key=lambda n: self._clusters[n].spec.ipc_factor):
            for freq in self._clusters[name].spec.opps.frequencies:
                configs.append(CpuConfig(name, freq))
        return configs

    def set_config(self, config: CpuConfig) -> bool:
        """Request a configuration change through the DVFS controller."""
        return self.dvfs.request(config)

    # ------------------------------------------------------------------
    # Frequency caps (environment hook: thermal throttling)
    # ------------------------------------------------------------------
    def frequency_cap(self, cluster: str) -> Optional[int]:
        """The f_max ceiling (MHz) in force on ``cluster``, if any."""
        return self._freq_caps.get(cluster)

    @property
    def frequency_caps(self) -> dict[str, int]:
        """A copy of every cluster cap currently in force."""
        return dict(self._freq_caps)

    def set_frequency_cap(self, cluster: str, cap_mhz: Optional[int]) -> None:
        """Impose (or with ``None`` lift) an f_max ceiling on a cluster.

        Every subsequent DVFS request for the cluster clamps to its
        fastest OPP at or below the cap; if the *current* (or in-flight)
        configuration already violates the new cap, a down-switch is
        initiated immediately with the normal switching overhead.
        Lifting a cap changes nothing by itself — the next policy
        request is free to climb again.
        """
        self.cluster(cluster)  # validate the name
        if cap_mhz is None:
            self._freq_caps.pop(cluster, None)
        else:
            if cap_mhz <= 0:
                raise HardwareError(
                    f"frequency cap must be positive, got {cap_mhz}"
                )
            self._freq_caps[cluster] = int(cap_mhz)
        self.dvfs.enforce_caps()

    def _apply_config(self, config: CpuConfig) -> None:
        """Immediately apply a configuration (called by the DVFS
        controller after the switching overhead)."""
        if config.cluster != self._active_name:
            self._active_cluster.power_off()
            self._active_name = config.cluster
            self._active_cluster = self._clusters[config.cluster]
            self._active_cluster.power_on()
        self._active_cluster.set_frequency(config.freq_mhz)
        self._power_state_version += 1
        self.trace.emit(
            self.kernel._now_us,
            "config",
            "applied",
            cluster=config.cluster,
            freq_mhz=config.freq_mhz,
        )
        self._notify_power_change()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def create_context(self, name: str) -> ExecutionContext:
        """Create a new execution context (software thread slot)."""
        if len(self._contexts) >= max(c.spec.core_count for c in self._clusters.values()):
            raise HardwareError("more contexts than cores in a cluster")
        context = ExecutionContext(self, name)
        self._contexts.append(context)
        if self._paused_depth > 0:
            context._paused = True
        return context

    @property
    def contexts(self) -> list[ExecutionContext]:
        return list(self._contexts)

    def duration_us(self, work: WorkUnit) -> float:
        """Time for ``work`` on the active cluster at its current OPP."""
        active = self._active_cluster
        return active.spec.duration_us(work, active.freq_mhz)

    def duration_us_at(self, work: WorkUnit, config: CpuConfig) -> float:
        """Time for ``work`` at an arbitrary configuration (oracle view;
        the GreenWeb runtime does *not* use this — it fits its own model
        from profiled frame latencies)."""
        spec = self.cluster(config.cluster).spec
        return spec.duration_us(work, config.freq_mhz)

    def _pause_all_contexts(self) -> None:
        self._paused_depth += 1
        if self._paused_depth == 1:
            for context in self._contexts:
                context.pause()

    def _resume_all_contexts(self) -> None:
        if self._paused_depth <= 0:
            raise HardwareError("resume without matching pause")
        self._paused_depth -= 1
        if self._paused_depth == 0:
            for context in self._contexts:
                # Resuming a context can trigger observers (idle-exit
                # boost) that start a NEW switch and re-pause the
                # platform; stop resuming immediately in that case —
                # the new switch's apply will resume everyone.
                if self._paused_depth > 0:
                    break
                context.resume()

    # ------------------------------------------------------------------
    # Busy/power accounting
    # ------------------------------------------------------------------
    def add_busy_observer(self, callback) -> None:
        """Register ``callback(busy_count, previous_count)`` to fire on
        every busy-context-count transition (idle-exit detection for
        the interactive governor)."""
        self._busy_observers.append(callback)

    def _context_became_busy(self, context: ExecutionContext) -> None:
        if context not in self._busy:
            previous = len(self._busy)
            self._accumulate_utilization()
            self._busy.add(context)
            self._notify_power_change()
            for observer in self._busy_observers:
                observer(len(self._busy), previous)

    def _context_became_idle(self, context: ExecutionContext) -> None:
        if context in self._busy:
            previous = len(self._busy)
            self._accumulate_utilization()
            self._busy.discard(context)
            self._notify_power_change()
            for observer in self._busy_observers:
                observer(len(self._busy), previous)

    @property
    def busy_context_count(self) -> int:
        return len(self._busy)

    def current_power(self) -> PowerBreakdown:
        """Instantaneous platform power for the current state.

        Memoized: power depends only on (applied configuration, busy
        count) — keyed by the configuration version counter, a state
        space of a few dozen points the busy/idle churn revisits
        constantly — so the hot path is one dict probe on an int pair.
        """
        key = (self._power_state_version, len(self._busy))
        cached = self._power_cache.get(key)
        if cached is None:
            rows = []
            for name, cluster in self._clusters.items():
                busy = len(self._busy) if name == self._active_name else 0
                rows.append((cluster.spec, cluster.opp, busy, cluster.powered))
            cached = self._power_cache[key] = self.power_model.breakdown(rows)
        return cached

    def _notify_power_change(self) -> None:
        self.meter.on_power_change(self.kernel._now_us, self.current_power())

    def _accumulate_utilization(self) -> None:
        now = self.kernel._now_us
        dt = now - self._util_last_us
        if dt > 0:
            self._busy_ctx_integral_us += len(self._busy) * dt
            if self._busy:
                self._any_busy_integral_us += dt
        self._util_last_us = now

    def utilization_snapshot(self) -> tuple[float, float]:
        """Return cumulative integrals ``(busy_context_us, any_busy_us)``
        up to now; governors diff two snapshots to get window load."""
        self._accumulate_utilization()
        return (self._busy_ctx_integral_us, self._any_busy_integral_us)

    # ------------------------------------------------------------------
    # Run helpers
    # ------------------------------------------------------------------
    def run_for(self, duration_us: int) -> None:
        """Advance the simulation and keep the meter integrated."""
        self.kernel.run_for(duration_us)
        self.meter.finalize(self.kernel.now_us)

    def run_until(self, deadline_us: int) -> None:
        self.kernel.run_until(deadline_us)
        self.meter.finalize(self.kernel.now_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MobilePlatform {self.config} busy={len(self._busy)}>"


def odroid_xu_e(
    kernel: Optional[Kernel] = None,
    trace: Optional[TraceLog] = None,
    initial_config: Optional[CpuConfig] = None,
    record_power_intervals: bool = True,
    fast_voltage_regulators: bool = False,
) -> MobilePlatform:
    """Build a platform shaped like the paper's ODroid XU+E testbed
    (Exynos 5410: 4x Cortex-A15 big + 4x Cortex-A7 little).

    Args:
        fast_voltage_regulators: model on-chip integrated voltage
            regulators (IVRs): 5 us frequency switches instead of
            100 us.  The paper's Fig. 12 discussion argues fast VRs
            "increasingly prevalent in server processors" would also
            benefit mobile CPUs; this variant lets the ablation
            benchmarks test that claim.
    """
    return MobilePlatform(
        kernel=kernel,
        cluster_specs=[big_cluster_spec(), little_cluster_spec()],
        trace=trace,
        initial_config=initial_config,
        record_power_intervals=record_power_intervals,
        freq_switch_overhead_us=5 if fast_voltage_regulators else None,
    )
