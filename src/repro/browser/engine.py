"""The browser engine: input dispatch, frame pipeline, animations.

Ties together the pieces of Fig. 7: the browser process (input receive
+ Msg stamping), the renderer main thread (callbacks, style, layout,
paint), the compositor thread (composite + GPU), the VSync-driven
dirty-bit batching of Fig. 8, and the Sec. 6.4 transitive-closure
association of frames with their root input events.

Energy policies (:class:`BrowserPolicy`) observe inputs, scheduled
frames, displayed frames, and input completion — the exact hook points
the GreenWeb runtime (paper Sec. 6) needs, also sufficient for the
baseline governors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.browser.frame_tracker import FrameRecord, FrameTracker, InputRecord
from repro.browser.messages import FrameContributor, InputMsg, UidAllocator
from repro.browser.page import Page
from repro.browser.stages import MAIN_THREAD_RENDER_STAGES, PipelineStage
from repro.browser.vsync import VSYNC_PERIOD_US, VsyncSource
from repro.hardware.core import WorkUnit
from repro.hardware.execution import _ZERO_WORK
from repro.hardware.platform import MobilePlatform
from repro.sim.clock import ms_to_us
from repro.web.css.transitions import parse_animation_value, transition_for
from repro.web.dom import Element
from repro.web.events import Event, EventType, coerce_event_type, dispatch_order
from repro.web.script import Callback, ScriptContext, ScriptEffects

#: One-way browser-process -> renderer IPC latency.
IPC_DELAY_US = 100


class BrowserPolicy:
    """Base class for energy policies attached to a browser.

    All hooks are no-ops; governors override what they need.  The
    browser calls :meth:`bind` once at attach time.
    """

    def bind(self, browser: "Browser") -> None:
        """Called when the policy is attached; default stores a ref."""
        self.browser = browser

    def on_input(self, msg: InputMsg, event: Event) -> None:
        """A user input just arrived at the browser process."""

    def on_frame_scheduled(self, vsync_us: int, msgs: list[InputMsg]) -> None:
        """A VSync tick is about to produce a frame for these inputs."""

    def on_frame_displayed(self, frame: FrameRecord) -> None:
        """A frame reached the display; latencies are filled in."""

    def on_input_complete(self, record: InputRecord) -> None:
        """All frames associated with an input have been produced."""


class _ActiveAnimation:
    """A running animation producing one frame per VSync until end."""

    __slots__ = ("kind", "msg", "element", "name", "end_us",
                 "complexity", "script_cycles", "end_event")

    def __init__(
        self,
        kind: str,
        msg: InputMsg,
        element: Optional[Element],
        name: str,
        end_us: int,
        complexity: float,
        script_cycles: float = 0.0,
        end_event: Optional[EventType] = None,
    ) -> None:
        self.kind = kind  # "transition" | "animation" | "animate"
        self.msg = msg
        self.element = element
        self.name = name
        self.end_us = end_us
        self.complexity = complexity
        self.script_cycles = script_cycles
        self.end_event = end_event


@dataclass
class BrowserStats:
    """Run counters exposed for tests and reports."""

    inputs: int = 0
    frames: int = 0
    skipped_vsyncs: int = 0
    callbacks_run: int = 0
    animation_ticks: int = 0
    script_errors: int = 0


class Browser:
    """A running browser instance hosting one page."""

    def __init__(
        self,
        platform: MobilePlatform,
        page: Page,
        policy: Optional[BrowserPolicy] = None,
        vsync_period_us: int = VSYNC_PERIOD_US,
    ) -> None:
        self.platform = platform
        self.page = page
        self.kernel = platform.kernel
        self.trace = platform.trace
        self.main = platform.create_context("renderer_main")
        self.compositor = platform.create_context("compositor")
        self.tracker = FrameTracker(on_input_complete=self._input_completed)
        self.stats = BrowserStats()
        self._uids = UidAllocator()

        # Dirty state (Fig. 8 Part II): uid -> contributor, plus the
        # pending frame's complexity (max over contributions).
        self._dirty: dict[int, FrameContributor] = {}
        self._dirty_complexity = 0.0
        self._raf_queue: list[tuple[Callback, InputMsg]] = []
        self._animations: list[_ActiveAnimation] = []
        self._intervals: dict[str, dict] = {}
        self._frame_in_flight = False
        self._frame_seq = 0
        self._current_frame_vsync = 0

        self.policy = policy if policy is not None else BrowserPolicy()
        self.policy.bind(self)

        self.vsync = VsyncSource(
            self.kernel, self._on_vsync, vsync_period_us, demand=self._vsync_demand
        )
        self.vsync.start()

    # ------------------------------------------------------------------
    # Input (browser process)
    # ------------------------------------------------------------------
    def dispatch_event(
        self,
        event_type: "EventType | str",
        target: Element,
        detail: Optional[dict] = None,
    ) -> InputMsg:
        """A user input arrives at the browser process *now*.

        Fig. 8 Part I: the input is stamped with a fresh UID and a
        start timestamp, then shipped to the renderer over IPC.

        Returns the stamped :class:`InputMsg` (its record accumulates
        frame latencies as the simulation progresses).
        """
        event_type = coerce_event_type(event_type)
        now = self.kernel.now_us
        msg = InputMsg(
            uid=self._uids.next_uid(),
            start_us=now,
            event_type=event_type,
            target_key=_target_key(target),
        )
        event = Event(event_type, target, input_id=msg.uid, time_us=now)
        if detail:
            event.detail.update(detail)
        self.tracker.input_received(msg)
        self.stats.inputs += 1
        self.trace.emit(now, "input", event_type.value, uid=msg.uid, target=msg.target_key)
        self.policy.on_input(msg, event)
        self.tracker.retain(msg.uid)  # released when renderer dispatch ends
        self.kernel.schedule_in(
            IPC_DELAY_US, lambda: self._renderer_dispatch(msg, event), label="ipc"
        )
        return msg

    def _renderer_dispatch(self, msg: InputMsg, event: Event) -> None:
        # Continuous-stream inputs (finger moves, scrolls) are coalesced
        # to the display refresh, as real browsers do; their frames are
        # judged on production latency (clock stamped at the producing
        # VSync -> clock_start None).  Discrete inputs are judged on
        # input-to-display latency.
        continuous_input = event.type in (EventType.SCROLL, EventType.TOUCHMOVE)
        clock_start = None if continuous_input else msg.start_us
        pairs = dispatch_order(event)
        default_prevented = False
        for _element, callback in pairs:
            effects = self._run_callback(callback, msg, event, clock_start_us=clock_start)
            default_prevented = default_prevented or effects.default_prevented
            if effects.propagation_stopped:
                # stopPropagation(): ancestors' listeners do not run.
                break
        if (
            continuous_input
            and self.page.native_scroll_complexity > 0
            and not default_prevented
        ):
            # Browser-native (compositor) scrolling produces a frame
            # even without application listeners, unless a listener
            # called preventDefault().
            self._mark_dirty(msg, self.page.native_scroll_complexity, None)
        self.tracker.release(msg.uid, self.kernel.now_us)

    def _dispatch_internal(
        self, event_type: EventType, target: Element, msg: InputMsg
    ) -> None:
        """Dispatch a browser-generated event (transitionend etc.).

        No new UID: the callbacks remain part of the root input's
        transitive closure (Sec. 6.4)."""
        event = Event(event_type, target, input_id=msg.uid, time_us=self.kernel.now_us)
        for _element, callback in dispatch_order(event):
            self._run_callback(callback, msg, event, clock_start_us=self.kernel.now_us)

    # ------------------------------------------------------------------
    # Callback execution (renderer main thread)
    # ------------------------------------------------------------------
    def _run_callback(
        self,
        callback: Callback,
        msg: InputMsg,
        event: Optional[Event],
        clock_start_us: Optional[int],
    ) -> ScriptEffects:
        ctx = ScriptContext(
            self.page.document,
            event=event,
            state=self.page.state,
            rng=self.page.rng,
            now_ms=self.kernel.now_ms,
        )
        effects = callback.invoke(ctx)
        self.stats.callbacks_run += 1
        if effects.error is not None:
            # The page's script error: logged to the console track,
            # never fatal to the engine (browsers keep running).
            self.stats.script_errors += 1
            self.trace.emit(
                self.kernel.now_us,
                "console",
                "error",
                callback=effects.error.callback_name,
                exception=effects.error.exception_type,
                message=effects.error.message[:200],
            )
        self.tracker.retain(msg.uid)
        self.main.submit(
            effects.work,
            on_complete=lambda task: self._callback_finished(effects, msg, clock_start_us),
            label=f"callback:{callback.name}",
        )
        return effects

    def _callback_finished(
        self, effects: ScriptEffects, msg: InputMsg, clock_start_us: Optional[int]
    ) -> None:
        # Callback-completion latency is traced so the Sec. 6.3 ablation
        # can contrast it with true frame latency (prior work measured
        # only the former; the paper argues it is insufficient).
        if self.trace.wants("callback"):
            self.trace.emit(
                self.kernel.now_us,
                "callback",
                "finished",
                uid=msg.uid,
                latency_us=self.kernel.now_us - msg.start_us,
            )
        self._apply_effects(effects, msg, clock_start_us)
        self.tracker.release(msg.uid, self.kernel.now_us)

    def _apply_effects(
        self, effects: ScriptEffects, msg: InputMsg, clock_start_us: Optional[int]
    ) -> None:
        now = self.kernel.now_us
        for write in effects.style_writes:
            write.element.style[write.property] = write.value
            if write.property == "animation":
                self._start_css_animation(write.element, write.value, msg, write.complexity)
                continue
            spec = transition_for(self.page.stylesheet, write.element, write.property)
            if spec is not None:
                end = now + ms_to_us(spec.duration_ms + spec.delay_ms)
                self._start_animation(
                    _ActiveAnimation(
                        kind="transition",
                        msg=msg,
                        element=write.element,
                        name=write.property,
                        end_us=end,
                        complexity=write.complexity,
                        end_event=EventType.TRANSITIONEND,
                    )
                )
        for mutation in effects.class_mutations:
            if mutation.add:
                mutation.element.classes.add(mutation.class_name)
            else:
                mutation.element.classes.discard(mutation.class_name)
        if effects.needs_frame:
            self._mark_dirty(msg, effects.frame_complexity, clock_start_us)
        for raf in effects.raf_requests:
            self.tracker.retain(msg.uid)
            self._raf_queue.append((raf.callback, msg))
            self.vsync.request()
        for timeout in effects.timeouts:
            self.tracker.retain(msg.uid)
            self.kernel.schedule_in(
                ms_to_us(timeout.delay_ms),
                lambda cb=timeout.callback: self._fire_timeout(cb, msg),
                label="timeout",
            )
        for tag in effects.cleared_intervals:
            self._clear_interval(tag)
        for interval in effects.intervals:
            self._start_interval(interval, msg)
        for call in effects.animate_calls:
            self._start_animation(
                _ActiveAnimation(
                    kind="animate",
                    msg=msg,
                    element=call.element,
                    name=call.property,
                    end_us=now + ms_to_us(call.duration_ms),
                    complexity=call.frame_complexity,
                    script_cycles=call.frame_script_cycles,
                )
            )

    def _fire_timeout(self, callback: Callback, msg: InputMsg) -> None:
        self._run_callback(callback, msg, event=None, clock_start_us=self.kernel.now_us)
        self.tracker.release(msg.uid, self.kernel.now_us)

    # ------------------------------------------------------------------
    # Intervals (setInterval / clearInterval)
    # ------------------------------------------------------------------
    def _start_interval(self, interval, msg: InputMsg) -> None:
        if interval.tag in self._intervals:
            self._clear_interval(interval.tag)
        self.tracker.retain(msg.uid)
        record = {"remaining": interval.max_fires, "event": None, "msg": msg,
                  "request": interval}
        self._intervals[interval.tag] = record
        self._arm_interval(interval.tag)

    def _arm_interval(self, tag: str) -> None:
        record = self._intervals.get(tag)
        if record is None:
            return
        period_us = ms_to_us(record["request"].period_ms)
        record["event"] = self.kernel.schedule_in(
            period_us, lambda: self._fire_interval(tag), label=f"interval:{tag}"
        )

    def _fire_interval(self, tag: str) -> None:
        record = self._intervals.get(tag)
        if record is None:
            return
        msg = record["msg"]
        self._run_callback(
            record["request"].callback, msg, event=None,
            clock_start_us=self.kernel.now_us,
        )
        record["remaining"] -= 1
        if record["remaining"] <= 0:
            self._clear_interval(tag)
        else:
            self._arm_interval(tag)

    def _clear_interval(self, tag: str) -> None:
        record = self._intervals.pop(tag, None)
        if record is None:
            return
        if record["event"] is not None:
            record["event"].cancel()
        self.tracker.release(record["msg"].uid, self.kernel.now_us)

    def _start_css_animation(
        self, element: Element, value: str, msg: InputMsg, complexity: float
    ) -> None:
        from repro.web.css.tokenizer import CssTokenType, tokenize

        tokens = tuple(t for t in tokenize(value) if t.type is not CssTokenType.EOF)
        for spec in parse_animation_value(tokens):
            total_ms = spec.total_ms
            if total_ms == float("inf"):
                # Cap unbounded animations at 10 s of simulated time so
                # runs terminate; real pages cancel them via style.
                total_ms = 10_000.0
            self._start_animation(
                _ActiveAnimation(
                    kind="animation",
                    msg=msg,
                    element=element,
                    name=spec.name,
                    end_us=self.kernel.now_us + ms_to_us(total_ms),
                    complexity=complexity,
                    end_event=EventType.ANIMATIONEND,
                )
            )

    def _start_animation(self, animation: _ActiveAnimation) -> None:
        self.tracker.retain(animation.msg.uid)
        self._animations.append(animation)
        self.vsync.request()
        if self.trace.wants("animation"):
            self.trace.emit(
                self.kernel.now_us,
                "animation",
                "start",
                kind=animation.kind,
                uid=animation.msg.uid,
                target=animation.name,
                end_us=animation.end_us,
            )

    # ------------------------------------------------------------------
    # Dirty state (Fig. 8 Part II)
    # ------------------------------------------------------------------
    def _mark_dirty(
        self, msg: InputMsg, complexity: float, clock_start_us: Optional[int]
    ) -> None:
        existing = self._dirty.get(msg.uid)
        if existing is None:
            self._dirty[msg.uid] = FrameContributor(msg, clock_start_us)
            self.tracker.retain(msg.uid)  # released at frame display
        elif clock_start_us is not None and (
            existing.clock_start_us is None or clock_start_us < existing.clock_start_us
        ):
            # A concrete (earlier) latency clock beats the coalesced
            # stamp-at-VSync sentinel, and earlier beats later.
            self._dirty[msg.uid] = FrameContributor(msg, clock_start_us)
        self._dirty_complexity = max(self._dirty_complexity, complexity)
        self.vsync.request()

    # ------------------------------------------------------------------
    # VSync / frame production
    # ------------------------------------------------------------------
    def _vsync_demand(self) -> bool:
        """Whether the next VSync tick has anything to do.  While this
        is false, ticks are pure overhead and the demand-driven source
        stops delivering them (every site that creates demand also
        calls ``vsync.request()``)."""
        return bool(
            self._frame_in_flight
            or self._dirty
            or self._raf_queue
            or self._animations
        )

    def _on_vsync(self, now: int) -> None:
        if self._frame_in_flight:
            # Previous frame still in the pipeline; this refresh is
            # skipped and the dirty state rides to the next tick.
            self.stats.skipped_vsyncs += 1
            return

        self._tick_animations(now)
        raf_tasks = self._raf_queue
        self._raf_queue = []

        if not raf_tasks and not self._dirty:
            return  # idle refresh

        self._frame_in_flight = True
        self._current_frame_vsync = now

        frame_msgs = [c.msg for c in self._dirty.values()]
        frame_msgs.extend(msg for _cb, msg in raf_tasks)
        self.policy.on_frame_scheduled(now, frame_msgs)

        for callback, msg in raf_tasks:
            self._run_callback(callback, msg, event=None, clock_start_us=now)
            self.tracker.release(msg.uid, now)  # registration retain -> task retain

        # Barrier: render stages begin only after every rAF callback
        # (and its effects) has executed on the main thread.
        self.main.submit(_ZERO_WORK, on_complete=self._begin_render, label="begin-frame")

    def _tick_animations(self, now: int) -> None:
        survivors: list[_ActiveAnimation] = []
        for animation in self._animations:
            complexity = animation.complexity
            if callable(complexity):
                complexity = float(complexity())
            self._mark_dirty(animation.msg, complexity, clock_start_us=now)
            self.stats.animation_ticks += 1
            if animation.script_cycles > 0:
                # The library's per-frame tick (jQuery animate's timer
                # function) burns main-thread CPU.
                self.tracker.retain(animation.msg.uid)
                self.main.submit(
                    WorkUnit(animation.script_cycles),
                    on_complete=lambda task, m=animation.msg: self.tracker.release(
                        m.uid, self.kernel.now_us
                    ),
                    label=f"animate-tick:{animation.name}",
                )
            if now >= animation.end_us:
                self._finish_animation(animation)
            else:
                survivors.append(animation)
        self._animations = survivors

    def _finish_animation(self, animation: _ActiveAnimation) -> None:
        if self.trace.wants("animation"):
            self.trace.emit(
                self.kernel.now_us,
                "animation",
                "end",
                kind=animation.kind,
                uid=animation.msg.uid,
                target=animation.name,
            )
        if animation.end_event is not None and animation.element is not None:
            self._dispatch_internal(animation.end_event, animation.element, animation.msg)
        self.tracker.release(animation.msg.uid, self.kernel.now_us)

    def _begin_render(self, _task) -> None:
        if not self._dirty:
            # rAF handlers ran but nothing was dirtied: no frame.
            self._frame_in_flight = False
            return
        contributors = [
            c if c.clock_start_us is not None
            else FrameContributor(c.msg, self._current_frame_vsync)
            for c in self._dirty.values()
        ]
        complexity = self._dirty_complexity
        self._dirty = {}
        self._dirty_complexity = 0.0

        self._frame_seq += 1
        frame = FrameRecord(
            seq=self._frame_seq,
            vsync_us=self._current_frame_vsync,
            complexity=complexity,
            contributors=contributors,
        )
        self._submit_render_stage(frame, stage_index=0)

    def _submit_render_stage(self, frame: FrameRecord, stage_index: int) -> None:
        if stage_index < len(MAIN_THREAD_RENDER_STAGES):
            stage = MAIN_THREAD_RENDER_STAGES[stage_index]
            work = self.page.render_cost.work_for(stage, frame.complexity)
            self.main.submit(
                work,
                on_complete=lambda task: self._submit_render_stage(frame, stage_index + 1),
                label=str(stage),
            )
            return
        # Main-thread stages done; hand off to the compositor thread.
        work = self.page.render_cost.work_for(PipelineStage.COMPOSITE, frame.complexity)
        self.compositor.submit(
            work,
            on_complete=lambda task: self._display_frame(frame),
            label="composite",
        )

    def _display_frame(self, frame: FrameRecord) -> None:
        now = self.kernel.now_us
        self.tracker.frame_displayed(frame, now)
        self.stats.frames += 1
        self._frame_in_flight = False
        if self.trace.wants("frame"):
            self.trace.emit(
                now,
                "frame",
                "displayed",
                seq=frame.seq,
                uids=tuple(frame.uids),
                complexity=frame.complexity,
                max_latency_us=frame.max_latency_us,
            )
        self.policy.on_frame_displayed(frame)

    def _input_completed(self, record: InputRecord) -> None:
        self.trace.emit(
            self.kernel.now_us,
            "input",
            "complete",
            uid=record.uid,
            frames=record.frame_count,
        )
        self.policy.on_input_complete(record)

    # ------------------------------------------------------------------
    # Run helpers
    # ------------------------------------------------------------------
    def run_for(self, duration_us: int) -> None:
        """Advance the simulation (keeps the energy meter integrated)."""
        self.platform.run_for(duration_us)

    def run_until_quiescent(self, max_extra_us: int = 60_000_000) -> None:
        """Run until no input has outstanding continuations (bounded by
        ``max_extra_us`` of additional simulated time)."""
        deadline = self.kernel.now_us + max_extra_us
        step = self.vsync.period_us
        while self.kernel.now_us < deadline:
            if all(r.completed for r in self.tracker.records) and not self._frame_in_flight:
                break
            self.platform.run_for(step)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Browser page={self.page.name!r} frames={self.stats.frames}>"


def target_key(target: Element) -> str:
    """Stable identity of an event target: ``#id`` when the element has
    one, else ``tag.class1.class2`` (classes sorted), else the bare tag.
    Policies key their per-(element, event) adaptive state on this, and
    post-hoc policies recompute it from the static page to line trace
    events up with runtime keys."""
    if target.id:
        return f"#{target.id}"
    if target.classes:
        return f"{target.tag}." + ".".join(sorted(target.classes))
    return target.tag


_target_key = target_key
