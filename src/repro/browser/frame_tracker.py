"""Frame latency tracking and event-frame association.

Implements the paper's Fig. 8 algorithm and Sec. 6.4 association:

* every input gets an :class:`InputRecord` keyed by its unique id;
* each displayed frame carries the ``Msg`` metadata of every input
  that contributed to it (dirty-bit batching can merge several inputs
  into one frame), and per-input latency is computed at display time
  (Part III);
* the *transitive closure* of an input — callbacks, timeouts, rAF
  handlers, animations it spawned — is tracked by reference counting:
  the browser retains the input's record for every outstanding
  continuation and releases on completion.  When the count drops to
  zero the input's associated frames are complete and the policy is
  told (the moment a GreenWeb runtime conserves energy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import BrowserError
from repro.browser.messages import FrameContributor, InputMsg


@dataclass
class InputRecord:
    """Lifetime bookkeeping for one user input."""

    msg: InputMsg
    #: Latency (us) of every frame attributed to this input, display order.
    frame_latencies_us: list[int] = field(default_factory=list)
    #: Outstanding continuations (tasks, timers, animations, dirty bits).
    outstanding: int = 0
    completed: bool = False
    complete_us: Optional[int] = None

    @property
    def uid(self) -> int:
        return self.msg.uid

    @property
    def frame_count(self) -> int:
        return len(self.frame_latencies_us)

    @property
    def first_frame_latency_us(self) -> Optional[int]:
        return self.frame_latencies_us[0] if self.frame_latencies_us else None


@dataclass
class FrameRecord:
    """One produced frame and its input attribution."""

    seq: int
    vsync_us: int
    complexity: float
    contributors: list[FrameContributor]
    display_us: Optional[int] = None
    #: Per-input latency, filled at display time (Fig. 8 Part III).
    latencies_us: dict[int, int] = field(default_factory=dict)

    @property
    def uids(self) -> list[int]:
        return [c.msg.uid for c in self.contributors]

    @property
    def displayed(self) -> bool:
        return self.display_us is not None

    @property
    def max_latency_us(self) -> int:
        """The worst per-input latency of this frame (0 if none)."""
        return max(self.latencies_us.values(), default=0)


class FrameTracker:
    """Owns all input records; computes latencies and completion."""

    def __init__(
        self, on_input_complete: Optional[Callable[[InputRecord], None]] = None
    ) -> None:
        self._records: dict[int, InputRecord] = {}
        self._on_input_complete = on_input_complete
        self.frames_displayed = 0

    # ------------------------------------------------------------------
    # Input lifecycle
    # ------------------------------------------------------------------
    def input_received(self, msg: InputMsg) -> InputRecord:
        """Register a new input (Fig. 8 Part I has just stamped it)."""
        if msg.uid in self._records:
            raise BrowserError(f"duplicate input uid {msg.uid}")
        record = InputRecord(msg=msg)
        self._records[msg.uid] = record
        return record

    def record(self, uid: int) -> InputRecord:
        try:
            return self._records[uid]
        except KeyError:
            raise BrowserError(f"unknown input uid {uid}") from None

    def retain(self, uid: int) -> None:
        """One more outstanding continuation for this input."""
        record = self.record(uid)
        if record.completed:
            # A continuation appeared after completion (e.g. a very late
            # timer).  Reopen the record; completion will fire again.
            record.completed = False
            record.complete_us = None
        record.outstanding += 1

    def release(self, uid: int, now_us: int = 0) -> None:
        """One continuation finished; completes the input at zero."""
        record = self.record(uid)
        if record.outstanding <= 0:
            raise BrowserError(f"release without retain for input {uid}")
        record.outstanding -= 1
        if record.outstanding == 0 and not record.completed:
            record.completed = True
            record.complete_us = now_us
            if self._on_input_complete is not None:
                self._on_input_complete(record)

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------
    def frame_displayed(self, frame: FrameRecord, display_us: int) -> None:
        """Fig. 8 Part III: compute per-input latency for every Msg that
        rode along with the frame, then release the inputs' dirty
        retains."""
        frame.display_us = display_us
        self.frames_displayed += 1
        for contributor in frame.contributors:
            latency = display_us - contributor.clock_start_us
            frame.latencies_us[contributor.msg.uid] = latency
            self.record(contributor.msg.uid).frame_latencies_us.append(latency)
        # Release after all latencies are recorded so a completion
        # callback sees the full frame list.
        for contributor in frame.contributors:
            self.release(contributor.msg.uid, display_us)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[InputRecord]:
        """All input records, in arrival order."""
        return list(self._records.values())

    def all_frame_latencies_us(self) -> list[int]:
        """Every (input, frame) latency observation in the run."""
        out: list[int] = []
        for record in self._records.values():
            out.extend(record.frame_latencies_us)
        return out
