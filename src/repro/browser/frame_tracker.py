"""Frame latency tracking and event-frame association.

Implements the paper's Fig. 8 algorithm and Sec. 6.4 association:

* every input gets an :class:`InputRecord` keyed by its unique id;
* each displayed frame carries the ``Msg`` metadata of every input
  that contributed to it (dirty-bit batching can merge several inputs
  into one frame), and per-input latency is computed at display time
  (Part III);
* the *transitive closure* of an input — callbacks, timeouts, rAF
  handlers, animations it spawned — is tracked by reference counting:
  the browser retains the input's record for every outstanding
  continuation and releases on completion.  When the count drops to
  zero the input's associated frames are complete and the policy is
  told (the moment a GreenWeb runtime conserves energy).

The per-frame history is retained struct-of-arrays style
(:class:`FrameColumns`): displayed frames append one value to each
parallel column instead of keeping the transient :class:`FrameRecord`
objects alive.  At batch scale (many sessions per process) this is what
keeps the frame pipeline's retained footprint a handful of flat lists
per session rather than thousands of per-frame objects.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import BrowserError
from repro.browser.messages import FrameContributor, InputMsg


class InputRecord:
    """Lifetime bookkeeping for one user input.

    A ``__slots__`` class (not a dataclass): records sit on the
    per-input hot path and the generated dataclass ``__init__`` plus
    ``__dict__`` storage measurably cost at batch scale.
    """

    __slots__ = ("msg", "frame_latencies_us", "outstanding", "completed", "complete_us")

    def __init__(
        self,
        msg: InputMsg,
        frame_latencies_us: Optional[list[int]] = None,
        outstanding: int = 0,
        completed: bool = False,
        complete_us: Optional[int] = None,
    ) -> None:
        self.msg = msg
        #: Latency (us) of every frame attributed to this input, display order.
        self.frame_latencies_us: list[int] = (
            frame_latencies_us if frame_latencies_us is not None else []
        )
        #: Outstanding continuations (tasks, timers, animations, dirty bits).
        self.outstanding = outstanding
        self.completed = completed
        self.complete_us = complete_us

    @property
    def uid(self) -> int:
        return self.msg.uid

    @property
    def frame_count(self) -> int:
        return len(self.frame_latencies_us)

    @property
    def first_frame_latency_us(self) -> Optional[int]:
        return self.frame_latencies_us[0] if self.frame_latencies_us else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "completed" if self.completed else f"outstanding={self.outstanding}"
        return f"<InputRecord uid={self.msg.uid} frames={self.frame_count} {state}>"


class FrameRecord:
    """One in-flight frame and its input attribution.

    Transient: the browser holds at most one per pipeline stage; once
    displayed, the frame's durable history lives in the tracker's
    :class:`FrameColumns` and the record itself is dropped.
    """

    __slots__ = ("seq", "vsync_us", "complexity", "contributors", "display_us", "latencies_us")

    def __init__(
        self,
        seq: int,
        vsync_us: int,
        complexity: float,
        contributors: list[FrameContributor],
        display_us: Optional[int] = None,
        latencies_us: Optional[dict[int, int]] = None,
    ) -> None:
        self.seq = seq
        self.vsync_us = vsync_us
        self.complexity = complexity
        self.contributors = contributors
        self.display_us = display_us
        #: Per-input latency, filled at display time (Fig. 8 Part III).
        self.latencies_us: dict[int, int] = (
            latencies_us if latencies_us is not None else {}
        )

    @property
    def uids(self) -> list[int]:
        return [c.msg.uid for c in self.contributors]

    @property
    def displayed(self) -> bool:
        return self.display_us is not None

    @property
    def max_latency_us(self) -> int:
        """The worst per-input latency of this frame (0 if none)."""
        return max(self.latencies_us.values(), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"displayed@{self.display_us}us" if self.displayed else "in-flight"
        return f"<FrameRecord seq={self.seq} vsync={self.vsync_us}us {state}>"


class FrameColumns:
    """Struct-of-arrays history of every displayed frame.

    Parallel columns indexed by display order; ``column[i]`` describes
    the i-th displayed frame.  Appending five scalars to flat lists is
    both cheaper and denser than retaining a :class:`FrameRecord` (plus
    its contributor list and latency dict) per frame, which matters
    when a batch process carries many sessions' histories at once.
    """

    __slots__ = ("seq", "vsync_us", "display_us", "contributor_count", "max_latency_us")

    def __init__(self) -> None:
        self.seq: list[int] = []
        self.vsync_us: list[int] = []
        self.display_us: list[int] = []
        self.contributor_count: list[int] = []
        self.max_latency_us: list[int] = []

    def __len__(self) -> int:
        return len(self.seq)

    def row(self, i: int) -> dict:
        """The i-th displayed frame as a dict (convenience for tests
        and exports; the hot path never materializes rows)."""
        return {
            "seq": self.seq[i],
            "vsync_us": self.vsync_us[i],
            "display_us": self.display_us[i],
            "contributor_count": self.contributor_count[i],
            "max_latency_us": self.max_latency_us[i],
        }


class FrameTracker:
    """Owns all input records; computes latencies and completion."""

    def __init__(
        self, on_input_complete: Optional[Callable[[InputRecord], None]] = None
    ) -> None:
        self._records: dict[int, InputRecord] = {}
        self._on_input_complete = on_input_complete
        self.frames_displayed = 0
        #: Struct-of-arrays history of displayed frames (display order).
        self.frame_columns = FrameColumns()

    # ------------------------------------------------------------------
    # Input lifecycle
    # ------------------------------------------------------------------
    def input_received(self, msg: InputMsg) -> InputRecord:
        """Register a new input (Fig. 8 Part I has just stamped it)."""
        if msg.uid in self._records:
            raise BrowserError(f"duplicate input uid {msg.uid}")
        record = InputRecord(msg=msg)
        self._records[msg.uid] = record
        return record

    def record(self, uid: int) -> InputRecord:
        try:
            return self._records[uid]
        except KeyError:
            raise BrowserError(f"unknown input uid {uid}") from None

    def retain(self, uid: int) -> None:
        """One more outstanding continuation for this input."""
        record = self.record(uid)
        if record.completed:
            # A continuation appeared after completion (e.g. a very late
            # timer).  Reopen the record; completion will fire again.
            record.completed = False
            record.complete_us = None
        record.outstanding += 1

    def release(self, uid: int, now_us: int = 0) -> None:
        """One continuation finished; completes the input at zero."""
        record = self.record(uid)
        if record.outstanding <= 0:
            raise BrowserError(f"release without retain for input {uid}")
        record.outstanding -= 1
        if record.outstanding == 0 and not record.completed:
            record.completed = True
            record.complete_us = now_us
            if self._on_input_complete is not None:
                self._on_input_complete(record)

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------
    def frame_displayed(self, frame: FrameRecord, display_us: int) -> None:
        """Fig. 8 Part III: compute per-input latency for every Msg that
        rode along with the frame, then release the inputs' dirty
        retains.  The frame's summary is appended to the struct-of-arrays
        :attr:`frame_columns` history."""
        frame.display_us = display_us
        self.frames_displayed += 1
        records = self._records
        latencies = frame.latencies_us
        max_latency = 0
        for contributor in frame.contributors:
            latency = display_us - contributor.clock_start_us
            uid = contributor.msg.uid
            latencies[uid] = latency
            records[uid].frame_latencies_us.append(latency)
            if latency > max_latency:
                max_latency = latency
        columns = self.frame_columns
        columns.seq.append(frame.seq)
        columns.vsync_us.append(frame.vsync_us)
        columns.display_us.append(display_us)
        columns.contributor_count.append(len(frame.contributors))
        columns.max_latency_us.append(max_latency)
        # Release after all latencies are recorded so a completion
        # callback sees the full frame list.
        for contributor in frame.contributors:
            self.release(contributor.msg.uid, display_us)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[InputRecord]:
        """All input records, in arrival order."""
        return list(self._records.values())

    def all_frame_latencies_us(self) -> list[int]:
        """Every (input, frame) latency observation in the run."""
        out: list[int] = []
        for record in self._records.values():
            out.extend(record.frame_latencies_us)
        return out
