"""VSync signal source.

Mobile displays refresh at 60 Hz; browsers only produce frames on
VSync to avoid tearing (paper Sec. 6.3).  The source fires a callback
every period; the browser decides at each tick whether a frame is
needed (dirty bit set, rAF handlers pending, animations active).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import BrowserError
from repro.sim.kernel import Kernel

#: 60 Hz refresh in integer microseconds (the 1/3 us truncation per
#: tick is irrelevant at the millisecond QoS granularity).
VSYNC_PERIOD_US: int = 16_667


class VsyncSource:
    """Fires ``on_tick`` every ``period_us`` while started."""

    def __init__(
        self,
        kernel: Kernel,
        on_tick: Callable[[int], None],
        period_us: int = VSYNC_PERIOD_US,
    ) -> None:
        if period_us <= 0:
            raise BrowserError(f"non-positive VSync period: {period_us}")
        self._kernel = kernel
        self._on_tick = on_tick
        self.period_us = period_us
        self._running = False
        self._tick_count = 0
        self._event = None

    @property
    def running(self) -> bool:
        return self._running

    @property
    def tick_count(self) -> int:
        """Number of VSync ticks delivered so far."""
        return self._tick_count

    def start(self) -> None:
        """Begin ticking (first tick one period from now)."""
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Stop ticking (pending tick is cancelled)."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _arm(self) -> None:
        self._event = self._kernel.schedule_in(self.period_us, self._fire, label="vsync")

    def _fire(self) -> None:
        if not self._running:
            return
        self._tick_count += 1
        # Re-arm before the handler so a long handler cannot drift the
        # phase: ticks stay on the fixed 60 Hz grid.
        self._arm()
        self._on_tick(self._kernel.now_us)
