"""VSync signal source.

Mobile displays refresh at 60 Hz; browsers only produce frames on
VSync to avoid tearing (paper Sec. 6.3).  The source fires a callback
every period; the browser decides at each tick whether a frame is
needed (dirty bit set, rAF handlers pending, animations active).

Demand-driven mode
------------------
A long interaction session is mostly idle: thousands of ticks find no
dirty state, no rAF handlers, and no animations, yet each one costs a
kernel heap push/pop.  Passing a ``demand`` predicate makes the source
stop re-arming after an idle tick and resume — via :meth:`request` —
when the browser next creates work for it.  Resumed ticks land on the
same fixed phase grid (``start_time + k * period``) the continuous
source would have used, so frame timing is unchanged; only the no-op
ticks in between disappear.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import BrowserError
from repro.sim.kernel import Kernel

#: 60 Hz refresh in integer microseconds (the 1/3 us truncation per
#: tick is irrelevant at the millisecond QoS granularity).
VSYNC_PERIOD_US: int = 16_667


class VsyncSource:
    """Fires ``on_tick`` every ``period_us`` while started.

    Args:
        kernel: the simulation kernel.
        on_tick: tick callback, receives the current time in us.
        period_us: refresh period (default 60 Hz).
        demand: optional predicate; when given, an idle tick (one after
            which ``demand()`` is false) does not re-arm, and the
            browser must call :meth:`request` when new work appears.
            ``None`` keeps the classic always-ticking behaviour.
    """

    def __init__(
        self,
        kernel: Kernel,
        on_tick: Callable[[int], None],
        period_us: int = VSYNC_PERIOD_US,
        demand: Optional[Callable[[], bool]] = None,
    ) -> None:
        if period_us <= 0:
            raise BrowserError(f"non-positive VSync period: {period_us}")
        self._kernel = kernel
        self._on_tick = on_tick
        self.period_us = period_us
        self._demand = demand
        self._running = False
        self._tick_count = 0
        self._event = None
        self._origin_us = 0

    @property
    def running(self) -> bool:
        return self._running

    @property
    def armed(self) -> bool:
        """Whether a tick is currently scheduled."""
        return self._event is not None and self._event.pending

    @property
    def tick_count(self) -> int:
        """Number of VSync ticks delivered so far."""
        return self._tick_count

    def start(self) -> None:
        """Begin ticking (first tick one period from now)."""
        if self._running:
            return
        self._running = True
        self._origin_us = self._kernel.now_us
        self._arm_at(self._origin_us + self.period_us)

    def stop(self) -> None:
        """Stop ticking (pending tick is cancelled)."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def request(self) -> None:
        """Ensure the next grid-aligned tick is armed (demand mode).

        Called by the browser when it creates work a tick must service
        (dirty state, a rAF request, an animation).  No-op while a tick
        is already pending — in particular always in continuous mode.
        """
        if not self._running or self.armed:
            return
        elapsed = self._kernel.now_us - self._origin_us
        self._arm_at(
            self._origin_us + (elapsed // self.period_us + 1) * self.period_us
        )

    def _arm_at(self, time_us: int) -> None:
        self._event = self._kernel.schedule_at(time_us, self._fire, label="vsync")

    def _fire(self) -> None:
        if not self._running:
            return
        self._tick_count += 1
        self._event = None
        # Re-arm before the handler so a long handler cannot drift the
        # phase: ticks stay on the fixed 60 Hz grid.  In demand mode an
        # idle tick stops the chain; request() restarts it on-grid.
        if self._demand is None or self._demand():
            self._arm_at(self._kernel.now_us + self.period_us)
        self._on_tick(self._kernel.now_us)
        if self._event is None and self._demand is not None and self._demand():
            # The handler itself created fresh demand on an idle tick.
            self._arm_at(self._kernel.now_us + self.period_us)
