"""Frame pipeline stages and per-frame render cost model.

A frame passes through five processing stages (paper Fig. 7): callback
execution, style resolution, layout, paint (renderer main thread), and
composite (compositor thread, partially GPU-offloaded).  The render
cost model maps a frame's *complexity* — a scalar the application's
callbacks attach to their dirtying effects — onto per-stage
:class:`~repro.hardware.core.WorkUnit` amounts.

The composite stage carries a frequency-independent component
(``composite_fixed_us``): the GPU/memory time that the Xie et al. DVFS
model's ``T_independent`` term captures (paper Eq. 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import BrowserError
from repro.hardware.core import WorkUnit


class PipelineStage(enum.Enum):
    """The five frame processing stages of Fig. 7."""

    CALLBACK = "callback"
    STYLE = "style"
    LAYOUT = "layout"
    PAINT = "paint"
    COMPOSITE = "composite"

    def __str__(self) -> str:
        return self.value


#: Stages executed on the renderer main thread, in order.
MAIN_THREAD_RENDER_STAGES = (PipelineStage.STYLE, PipelineStage.LAYOUT, PipelineStage.PAINT)


@dataclass(frozen=True)
class RenderCostModel:
    """Per-stage render work for a complexity-1.0 frame.

    Cycle amounts are reference big-core cycles (see
    :mod:`repro.hardware.core`); ``composite_fixed_us`` is the
    frequency-independent GPU/raster share of compositing.

    Scaling: style/layout/paint/composite cycles scale linearly with
    frame complexity; the fixed GPU time scales with a damped factor
    (complex frames repaint more pixels, but the display pipeline cost
    is bounded) — ``fixed * (1 + 0.2 * (complexity - 1))``.
    """

    style_cycles: float = 500_000.0
    layout_cycles: float = 1_000_000.0
    paint_cycles: float = 1_500_000.0
    composite_cycles: float = 500_000.0
    composite_fixed_us: float = 2_000.0

    def __post_init__(self) -> None:
        for name in ("style_cycles", "layout_cycles", "paint_cycles",
                     "composite_cycles", "composite_fixed_us"):
            if getattr(self, name) < 0:
                raise BrowserError(f"negative render cost: {name}")

    def work_for(self, stage: PipelineStage, complexity: float) -> WorkUnit:
        """The :class:`WorkUnit` for ``stage`` at the given complexity."""
        if complexity < 0:
            raise BrowserError(f"negative frame complexity: {complexity}")
        if stage is PipelineStage.STYLE:
            return WorkUnit(self.style_cycles * complexity)
        if stage is PipelineStage.LAYOUT:
            return WorkUnit(self.layout_cycles * complexity)
        if stage is PipelineStage.PAINT:
            return WorkUnit(self.paint_cycles * complexity)
        if stage is PipelineStage.COMPOSITE:
            fixed = self.composite_fixed_us * (1.0 + 0.2 * max(0.0, complexity - 1.0))
            return WorkUnit(self.composite_cycles * complexity, fixed_us=fixed)
        raise BrowserError(f"no render cost for stage {stage}")

    def total_render_cycles(self, complexity: float) -> float:
        """Total CPU cycles across the four render stages."""
        return (
            self.style_cycles + self.layout_cycles + self.paint_cycles + self.composite_cycles
        ) * complexity
