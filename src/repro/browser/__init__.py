"""Browser engine simulator (Chromium-like, paper Fig. 7).

Models the multi-process/thread frame pipeline the GreenWeb runtime
instruments:

* a **browser process** that receives input events, stamps them with
  unique Msg metadata (Fig. 8 Part I), and ships them over IPC,
* a **renderer main thread** that executes event callbacks and the
  style / layout / paint stages,
* a **compositor thread** that composites frames (with a
  frequency-independent GPU component),
* a 60 Hz **VSync** source that batches dirty state into frames via the
  dirty-bit + message-queue mechanism (Fig. 8 Part II), and
* **frame-latency tracking** that attributes every displayed frame back
  to the inputs that caused it (Fig. 8 Part III).

Animations (CSS transitions/animations, rAF loops, jQuery-style
``animate()``) generate continuous frame sequences attributed to their
root input event — the transitive closure of Sec. 6.4.
"""

from repro.browser.engine import Browser, BrowserPolicy
from repro.browser.frame_tracker import (
    FrameColumns,
    FrameRecord,
    FrameTracker,
    InputRecord,
)
from repro.browser.messages import InputMsg
from repro.browser.page import Page
from repro.browser.stages import PipelineStage, RenderCostModel
from repro.browser.vsync import VSYNC_PERIOD_US, VsyncSource

__all__ = [
    "Browser",
    "BrowserPolicy",
    "Page",
    "InputMsg",
    "FrameTracker",
    "FrameColumns",
    "FrameRecord",
    "InputRecord",
    "PipelineStage",
    "RenderCostModel",
    "VsyncSource",
    "VSYNC_PERIOD_US",
]
