"""A loaded page: DOM + stylesheet + render cost + script state.

The workload layer (:mod:`repro.workloads`) builds ``Page`` objects for
each of the paper's twelve applications; the browser engine runs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.browser.stages import RenderCostModel
from repro.web.css.stylesheet import Stylesheet
from repro.web.dom import Document


@dataclass
class Page:
    """Everything the browser needs to run one web application.

    Attributes:
        name: application name (e.g. ``"todo"``).
        document: the DOM.
        stylesheet: combined CSS (style rules + GreenWeb QoS rules).
        render_cost: per-stage render work model for this page.
        state: the application's persistent script state (callbacks
            read and write this across invocations).
        rng: the page's seeded RNG stream (callbacks draw complexity
            and work from it).
        native_scroll_complexity: render complexity of browser-native
            scrolling — a ``scroll``/``touchmove`` input produces a
            frame even with no registered listener, as real compositor
            scrolling does.  0 disables native scrolling.
    """

    name: str
    document: Document
    stylesheet: Stylesheet = field(default_factory=Stylesheet)
    render_cost: RenderCostModel = field(default_factory=RenderCostModel)
    state: dict = field(default_factory=dict)
    rng: Optional[np.random.Generator] = None
    native_scroll_complexity: float = 0.0

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = np.random.default_rng(0)

    def element_by_id(self, element_id: str):
        """Convenience lookup that raises on a missing id."""
        element = self.document.get_element_by_id(element_id)
        if element is None:
            from repro.errors import DomError

            raise DomError(f"page {self.name!r} has no element with id {element_id!r}")
        return element
