"""The GreenWeb runtime (paper Sec. 6).

Operates per frame: for every frame associated with an annotated event,
predict the minimum-energy ACMP configuration that meets the event's
QoS target, actuate it, and learn from the measured frame latency.

Lifecycle of one annotated event key (an (element, event-type) pair):

1. **Profiling** (Sec. 6.2): the first frame runs at the big cluster's
   maximum frequency, the second at its minimum.  The two (f, T)
   samples solve Eq. 1 for the big cluster; the little-cluster model is
   derived through the statically profiled IPC ratio.
2. **Stable**: each frame, sweep all configurations and pick the
   cheapest that meets the target (:class:`ConfigPredictor`), adjusted
   by a reactive *boost*: a QoS violation steps the configuration up
   one level (next frequency, or little-to-big migration); a clear
   over-prediction steps it back down.
3. **Recalibration**: more than ``recalibration_threshold`` consecutive
   mispredictions (relative error above ``misprediction_tolerance``)
   sends the key back to profiling.

Energy conservation: when no input demands performance — every $single$
event has its response frame and no continuous sequence is live — the
runtime drops to the idle configuration, so "post-frame" work (timers,
GC-like tasks) executes in low-power mode (Sec. 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.browser.engine import BrowserPolicy
from repro.browser.frame_tracker import FrameRecord, InputRecord
from repro.browser.messages import InputMsg
from repro.core.annotations import AnnotationRegistry
from repro.core.energy_model import PowerTable
from repro.core.perf_model import ClusterModelSet, fit_dvfs_model
from repro.core.predictor import ConfigPredictor, Prediction
from repro.core.qos import QoSSpec, QoSType, UsageScenario
from repro.errors import RuntimeModelError
from repro.hardware.dvfs import CpuConfig
from repro.hardware.platform import MobilePlatform
from repro.web.events import Event


class _Phase(enum.Enum):
    PROFILE_MAX = "profile-max"
    PROFILE_MIN = "profile-min"
    #: extra phases used only with ``profile_both_clusters=True``: the
    #: little-cluster model is fitted from its own two profiling runs
    #: instead of being derived from the big fit via the IPC ratio.
    PROFILE_LITTLE_MAX = "profile-little-max"
    PROFILE_LITTLE_MIN = "profile-little-min"
    STABLE = "stable"


@dataclass
class _KeyState:
    """Adaptive state for one annotated (element, event) key."""

    phase: _Phase = _Phase.PROFILE_MAX
    models: ClusterModelSet = field(default_factory=ClusterModelSet)
    profile_sample: Optional[tuple[int, float]] = None  # (freq_mhz, latency_us)
    #: latencies observed so far in the current profiling phase
    profile_buffer: list[float] = field(default_factory=list)
    #: recent observed cycle counts per cluster (surge-aware predictor)
    recent_cycles: dict = field(default_factory=dict)
    #: consecutive inputs under this key that produced no frame at all
    frameless_inputs: int = 0
    #: set once the key is known to never produce frames (e.g. an
    #: annotated touchstart whose page has no touchstart listener);
    #: such keys stop driving configuration changes.
    frameless: bool = False
    boost: int = 0
    consecutive_mispredictions: int = 0
    overpredict_streak: int = 0
    last_prediction: Optional[Prediction] = None
    #: the configuration actually requested (after boost) and the
    #: model's latency prediction AT that configuration — feedback must
    #: judge the model against what actually ran, not against the
    #: pre-boost sweep winner.
    last_requested: Optional[tuple[CpuConfig, float]] = None
    profiling_runs: int = 0
    recalibrations: int = 0


@dataclass
class RuntimeStats:
    """Counters for reports and the ablation benchmarks."""

    inputs_seen: int = 0
    unannotated_inputs: int = 0
    predictions: int = 0
    profiling_frames: int = 0
    violations_fed_back: int = 0
    boosts_up: int = 0
    boosts_down: int = 0
    recalibrations: int = 0
    idle_drops: int = 0


class GreenWebRuntime(BrowserPolicy):
    """The QoS-aware energy policy driven by GreenWeb annotations."""

    def __init__(
        self,
        platform: MobilePlatform,
        registry: AnnotationRegistry,
        scenario: UsageScenario = UsageScenario.IMPERCEPTIBLE,
        fallback_spec: Optional[QoSSpec] = None,
        idle_config: Optional[CpuConfig] = None,
        misprediction_tolerance: float = 0.30,
        recalibration_threshold: int = 3,
        ewma_model_update: bool = True,
        ewma_alpha: float = 0.30,
        profile_both_clusters: bool = False,
        idle_grace_ms: float = 150.0,
        target_headroom: float = 1.0,
        surge_aware: bool = False,
        surge_percentile: float = 0.9,
        surge_window: int = 12,
    ) -> None:
        if not 0 < misprediction_tolerance < 1:
            raise RuntimeModelError("misprediction tolerance must be in (0, 1)")
        if recalibration_threshold < 1:
            raise RuntimeModelError("recalibration threshold must be >= 1")
        if not 0 < target_headroom <= 1.0:
            raise RuntimeModelError("target headroom must be in (0, 1]")
        self.platform = platform
        self.registry = registry
        self.scenario = scenario
        # Unannotated user inputs get a conservative safe spec: QoS is
        # favoured over energy, mirroring AutoGreen's conservatism.
        self.fallback_spec = fallback_spec if fallback_spec is not None else QoSSpec.single()
        self.misprediction_tolerance = misprediction_tolerance
        self.recalibration_threshold = recalibration_threshold
        self.ewma_model_update = ewma_model_update
        self.ewma_alpha = ewma_alpha
        self.profile_both_clusters = profile_both_clusters
        # Predict against headroom * target: <1.0 buys safety margin
        # against frame-complexity surges at an energy cost — the
        # simple alternative to the paper's Sec. 8 suggestion of
        # profiling-guided prediction for fluctuating frames.
        self.target_headroom = target_headroom
        # Surge-aware prediction (the paper's Sec. 7.2/8 suggestion made
        # concrete): predict from a high percentile of recently observed
        # per-frame cycle counts instead of their mean, so a key whose
        # frames fluctuate is scheduled for its surges, not its average.
        if not 0.5 <= surge_percentile <= 1.0:
            raise RuntimeModelError("surge percentile must be in [0.5, 1]")
        if surge_window < 2:
            raise RuntimeModelError("surge window must be >= 2")
        self.surge_aware = surge_aware
        self.surge_percentile = surge_percentile
        self.surge_window = surge_window

        self.power_table = PowerTable.profile(platform)
        self.predictor = ConfigPredictor(self.power_table)
        self._configs = platform.all_configs()  # performance order
        self._config_index = {c: i for i, c in enumerate(self._configs)}
        self.idle_config = idle_config if idle_config is not None else self._configs[0]

        # The profile cluster is the fastest one (big on the paper's
        # platform); other clusters' models are derived through the
        # statically profiled IPC ratios.  Single-cluster platforms
        # (paper Sec. 10's "a runtime leveraging only a single big (or
        # little) core capable of DVFS") simply have no derivations.
        cluster_names = platform.cluster_names
        self._profile_cluster = max(
            cluster_names,
            key=lambda n: platform.cluster(n).spec.ipc_factor
            * platform.cluster(n).spec.opps.max.freq_mhz,
        )
        profile_spec = platform.cluster(self._profile_cluster).spec
        self._profile_fmax = CpuConfig(
            self._profile_cluster, profile_spec.opps.max.freq_mhz
        )
        self._profile_fmin = CpuConfig(
            self._profile_cluster, profile_spec.opps.min.freq_mhz
        )
        #: cluster -> cycle scale factor vs. the profile cluster
        self._cycle_factors: dict[str, float] = {
            name: profile_spec.ipc_factor / platform.cluster(name).spec.ipc_factor
            for name in cluster_names
            if name != self._profile_cluster
        }
        self._secondary_clusters = list(self._cycle_factors)
        if profile_both_clusters and len(self._secondary_clusters) != 1:
            raise RuntimeModelError(
                "profile_both_clusters requires exactly two clusters"
            )
        if self._secondary_clusters:
            secondary = self._secondary_clusters[0]
            secondary_spec = platform.cluster(secondary).spec
            self._secondary_fmax = CpuConfig(
                secondary, secondary_spec.opps.max.freq_mhz
            )
            self._secondary_fmin = CpuConfig(
                secondary, secondary_spec.opps.min.freq_mhz
            )
        else:
            self._secondary_fmax = self._secondary_fmin = None

        # Hysteresis before dropping to the idle configuration: input
        # streams (finger moves at ~60 Hz) complete event-by-event, and
        # dropping between samples would thrash the DVFS actuator.
        self.idle_grace_us = max(0, int(idle_grace_ms * 1_000))
        self._idle_event = None

        self._keys: dict[str, _KeyState] = {}
        #: uid -> (spec, key) for every live (and past) input.
        self.input_specs: dict[int, tuple[QoSSpec, str]] = {}
        self._demanding: dict[int, str] = {}  # uid -> key
        self._pending_frame_key: Optional[str] = None
        self.stats = RuntimeStats()

    # ------------------------------------------------------------------
    # BrowserPolicy hooks
    # ------------------------------------------------------------------
    def bind(self, browser) -> None:  # noqa: D401 - see base class
        super().bind(browser)
        self.platform.set_config(self.idle_config)

    def on_input(self, msg: InputMsg, event: Event) -> None:
        self.stats.inputs_seen += 1
        spec = self.registry.lookup(event.target, event.type)
        if spec is None:
            spec = self.fallback_spec
            self.stats.unannotated_inputs += 1
        key = f"{msg.target_key}@{event.type}"
        self.input_specs[msg.uid] = (spec, key)
        state = self._key_state(key)
        if state.frameless:
            # The key never produces frames; nothing to optimise for.
            return
        self._demanding[msg.uid] = key
        self._cancel_pending_idle()
        config = self._config_for(key, spec)
        self.platform.set_config(config)

    def on_frame_scheduled(self, vsync_us: int, msgs: list[InputMsg]) -> None:
        governing = self._governing_spec(msgs)
        if governing is None:
            return
        spec, key = governing
        self._pending_frame_key = key
        self._cancel_pending_idle()
        config = self._config_for(key, spec)
        self.platform.set_config(config)

    def on_frame_displayed(self, frame: FrameRecord) -> None:
        governing = self._governing_spec([c.msg for c in frame.contributors])
        if governing is None:
            return
        spec, key = governing
        state = self._key_state(key)
        observed_us = float(frame.max_latency_us)
        target_us = spec.target_ms(self.scenario) * 1_000.0

        if self.platform.trace.wants("greenweb"):
            self.platform.trace.emit(
                self.platform.kernel.now_us,
                "greenweb",
                "observe",
                key=key,
                phase=state.phase.value,
                observed_us=int(observed_us),
                target_us=int(target_us),
                violated=observed_us > target_us,
            )
        if state.phase is _Phase.PROFILE_MAX:
            state.profile_buffer.append(observed_us)
            if len(state.profile_buffer) >= self._profile_frames_needed(spec):
                # The minimum over the phase's frames rejects additive
                # queueing/batching noise that a single sample picks up.
                state.profile_sample = (
                    self._profile_fmax.freq_mhz,
                    min(state.profile_buffer),
                )
                state.profile_buffer = []
                state.phase = _Phase.PROFILE_MIN
        elif state.phase is _Phase.PROFILE_MIN:
            state.profile_buffer.append(observed_us)
            if len(state.profile_buffer) >= self._profile_frames_needed(spec):
                self._finish_big_profiling(state, min(state.profile_buffer))
                state.profile_buffer = []
        elif state.phase is _Phase.PROFILE_LITTLE_MAX:
            state.profile_buffer.append(observed_us)
            if len(state.profile_buffer) >= self._profile_frames_needed(spec):
                state.profile_sample = (
                    self._secondary_fmax.freq_mhz,
                    min(state.profile_buffer),
                )
                state.profile_buffer = []
                state.phase = _Phase.PROFILE_LITTLE_MIN
        elif state.phase is _Phase.PROFILE_LITTLE_MIN:
            state.profile_buffer.append(observed_us)
            if len(state.profile_buffer) >= self._profile_frames_needed(spec):
                self._finish_little_profiling(state, min(state.profile_buffer))
                state.profile_buffer = []
        else:
            self._feedback(state, observed_us, target_us)

        # A single event's QoS demand ends with its response frame;
        # anything after is post-frame work run in low-power mode.
        if spec.qos_type is QoSType.SINGLE:
            for contributor in frame.contributors:
                self._demanding.pop(contributor.msg.uid, None)
            self._maybe_go_idle()

    def on_input_complete(self, record: InputRecord) -> None:
        entry = self.input_specs.get(record.uid)
        if entry is not None:
            state = self._key_state(entry[1])
            if record.frame_count == 0:
                state.frameless_inputs += 1
                if state.frameless_inputs >= 2 and state.phase is _Phase.PROFILE_MAX:
                    # Two whole inputs without a single frame while the
                    # key was still waiting for its first profiling
                    # sample: this event type paints nothing here.
                    state.frameless = True
            else:
                state.frameless_inputs = 0
        self._demanding.pop(record.uid, None)
        self._maybe_go_idle()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _key_state(self, key: str) -> _KeyState:
        if key not in self._keys:
            self._keys[key] = _KeyState()
        return self._keys[key]

    @staticmethod
    def _profile_frames_needed(spec: QoSSpec) -> int:
        """Frames per profiling phase: continuous events have plenty of
        frames, so three are used (min-aggregated) to reject batching
        noise; a single event costs one whole user interaction per
        profiling frame, so one must do (the paper's "two profiling
        runs" for single events, e.g. MSN in Sec. 7.2)."""
        return 3 if spec.qos_type is QoSType.CONTINUOUS else 1

    def _config_for(self, key: str, spec: QoSSpec) -> CpuConfig:
        state = self._key_state(key)
        if state.phase is _Phase.PROFILE_MAX:
            state.profiling_runs += 1
            self.stats.profiling_frames += 1
            return self._profile_fmax
        if state.phase is _Phase.PROFILE_MIN:
            state.profiling_runs += 1
            self.stats.profiling_frames += 1
            return self._profile_fmin
        if state.phase is _Phase.PROFILE_LITTLE_MAX:
            state.profiling_runs += 1
            self.stats.profiling_frames += 1
            return self._secondary_fmax
        if state.phase is _Phase.PROFILE_LITTLE_MIN:
            state.profiling_runs += 1
            self.stats.profiling_frames += 1
            return self._secondary_fmin
        prediction = self.predictor.predict(
            state.models, spec.target_ms(self.scenario) * self.target_headroom
        )
        state.last_prediction = prediction
        self.stats.predictions += 1
        requested = self._apply_boost(prediction.config, state.boost)
        predicted_at_requested = state.models.predict_us(requested)
        state.last_requested = (requested, predicted_at_requested)
        if self.platform.trace.wants("greenweb"):
            self.platform.trace.emit(
                self.platform.kernel.now_us,
                "greenweb",
                "predict",
                key=key,
                target_ms=spec.target_ms(self.scenario),
                config=str(requested),
                predicted_us=round(predicted_at_requested, 1),
                predicted_energy_j=round(prediction.energy_j, 9),
                meets_target=prediction.meets_target,
                boost=state.boost,
            )
        return requested

    def _apply_boost(self, config: CpuConfig, boost: int) -> CpuConfig:
        if boost == 0:
            return config
        index = self._config_index[config] + boost
        index = min(max(index, 0), len(self._configs) - 1)
        return self._configs[index]

    def _governing_spec(self, msgs: list[InputMsg]) -> Optional[tuple[QoSSpec, str]]:
        """The tightest-target spec among the inputs contributing to a
        frame (all associated frames of an event share its QoS target;
        when batching merges events, the strictest demand governs)."""
        best: Optional[tuple[QoSSpec, str]] = None
        best_target = float("inf")
        for msg in msgs:
            entry = self.input_specs.get(msg.uid)
            if entry is None:
                continue
            target = entry[0].target_ms(self.scenario)
            if target < best_target:
                best = entry
                best_target = target
        return best

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def _finish_big_profiling(self, state: _KeyState, observed_min_us: float) -> None:
        assert state.profile_sample is not None
        fmax_mhz, latency_max_us = state.profile_sample
        profile_model = fit_dvfs_model(
            fmax_mhz, latency_max_us, self._profile_fmin.freq_mhz, observed_min_us
        )
        state.models.set(self._profile_cluster, profile_model)
        state.profile_sample = None
        if self.profile_both_clusters:
            # Four-run mode ("we build performance models for big and
            # little cores separately", Sec. 6.2): continue profiling on
            # the secondary cluster instead of deriving its model.
            state.phase = _Phase.PROFILE_LITTLE_MAX
            return
        # Two-run mode: derive the other clusters' models through the
        # statically profiled IPC ratios.
        for cluster, factor in self._cycle_factors.items():
            state.models.set(cluster, profile_model.scaled_cycles(factor))
        state.phase = _Phase.STABLE

    def _finish_little_profiling(self, state: _KeyState, observed_min_us: float) -> None:
        assert state.profile_sample is not None
        fmax_mhz, latency_max_us = state.profile_sample
        secondary = self._secondary_clusters[0]
        secondary_model = fit_dvfs_model(
            fmax_mhz, latency_max_us, self._secondary_fmin.freq_mhz, observed_min_us
        )
        state.models.set(secondary, secondary_model)
        state.phase = _Phase.STABLE
        state.profile_sample = None

    def _feedback(self, state: _KeyState, observed_us: float, target_us: float) -> None:
        if state.last_requested is None:
            return
        requested_config, predicted_us = state.last_requested
        predicted_us = max(predicted_us, 1.0)
        relative_error = abs(observed_us - predicted_us) / predicted_us

        if observed_us > target_us:
            # Under-prediction violated QoS: step up one level (next
            # frequency, or little-to-big migration at the cluster edge).
            state.boost += 1
            state.overpredict_streak = 0
            self.stats.boosts_up += 1
            self.stats.violations_fed_back += 1
        elif observed_us < predicted_us * (1.0 - self.misprediction_tolerance):
            # Apparent over-prediction.  A single fast frame can be an
            # artifact (the event may have executed at a faster
            # leftover configuration, e.g. during the idle-grace window
            # of a previous event), so require two in a row before
            # conserving with a step-down.
            state.overpredict_streak += 1
            if state.overpredict_streak >= 2 and state.boost > -3:
                state.boost -= 1
                state.overpredict_streak = 0
                self.stats.boosts_down += 1
        else:
            state.overpredict_streak = 0

        if self.ewma_model_update and observed_us > 0:
            self._ewma_update(state, requested_config, observed_us)

        if relative_error > self.misprediction_tolerance:
            state.consecutive_mispredictions += 1
            if state.consecutive_mispredictions > self.recalibration_threshold:
                state.phase = _Phase.PROFILE_MAX
                state.consecutive_mispredictions = 0
                state.boost = 0
                state.recalibrations += 1
                self.stats.recalibrations += 1
        else:
            state.consecutive_mispredictions = 0

    def _ewma_update(self, state: _KeyState, config: CpuConfig, observed_us: float) -> None:
        """The paper's "fine-tune the prediction": continuously refine
        the cycle count from stable-phase observations."""
        model = state.models.get(config.cluster)
        residual_us = observed_us - model.t_independent_us
        if residual_us <= 0:
            return
        observed_cycles = residual_us * config.freq_mhz
        blended = (1 - self.ewma_alpha) * model.n_cycles + self.ewma_alpha * observed_cycles
        if self.surge_aware:
            history = state.recent_cycles.setdefault(config.cluster, [])
            history.append(observed_cycles)
            del history[: -self.surge_window]
            ordered = sorted(history)
            rank = max(0, min(len(ordered) - 1,
                              int(self.surge_percentile * len(ordered))))
            blended = max(blended, ordered[rank])
        updated = model.with_cycles(blended)
        state.models.set(config.cluster, updated)
        if config.cluster == self._profile_cluster and not self.profile_both_clusters:
            for cluster, factor in self._cycle_factors.items():
                state.models.set(cluster, updated.scaled_cycles(factor))

    # ------------------------------------------------------------------
    # Energy conservation
    # ------------------------------------------------------------------
    def _maybe_go_idle(self) -> None:
        if self._demanding:
            return
        if self.idle_grace_us == 0:
            self._drop_to_idle()
            return
        if self._idle_event is not None and self._idle_event.pending:
            return
        self._idle_event = self.platform.kernel.schedule_in(
            self.idle_grace_us, self._drop_to_idle, label="greenweb-idle"
        )

    def _drop_to_idle(self) -> None:
        if self._demanding:
            return
        current = self.platform.config
        # If already on the little cluster, stay put: the leakage gap
        # between little operating points is negligible, and avoiding
        # the down-switch halves configuration churn for workloads whose
        # predicted config is already little (Fig. 12's "modest
        # switching" behaviour).
        if current.cluster == self.idle_config.cluster:
            return
        self.stats.idle_drops += 1
        self.platform.set_config(self.idle_config)

    def _cancel_pending_idle(self) -> None:
        if self._idle_event is not None and self._idle_event.pending:
            self._idle_event.cancel()
        self._idle_event = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def key_state_snapshot(self) -> dict[str, str]:
        """Per-key phase, for tests and debugging."""
        return {key: state.phase.value for key, state in self._keys.items()}

    def spec_for_uid(self, uid: int) -> Optional[QoSSpec]:
        """The QoS spec that governed an input (None if never seen)."""
        entry = self.input_specs.get(uid)
        return entry[0] if entry else None
