"""The GreenWeb runtime (paper Sec. 6).

Operates per frame: for every frame associated with an annotated event,
predict the minimum-energy ACMP configuration that meets the event's
QoS target, actuate it, and learn from the measured frame latency.

Lifecycle of one annotated event key (an (element, event-type) pair):

1. **Profiling** (Sec. 6.2): the first frame runs at the big cluster's
   maximum frequency, the second at its minimum.  The two (f, T)
   samples solve Eq. 1 for the big cluster; the little-cluster model is
   derived through the statically profiled IPC ratio.
2. **Stable**: each frame, sweep all configurations and pick the
   cheapest that meets the target (:class:`ConfigPredictor`), adjusted
   by a reactive *boost*: a QoS violation steps the configuration up
   one level (next frequency, or little-to-big migration); a clear
   over-prediction steps it back down.
3. **Recalibration**: more than ``recalibration_threshold`` consecutive
   mispredictions (relative error above ``misprediction_tolerance``)
   sends the key back to profiling.

Energy conservation: when no input demands performance — every $single$
event has its response frame and no continuous sequence is live — the
runtime drops to the idle configuration, so "post-frame" work (timers,
GC-like tasks) executes in low-power mode (Sec. 3.2).

Structurally the runtime is a thin conductor over four interfaced
components (see :mod:`repro.core.components`): a :class:`DvfsProfiler`
(profiling phases + Eq. 1 fits), a
:class:`~repro.core.predictor.ConfigPredictor` (the config sweep), a
:class:`FeedbackController` (boost/EWMA/recalibration), and an
:class:`IdleManager` (grace-period idle drops).  The private methods
below delegate so existing tests, subclasses
(:class:`~repro.core.uai.UaiGreenWebRuntime`), and ablation benchmarks
keep their entry points.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.engine import BrowserPolicy
from repro.browser.frame_tracker import FrameRecord, InputRecord
from repro.browser.messages import InputMsg
from repro.core.annotations import AnnotationRegistry
from repro.core.components import DvfsProfiler, FeedbackController, IdleManager
from repro.core.energy_model import PowerTable
from repro.core.predictor import ConfigPredictor
from repro.core.qos import QoSSpec, QoSType, UsageScenario
from repro.core.runtime_state import RuntimeStats, _KeyState, _Phase
from repro.errors import RuntimeModelError
from repro.hardware.dvfs import CpuConfig
from repro.hardware.platform import MobilePlatform
from repro.web.events import Event

__all__ = [
    "GreenWebRuntime",
    "RuntimeStats",
    "_KeyState",
    "_Phase",
]


class GreenWebRuntime(BrowserPolicy):
    """The QoS-aware energy policy driven by GreenWeb annotations."""

    def __init__(
        self,
        platform: MobilePlatform,
        registry: AnnotationRegistry,
        # A UsageScenario or a live repro.scenarios.Scenario — QoSSpec
        # duck-dispatches either when resolving targets, so the runtime
        # transparently follows time-varying scenario dynamics.
        scenario: "UsageScenario | object" = UsageScenario.IMPERCEPTIBLE,
        fallback_spec: Optional[QoSSpec] = None,
        idle_config: Optional[CpuConfig] = None,
        misprediction_tolerance: float = 0.30,
        recalibration_threshold: int = 3,
        ewma_model_update: bool = True,
        ewma_alpha: float = 0.30,
        profile_both_clusters: bool = False,
        idle_grace_ms: float = 150.0,
        target_headroom: float = 1.0,
        surge_aware: bool = False,
        surge_percentile: float = 0.9,
        surge_window: int = 12,
    ) -> None:
        if not 0 < target_headroom <= 1.0:
            raise RuntimeModelError("target headroom must be in (0, 1]")
        self.platform = platform
        self.registry = registry
        self.scenario = scenario
        # Unannotated user inputs get a conservative safe spec: QoS is
        # favoured over energy, mirroring AutoGreen's conservatism.
        self.fallback_spec = fallback_spec if fallback_spec is not None else QoSSpec.single()
        # Predict against headroom * target: <1.0 buys safety margin
        # against frame-complexity surges at an energy cost — the
        # simple alternative to the paper's Sec. 8 suggestion of
        # profiling-guided prediction for fluctuating frames.
        self.target_headroom = target_headroom

        self.power_table = PowerTable.profile(platform)
        self.predictor = ConfigPredictor(self.power_table)
        self._configs = platform.all_configs()  # performance order
        self._config_index = {c: i for i, c in enumerate(self._configs)}
        self.stats = RuntimeStats()

        self.profiler = DvfsProfiler(platform, profile_both_clusters)
        self.feedback_controller = FeedbackController(
            self.profiler,
            self.stats,
            misprediction_tolerance=misprediction_tolerance,
            recalibration_threshold=recalibration_threshold,
            ewma_model_update=ewma_model_update,
            ewma_alpha=ewma_alpha,
            surge_aware=surge_aware,
            surge_percentile=surge_percentile,
            surge_window=surge_window,
        )
        self.idle_manager = IdleManager(
            platform,
            idle_config if idle_config is not None else self._configs[0],
            idle_grace_ms,
            has_demand=lambda: bool(self._demanding),
            stats=self.stats,
        )

        self._keys: dict[str, _KeyState] = {}
        #: uid -> (spec, key) for every live (and past) input.
        self.input_specs: dict[int, tuple[QoSSpec, str]] = {}
        self._demanding: dict[int, str] = {}  # uid -> key
        self._pending_frame_key: Optional[str] = None

    # ------------------------------------------------------------------
    # Component-backed knobs (read-mostly; kept as properties so the
    # pre-decomposition attribute surface stays intact)
    # ------------------------------------------------------------------
    @property
    def misprediction_tolerance(self) -> float:
        return self.feedback_controller.misprediction_tolerance

    @property
    def recalibration_threshold(self) -> int:
        return self.feedback_controller.recalibration_threshold

    @property
    def ewma_model_update(self) -> bool:
        return self.feedback_controller.ewma_model_update

    @property
    def ewma_alpha(self) -> float:
        return self.feedback_controller.ewma_alpha

    @property
    def surge_aware(self) -> bool:
        return self.feedback_controller.surge_aware

    @property
    def surge_percentile(self) -> float:
        return self.feedback_controller.surge_percentile

    @property
    def surge_window(self) -> int:
        return self.feedback_controller.surge_window

    @property
    def profile_both_clusters(self) -> bool:
        return self.profiler.profile_both_clusters

    @property
    def idle_config(self) -> CpuConfig:
        return self.idle_manager.idle_config

    @property
    def idle_grace_us(self) -> int:
        return self.idle_manager.idle_grace_us

    @property
    def _profile_cluster(self) -> str:
        return self.profiler.profile_cluster

    @property
    def _profile_fmax(self) -> CpuConfig:
        return self.profiler.fmax

    @property
    def _profile_fmin(self) -> CpuConfig:
        return self.profiler.fmin

    @property
    def _secondary_fmax(self) -> Optional[CpuConfig]:
        return self.profiler.secondary_fmax

    @property
    def _secondary_fmin(self) -> Optional[CpuConfig]:
        return self.profiler.secondary_fmin

    @property
    def _cycle_factors(self) -> dict[str, float]:
        return self.profiler.cycle_factors

    @property
    def _secondary_clusters(self) -> list[str]:
        return self.profiler.secondary_clusters

    # ------------------------------------------------------------------
    # BrowserPolicy hooks
    # ------------------------------------------------------------------
    def bind(self, browser) -> None:  # noqa: D401 - see base class
        super().bind(browser)
        self.platform.set_config(self.idle_config)

    def on_input(self, msg: InputMsg, event: Event) -> None:
        self.stats.inputs_seen += 1
        spec = self.registry.lookup(event.target, event.type)
        if spec is None:
            spec = self.fallback_spec
            self.stats.unannotated_inputs += 1
        key = f"{msg.target_key}@{event.type}"
        self.input_specs[msg.uid] = (spec, key)
        state = self._key_state(key)
        if state.frameless:
            # The key never produces frames; nothing to optimise for.
            return
        self._demanding[msg.uid] = key
        self._cancel_pending_idle()
        config = self._config_for(key, spec)
        self.platform.set_config(config)

    def on_frame_scheduled(self, vsync_us: int, msgs: list[InputMsg]) -> None:
        governing = self._governing_spec(msgs)
        if governing is None:
            return
        spec, key = governing
        self._pending_frame_key = key
        self._cancel_pending_idle()
        config = self._config_for(key, spec)
        self.platform.set_config(config)

    def on_frame_displayed(self, frame: FrameRecord) -> None:
        governing = self._governing_spec([c.msg for c in frame.contributors])
        if governing is None:
            return
        spec, key = governing
        state = self._key_state(key)
        observed_us = float(frame.max_latency_us)
        target_us = spec.target_ms(self.scenario) * 1_000.0

        if self.platform.trace.wants("greenweb"):
            self.platform.trace.emit(
                self.platform.kernel.now_us,
                "greenweb",
                "observe",
                key=key,
                phase=state.phase.value,
                observed_us=int(observed_us),
                target_us=int(target_us),
                violated=observed_us > target_us,
            )
        if not self.profiler.observe(state, spec, observed_us):
            self._feedback(state, observed_us, target_us)

        # A single event's QoS demand ends with its response frame;
        # anything after is post-frame work run in low-power mode.
        if spec.qos_type is QoSType.SINGLE:
            for contributor in frame.contributors:
                self._demanding.pop(contributor.msg.uid, None)
            self._maybe_go_idle()

    def on_input_complete(self, record: InputRecord) -> None:
        entry = self.input_specs.get(record.uid)
        if entry is not None:
            state = self._key_state(entry[1])
            if record.frame_count == 0:
                state.frameless_inputs += 1
                if state.frameless_inputs >= 2 and state.phase is _Phase.PROFILE_MAX:
                    # Two whole inputs without a single frame while the
                    # key was still waiting for its first profiling
                    # sample: this event type paints nothing here.
                    state.frameless = True
            else:
                state.frameless_inputs = 0
        self._demanding.pop(record.uid, None)
        self._maybe_go_idle()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _key_state(self, key: str) -> _KeyState:
        if key not in self._keys:
            self._keys[key] = _KeyState()
        return self._keys[key]

    @staticmethod
    def _profile_frames_needed(spec: QoSSpec) -> int:
        return DvfsProfiler.frames_needed(spec)

    def _config_for(self, key: str, spec: QoSSpec) -> CpuConfig:
        state = self._key_state(key)
        profiling_config = self.profiler.phase_config(state)
        if profiling_config is not None:
            state.profiling_runs += 1
            self.stats.profiling_frames += 1
            return profiling_config
        prediction = self.predictor.predict(
            state.models, spec.target_ms(self.scenario) * self.target_headroom
        )
        state.last_prediction = prediction
        self.stats.predictions += 1
        requested = self._apply_boost(prediction.config, state.boost)
        predicted_at_requested = state.models.predict_us(requested)
        state.last_requested = (requested, predicted_at_requested)
        if self.platform.trace.wants("greenweb"):
            self.platform.trace.emit(
                self.platform.kernel.now_us,
                "greenweb",
                "predict",
                key=key,
                target_ms=spec.target_ms(self.scenario),
                config=str(requested),
                predicted_us=round(predicted_at_requested, 1),
                predicted_energy_j=round(prediction.energy_j, 9),
                meets_target=prediction.meets_target,
                boost=state.boost,
            )
        return requested

    def _apply_boost(self, config: CpuConfig, boost: int) -> CpuConfig:
        if boost == 0:
            return config
        index = self._config_index[config] + boost
        index = min(max(index, 0), len(self._configs) - 1)
        return self._configs[index]

    def _governing_spec(self, msgs: list[InputMsg]) -> Optional[tuple[QoSSpec, str]]:
        """The tightest-target spec among the inputs contributing to a
        frame (all associated frames of an event share its QoS target;
        when batching merges events, the strictest demand governs)."""
        best: Optional[tuple[QoSSpec, str]] = None
        best_target = float("inf")
        for msg in msgs:
            entry = self.input_specs.get(msg.uid)
            if entry is None:
                continue
            target = entry[0].target_ms(self.scenario)
            if target < best_target:
                best = entry
                best_target = target
        return best

    # ------------------------------------------------------------------
    # Learning (delegates into the components)
    # ------------------------------------------------------------------
    def _finish_big_profiling(self, state: _KeyState, observed_min_us: float) -> None:
        self.profiler.finish_big_profiling(state, observed_min_us)

    def _finish_little_profiling(self, state: _KeyState, observed_min_us: float) -> None:
        self.profiler.finish_little_profiling(state, observed_min_us)

    def _feedback(self, state: _KeyState, observed_us: float, target_us: float) -> None:
        self.feedback_controller.feedback(state, observed_us, target_us)

    def _ewma_update(self, state: _KeyState, config: CpuConfig, observed_us: float) -> None:
        self.feedback_controller.ewma_update(state, config, observed_us)

    # ------------------------------------------------------------------
    # Energy conservation
    # ------------------------------------------------------------------
    def _maybe_go_idle(self) -> None:
        self.idle_manager.maybe_go_idle()

    def _drop_to_idle(self) -> None:
        self.idle_manager.drop_to_idle()

    def _cancel_pending_idle(self) -> None:
        self.idle_manager.cancel_pending()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def key_state_snapshot(self) -> dict[str, str]:
        """Per-key phase, for tests and debugging."""
        return {key: state.phase.value for key, state in self._keys.items()}

    def spec_for_uid(self, uid: int) -> Optional[QoSSpec]:
        """The QoS spec that governed an input (None if never seen)."""
        entry = self.input_specs.get(uid)
        return entry[0] if entry else None
