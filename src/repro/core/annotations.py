"""Annotation registry: (element, event) -> QoS spec under the cascade.

The registry is the runtime's view of a page's GreenWeb annotations.
Lookup follows CSS cascade rules: among annotations for the event type
whose selector matches the element, the highest (specificity, source
order) wins.  Results are memoised per (element, event) because DOMs
and annotations are static during a run; :meth:`AnnotationRegistry.add`
invalidates the cache (AutoGreen injects annotations at load time).
"""

from __future__ import annotations

import weakref
from typing import Iterable, Optional

from repro.core.language import GreenWebAnnotation, extract_annotations
from repro.core.qos import QoSSpec
from repro.web.css.stylesheet import Stylesheet
from repro.web.dom import Element
from repro.web.events import EventType, coerce_event_type


class AnnotationRegistry:
    """Holds a page's GreenWeb annotations and resolves lookups."""

    def __init__(self, annotations: Optional[Iterable[GreenWebAnnotation]] = None) -> None:
        self._annotations: list[GreenWebAnnotation] = list(annotations) if annotations else []
        # Weak keys: a dead element's cache entries vanish with it, so a
        # recycled object identity can never alias a stale result.
        self._cache: "weakref.WeakKeyDictionary[Element, dict[EventType, Optional[QoSSpec]]]" = (
            weakref.WeakKeyDictionary()
        )

    @classmethod
    def from_stylesheet(cls, stylesheet: Stylesheet) -> "AnnotationRegistry":
        """Build a registry from a page's (combined) stylesheet."""
        return cls(extract_annotations(stylesheet))

    @property
    def annotations(self) -> list[GreenWebAnnotation]:
        return list(self._annotations)

    def __len__(self) -> int:
        return len(self._annotations)

    def add(self, annotation: GreenWebAnnotation) -> None:
        """Append an annotation (later additions win cascade ties,
        mirroring a later <style> block)."""
        self._annotations.append(annotation)
        self._cache.clear()

    def extend(self, annotations: Iterable[GreenWebAnnotation]) -> None:
        for annotation in annotations:
            self.add(annotation)

    def lookup(self, element: Element, event_type: "EventType | str") -> Optional[QoSSpec]:
        """The winning QoS spec for ``event_type`` on ``element``
        (None if the pair is unannotated)."""
        event_type = coerce_event_type(event_type)
        per_element = self._cache.get(element)
        if per_element is not None and event_type in per_element:
            return per_element[event_type]
        winner: Optional[GreenWebAnnotation] = None
        winner_key = ((-1, -1, -1), -1)
        for order, annotation in enumerate(self._annotations):
            if annotation.event_type is not event_type:
                continue
            if not annotation.selector.matches(element):
                continue
            candidate_key = (annotation.selector.specificity(), order)
            if candidate_key >= winner_key:
                winner = annotation
                winner_key = candidate_key
        spec = winner.spec if winner is not None else None
        self._cache.setdefault(element, {})[event_type] = spec
        return spec

    def annotated_pairs(self, elements: Iterable[Element]) -> list[tuple[Element, EventType]]:
        """All (element, event) pairs with a listener that resolve to an
        annotation — the coverage metric Table 3 reports."""
        pairs = []
        for element in elements:
            for name in element.listened_event_types:
                try:
                    event_type = coerce_event_type(name)
                except Exception:
                    continue
                if self.lookup(element, event_type) is not None:
                    pairs.append((element, event_type))
        return pairs
