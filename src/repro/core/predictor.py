"""Execution configuration prediction (paper Sec. 6.2).

"With the two models, the GreenWeb runtime sweeps all possible core and
frequency combinations and selects the one that satisfies the QoS
target with minimal energy."

If no configuration meets the target, the fastest (minimum predicted
latency) configuration is chosen — QoS is favoured over energy, the
same conservative bias AutoGreen applies to its annotations (Sec. 5).

Implementation notes
--------------------
The sweep runs on every prediction, so it is the runtime's hottest
model code.  Three layers keep it cheap without changing a single
result bit (the differential suite pins this):

* the per-platform configuration table is precomputed
  (:meth:`repro.core.energy_model.PowerTable.sweep_table`);
* the sweep itself is vectorized with numpy when available, falling
  back to a pure-Python loop with identical float semantics — set
  ``REPRO_NO_NUMPY=1`` to force the fallback (elementwise float64
  arithmetic is IEEE-identical either way, and ``argmin`` picks the
  first minimum exactly like the loop's strict-``<`` comparisons);
* predictions are memoized on ``(model uid, model version, target)``,
  which changes precisely when the inputs may have (see
  :class:`~repro.core.perf_model.ClusterModelSet`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import RuntimeModelError
from repro.core.energy_model import PowerTable
from repro.core.perf_model import ClusterModelSet
from repro.hardware.dvfs import CpuConfig

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - image always has numpy
        _np = None

#: memo entries kept per predictor before the table resets (predictors
#: are per-session; this only bounds pathological target churn)
_MEMO_LIMIT = 8192


@dataclass(frozen=True)
class Prediction:
    """One sweep result: the chosen configuration and its predictions."""

    config: CpuConfig
    latency_us: float
    energy_j: float
    meets_target: bool


class ConfigPredictor:
    """Sweeps the configuration space for the minimum-energy config."""

    def __init__(self, power_table: PowerTable) -> None:
        self._power = power_table
        table = power_table.sweep_table()
        self._configs = table.configs
        self._cluster_names = table.cluster_names
        self._cluster_index = table.cluster_index
        self._freqs_mhz = table.freqs_mhz
        self._busy_power_w = table.busy_power_w
        # Legacy attribute: the pre-paired (config, busy power) sweep a
        # few ablation tests introspect.
        self._sweep: list[tuple[CpuConfig, float]] = list(
            zip(table.configs, table.busy_power_w)
        )
        if _np is not None:
            self._np_freqs = _np.asarray(table.freqs_mhz, dtype=_np.float64)
            self._np_busy = _np.asarray(table.busy_power_w, dtype=_np.float64)
            self._np_cluster_index = _np.asarray(table.cluster_index, dtype=_np.intp)
        else:
            self._np_freqs = None
        self._memo: dict = {}

    def predict(
        self, models: ClusterModelSet, target_ms: float
    ) -> Prediction:
        """Choose the ideal configuration for a frame.

        Args:
            models: fitted per-cluster Eq. 1 coefficients.
            target_ms: the frame's operative QoS target.

        Returns:
            The minimum-energy :class:`Prediction` meeting the target,
            or the fastest configuration when none does.

        Raises:
            RuntimeModelError: if no cluster model exists for any
                profiled configuration.
        """
        if target_ms <= 0:
            raise RuntimeModelError(f"non-positive QoS target: {target_ms} ms")
        memo = self._memo
        key = (models._uid, models._version, target_ms)
        cached = memo.get(key)
        if cached is not None:
            return cached

        target_us = target_ms * 1_000.0
        coeffs = [models.get_or_none(name) for name in self._cluster_names]
        if self._np_freqs is not None and None not in coeffs:
            prediction = self._predict_numpy(coeffs, target_us)
        else:
            prediction = self._predict_python(coeffs, target_us)

        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        memo[key] = prediction
        return prediction

    def _predict_numpy(self, coeffs: list, target_us: float) -> Prediction:
        """Vectorized sweep; float semantics identical to the loop (see
        module docstring)."""
        index = self._np_cluster_index
        t_independent = _np.asarray(
            [c.t_independent_us for c in coeffs], dtype=_np.float64
        )[index]
        n_cycles = _np.asarray(
            [c.n_cycles for c in coeffs], dtype=_np.float64
        )[index]
        # Same arithmetic (and float association order) as
        # ClusterModelSet.predict_us / PowerTable.frame_energy_j.
        latency = t_independent + n_cycles / self._np_freqs
        energy = self._np_busy * latency * 1e-6
        meets = latency <= target_us
        if meets.any():
            chosen = int(_np.where(meets, energy, _np.inf).argmin())
            return Prediction(
                self._configs[chosen], float(latency[chosen]),
                float(energy[chosen]), True,
            )
        chosen = int(latency.argmin())
        return Prediction(
            self._configs[chosen], float(latency[chosen]),
            float(energy[chosen]), False,
        )

    def _predict_python(self, coeffs: list, target_us: float) -> Prediction:
        configs = self._configs
        cluster_index = self._cluster_index
        freqs = self._freqs_mhz
        busy_powers = self._busy_power_w
        best: Optional[tuple[int, float, float]] = None
        fastest: Optional[tuple[int, float, float]] = None
        for i in range(len(configs)):
            model = coeffs[cluster_index[i]]
            if model is None:
                continue
            # Same arithmetic (and float association order) as
            # ClusterModelSet.predict_us / PowerTable.frame_energy_j.
            latency = model.t_independent_us + model.n_cycles / freqs[i]
            energy = busy_powers[i] * latency * 1e-6
            if fastest is None or latency < fastest[1]:
                fastest = (i, latency, energy)
            if latency <= target_us and (best is None or energy < best[2]):
                best = (i, latency, energy)
        if fastest is None:
            raise RuntimeModelError(
                "no configuration could be evaluated: missing cluster models"
            )
        i, latency, energy = best if best is not None else fastest
        return Prediction(configs[i], latency, energy, latency <= target_us)
