"""Execution configuration prediction (paper Sec. 6.2).

"With the two models, the GreenWeb runtime sweeps all possible core and
frequency combinations and selects the one that satisfies the QoS
target with minimal energy."

If no configuration meets the target, the fastest (minimum predicted
latency) configuration is chosen — QoS is favoured over energy, the
same conservative bias AutoGreen applies to its annotations (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RuntimeModelError
from repro.core.energy_model import PowerTable
from repro.core.perf_model import ClusterModelSet
from repro.hardware.dvfs import CpuConfig


@dataclass(frozen=True)
class Prediction:
    """One sweep result: the chosen configuration and its predictions."""

    config: CpuConfig
    latency_us: float
    energy_j: float
    meets_target: bool


class ConfigPredictor:
    """Sweeps the configuration space for the minimum-energy config."""

    def __init__(self, power_table: PowerTable) -> None:
        self._power = power_table

    def predict(
        self, models: ClusterModelSet, target_ms: float
    ) -> Prediction:
        """Choose the ideal configuration for a frame.

        Args:
            models: fitted per-cluster Eq. 1 coefficients.
            target_ms: the frame's operative QoS target.

        Returns:
            The minimum-energy :class:`Prediction` meeting the target,
            or the fastest configuration when none does.

        Raises:
            RuntimeModelError: if no cluster model exists for any
                profiled configuration.
        """
        if target_ms <= 0:
            raise RuntimeModelError(f"non-positive QoS target: {target_ms} ms")
        target_us = target_ms * 1_000.0
        best: Optional[Prediction] = None
        fastest: Optional[Prediction] = None
        evaluated = 0
        for config in self._power.configs():
            if not models.has(config.cluster):
                continue
            evaluated += 1
            latency = models.predict_us(config)
            energy = self._power.frame_energy_j(config, latency)
            candidate = Prediction(config, latency, energy, latency <= target_us)
            if fastest is None or candidate.latency_us < fastest.latency_us:
                fastest = candidate
            if candidate.meets_target and (best is None or candidate.energy_j < best.energy_j):
                best = candidate
        if evaluated == 0 or fastest is None:
            raise RuntimeModelError(
                "no configuration could be evaluated: missing cluster models"
            )
        return best if best is not None else fastest
