"""Execution configuration prediction (paper Sec. 6.2).

"With the two models, the GreenWeb runtime sweeps all possible core and
frequency combinations and selects the one that satisfies the QoS
target with minimal energy."

If no configuration meets the target, the fastest (minimum predicted
latency) configuration is chosen — QoS is favoured over energy, the
same conservative bias AutoGreen applies to its annotations (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RuntimeModelError
from repro.core.energy_model import PowerTable
from repro.core.perf_model import ClusterModelSet
from repro.hardware.dvfs import CpuConfig


@dataclass(frozen=True)
class Prediction:
    """One sweep result: the chosen configuration and its predictions."""

    config: CpuConfig
    latency_us: float
    energy_j: float
    meets_target: bool


class ConfigPredictor:
    """Sweeps the configuration space for the minimum-energy config."""

    def __init__(self, power_table: PowerTable) -> None:
        self._power = power_table
        # The sweep below runs on every prediction; pre-pair each
        # config with its busy power so the hot loop is lookup-free.
        self._sweep: list[tuple[CpuConfig, float]] = [
            (config, power_table.busy_power_w(config))
            for config in power_table.configs()
        ]

    def predict(
        self, models: ClusterModelSet, target_ms: float
    ) -> Prediction:
        """Choose the ideal configuration for a frame.

        Args:
            models: fitted per-cluster Eq. 1 coefficients.
            target_ms: the frame's operative QoS target.

        Returns:
            The minimum-energy :class:`Prediction` meeting the target,
            or the fastest configuration when none does.

        Raises:
            RuntimeModelError: if no cluster model exists for any
                profiled configuration.
        """
        if target_ms <= 0:
            raise RuntimeModelError(f"non-positive QoS target: {target_ms} ms")
        target_us = target_ms * 1_000.0
        best: Optional[tuple[CpuConfig, float, float]] = None
        fastest: Optional[tuple[CpuConfig, float, float]] = None
        for config, busy_power_w in self._sweep:
            model = models.get_or_none(config.cluster)
            if model is None:
                continue
            # Same arithmetic (and float association order) as
            # ClusterModelSet.predict_us / PowerTable.frame_energy_j.
            latency = model.t_independent_us + model.n_cycles / config.freq_mhz
            energy = busy_power_w * latency * 1e-6
            if fastest is None or latency < fastest[1]:
                fastest = (config, latency, energy)
            if latency <= target_us and (best is None or energy < best[2]):
                best = (config, latency, energy)
        if fastest is None:
            raise RuntimeModelError(
                "no configuration could be evaluated: missing cluster models"
            )
        config, latency, energy = best if best is not None else fastest
        return Prediction(config, latency, energy, latency <= target_us)
