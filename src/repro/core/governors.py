"""Baseline CPU governors (paper Sec. 7.1).

* :class:`PerfGovernor` — "always runs the system at the peak
  performance, i.e. highest frequency in the big core".
* :class:`InteractiveGovernor` — a faithful model of Android's
  ``interactive`` cpufreq governor: it "maximizes performance when the
  CPU recovers from the idle state, and then dynamically changes CPU
  performance as CPU utilization varies".  Implemented with the real
  governor's knobs: idle-exit boost to ``hispeed``, ``go_hispeed_load``,
  ``min_sample_time`` hysteresis, ``target_load`` proportional scaling
  on a periodic timer.
* :class:`PowersaveGovernor` / :class:`OndemandGovernor` — extra
  reference policies (energy floor and the classic step-down governor)
  used by the ablation benchmarks.

All governors rank the 17 platform configurations by *capacity*
(effective IPC x frequency), which makes "step down one level" and
"pick the lowest config sustaining the load" well-defined across the
little/big cluster boundary.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.engine import BrowserPolicy
from repro.browser.messages import InputMsg
from repro.errors import HardwareError
from repro.hardware.dvfs import CpuConfig
from repro.hardware.platform import MobilePlatform
from repro.sim.clock import ms_to_us
from repro.web.events import Event


def config_capacity(platform: MobilePlatform, config: CpuConfig) -> float:
    """Effective performance of a configuration (IPC x MHz)."""
    spec = platform.cluster(config.cluster).spec
    return spec.ipc_factor * config.freq_mhz


class PerfGovernor(BrowserPolicy):
    """Peak performance, always (the paper's *Perf* baseline)."""

    def __init__(self, platform: MobilePlatform) -> None:
        self.platform = platform
        big = platform.cluster("big").spec
        self._peak = CpuConfig("big", big.opps.max.freq_mhz)

    def bind(self, browser) -> None:
        super().bind(browser)
        self.platform.set_config(self._peak)


class PowersaveGovernor(BrowserPolicy):
    """Minimum-energy floor: the slowest little configuration, always.

    Not a paper baseline; used by tests and ablations as the energy
    lower bound (with correspondingly terrible QoS)."""

    def __init__(self, platform: MobilePlatform) -> None:
        self.platform = platform
        little = platform.cluster("little").spec
        self._floor = CpuConfig("little", little.opps.min.freq_mhz)

    def bind(self, browser) -> None:
        super().bind(browser)
        self.platform.set_config(self._floor)


class InteractiveGovernor(BrowserPolicy):
    """Android's default ``interactive`` governor (QoS-agnostic)."""

    def __init__(
        self,
        platform: MobilePlatform,
        timer_rate_ms: float = 20.0,
        go_hispeed_load: float = 0.85,
        target_load: float = 0.90,
        min_sample_time_ms: float = 80.0,
        input_boost: bool = True,
    ) -> None:
        if not 0 < target_load <= 1 or not 0 < go_hispeed_load <= 1:
            raise HardwareError("governor loads must be in (0, 1]")
        self.platform = platform
        self.timer_rate_us = ms_to_us(timer_rate_ms)
        self.go_hispeed_load = go_hispeed_load
        self.target_load = target_load
        self.min_sample_time_us = ms_to_us(min_sample_time_ms)
        self.input_boost = input_boost

        self._configs = sorted(
            platform.all_configs(), key=lambda c: config_capacity(platform, c)
        )
        self._hispeed = self._configs[-1]
        self._floor = self._configs[0]
        self._last_boost_us: Optional[int] = None
        self._last_any_busy_us = 0.0
        self._last_sample_us = 0
        self.timer_fires = 0

    # ------------------------------------------------------------------
    def bind(self, browser) -> None:
        super().bind(browser)
        self.platform.add_busy_observer(self._busy_transition)
        self._last_sample_us = self.platform.kernel.now_us
        _, self._last_any_busy_us = self.platform.utilization_snapshot()
        self.platform.set_config(self._floor)
        self._arm_timer()

    def on_input(self, msg: InputMsg, event: Event) -> None:
        if self.input_boost:
            self._boost()

    # ------------------------------------------------------------------
    def _busy_transition(self, busy_count: int, previous_count: int) -> None:
        # "Maximizes performance when the CPU recovers from idle."
        if previous_count == 0 and busy_count > 0:
            self._boost()

    def _boost(self) -> None:
        self._last_boost_us = self.platform.kernel.now_us
        self.platform.set_config(self._hispeed)

    def _arm_timer(self) -> None:
        self.platform.kernel.schedule_in(self.timer_rate_us, self._timer, label="interactive")

    def _timer(self) -> None:
        self.timer_fires += 1
        now = self.platform.kernel.now_us
        _, any_busy = self.platform.utilization_snapshot()
        window = max(1, now - self._last_sample_us)
        utilization = min(1.0, (any_busy - self._last_any_busy_us) / window)
        self._last_sample_us = now
        self._last_any_busy_us = any_busy

        # Deferrable-timer semantics: the real interactive governor's
        # sampling timer does not fire while the CPU idles, so the
        # frequency parks wherever the last busy period left it —
        # usually hispeed.  This is why the paper observes Interactive
        # "almost always operating at the peak performance" (Sec. 7.3).
        if utilization < 0.02 and self.platform.busy_context_count == 0:
            self._arm_timer()
            return

        boosted = (
            self._last_boost_us is not None
            and now - self._last_boost_us < self.min_sample_time_us
        )
        if not boosted:
            if utilization >= self.go_hispeed_load:
                self.platform.set_config(self._hispeed)
            else:
                current_capacity = config_capacity(self.platform, self.platform.config)
                target_capacity = current_capacity * utilization / self.target_load
                self.platform.set_config(self._lowest_with_capacity(target_capacity))
        self._arm_timer()

    def _lowest_with_capacity(self, capacity: float) -> CpuConfig:
        for config in self._configs:
            if config_capacity(self.platform, config) >= capacity:
                return config
        return self._configs[-1]


class OndemandGovernor(BrowserPolicy):
    """The classic ``ondemand`` governor: jump to max above the up
    threshold, step down one level when the load is low."""

    def __init__(
        self,
        platform: MobilePlatform,
        timer_rate_ms: float = 20.0,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
    ) -> None:
        if not 0 < down_threshold < up_threshold <= 1:
            raise HardwareError("need 0 < down_threshold < up_threshold <= 1")
        self.platform = platform
        self.timer_rate_us = ms_to_us(timer_rate_ms)
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self._configs = sorted(
            platform.all_configs(), key=lambda c: config_capacity(platform, c)
        )
        self._last_any_busy_us = 0.0
        self._last_sample_us = 0

    def bind(self, browser) -> None:
        super().bind(browser)
        self._last_sample_us = self.platform.kernel.now_us
        _, self._last_any_busy_us = self.platform.utilization_snapshot()
        self.platform.set_config(self._configs[0])
        self._arm_timer()

    def _arm_timer(self) -> None:
        self.platform.kernel.schedule_in(self.timer_rate_us, self._timer, label="ondemand")

    def _timer(self) -> None:
        now = self.platform.kernel.now_us
        _, any_busy = self.platform.utilization_snapshot()
        window = max(1, now - self._last_sample_us)
        utilization = min(1.0, (any_busy - self._last_any_busy_us) / window)
        self._last_sample_us = now
        self._last_any_busy_us = any_busy

        current = self.platform.config
        index = next(
            (i for i, c in enumerate(self._configs) if c == current), len(self._configs) - 1
        )
        if utilization >= self.up_threshold:
            self.platform.set_config(self._configs[-1])
        elif utilization <= self.down_threshold and index > 0:
            self.platform.set_config(self._configs[index - 1])
        self._arm_timer()
