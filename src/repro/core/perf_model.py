"""The runtime's DVFS performance model (paper Sec. 6.2, Eq. 1).

Frame latency under the classical Xie et al. analytical model::

    T = T_independent + N_nonoverlap / f

where ``T_independent`` is frequency-independent time (GPU, memory)
and ``N_nonoverlap`` the CPU cycles that scale with frequency ``f``.
Two profiled (frequency, latency) samples give a 2x2 system solved in
closed form.

Microarchitecture handling: the paper builds separate models for big
and little cores.  Our runtime fits on the big cluster and *derives*
the little-cluster model by scaling the cycle count with the statically
profiled big:little IPC ratio — the same kind of hard-coded offline
knowledge the paper uses for the power table.  (An ablation in the
benchmarks profiles both clusters independently instead.)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import RuntimeModelError
from repro.hardware.dvfs import CpuConfig


@dataclass(frozen=True)
class PerfModelCoefficients:
    """Fitted Eq. 1 coefficients for one cluster.

    Attributes:
        t_independent_us: frequency-independent latency (us).
        n_cycles: the frequency-scaled cycle count, in *this cluster's*
            cycles (divide by MHz to get microseconds).
    """

    t_independent_us: float
    n_cycles: float

    def predict_us(self, freq_mhz: int) -> float:
        """Predicted frame latency at ``freq_mhz`` (microseconds)."""
        if freq_mhz <= 0:
            raise RuntimeModelError(f"non-positive frequency: {freq_mhz}")
        return self.t_independent_us + self.n_cycles / freq_mhz

    def with_cycles(self, n_cycles: float) -> "PerfModelCoefficients":
        """Copy with an updated cycle count (feedback correction)."""
        return PerfModelCoefficients(self.t_independent_us, max(0.0, n_cycles))

    def scaled_cycles(self, factor: float) -> "PerfModelCoefficients":
        """Copy with cycles scaled by ``factor`` (IPC-ratio derivation
        of the little-cluster model from the big-cluster fit)."""
        if factor <= 0:
            raise RuntimeModelError(f"non-positive scale factor {factor}")
        return PerfModelCoefficients(self.t_independent_us, self.n_cycles * factor)


def fit_dvfs_model(
    freq_a_mhz: int, latency_a_us: float, freq_b_mhz: int, latency_b_us: float
) -> PerfModelCoefficients:
    """Solve Eq. 1 from two (frequency, latency) profiling samples.

    Closed form::

        N     = (T_b - T_a) / (1/f_b - 1/f_a)
        T_ind = T_a - N / f_a

    Noise guard: measured latencies include scheduling jitter, so a
    slightly *faster* run at the lower frequency (negative N) or a
    negative residual T_independent are clamped to zero rather than
    rejected — the feedback loop refines them.

    Raises:
        RuntimeModelError: if the two samples share a frequency.
    """
    if freq_a_mhz <= 0 or freq_b_mhz <= 0:
        raise RuntimeModelError("profiling frequencies must be positive")
    if freq_a_mhz == freq_b_mhz:
        raise RuntimeModelError(
            f"cannot fit Eq. 1 from two samples at the same frequency ({freq_a_mhz} MHz)"
        )
    if latency_a_us < 0 or latency_b_us < 0:
        raise RuntimeModelError("latencies must be non-negative")

    inv_a = 1.0 / freq_a_mhz
    inv_b = 1.0 / freq_b_mhz
    n_cycles = (latency_b_us - latency_a_us) / (inv_b - inv_a)
    n_cycles = max(0.0, n_cycles)
    t_independent = latency_a_us - n_cycles * inv_a
    t_independent = max(0.0, t_independent)
    return PerfModelCoefficients(t_independent_us=t_independent, n_cycles=n_cycles)


class ClusterModelSet:
    """Per-cluster Eq. 1 coefficients for one annotated event key.

    Every mutation goes through :meth:`set`, which bumps a version
    counter; together with a process-unique instance id this gives the
    predictor a cheap, exact memoization key — ``(uid, version)``
    changes if and only if the model contents may have changed.
    """

    _uid_counter = itertools.count()

    def __init__(self) -> None:
        self._models: dict[str, PerfModelCoefficients] = {}
        self._uid = next(ClusterModelSet._uid_counter)
        self._version = 0

    @property
    def uid(self) -> int:
        """Process-unique instance id (never reused, unlike ``id()``)."""
        return self._uid

    @property
    def version(self) -> int:
        """Bumped on every :meth:`set`; constant content between bumps."""
        return self._version

    def set(self, cluster: str, model: PerfModelCoefficients) -> None:
        self._models[cluster] = model
        self._version += 1

    def get(self, cluster: str) -> PerfModelCoefficients:
        try:
            return self._models[cluster]
        except KeyError:
            raise RuntimeModelError(f"no performance model for cluster {cluster!r}") from None

    def has(self, cluster: str) -> bool:
        return cluster in self._models

    def get_or_none(self, cluster: str) -> "PerfModelCoefficients | None":
        """Like :meth:`get` but ``None`` instead of raising (the
        predictor's sweep probes every cluster on every prediction)."""
        return self._models.get(cluster)

    def predict_us(self, config: CpuConfig) -> float:
        """Predicted latency at an arbitrary configuration."""
        return self.get(config.cluster).predict_us(config.freq_mhz)

    @property
    def clusters(self) -> list[str]:
        return list(self._models)
