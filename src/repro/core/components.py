"""The GreenWeb runtime's interfaced components.

:class:`~repro.core.runtime.GreenWebRuntime` used to be a monolith;
its four responsibilities now live behind explicit seams so ablation
variants are policy-spec parameters instead of monkeypatches:

* :class:`DvfsProfiler` — the Sec. 6.2 online profiling state machine:
  drive each annotated key through two (or four, with
  ``profile_both_clusters``) profiling runs and fit the Eq. 1
  frequency/latency models.
* :class:`~repro.core.predictor.ConfigPredictor` — the configuration
  sweep (already its own module): cheapest config meeting the target.
* :class:`FeedbackController` — the Sec. 6.3 reactive loop: boost on
  violation, conserve on over-prediction, EWMA model refinement,
  recalibration back to profiling after repeated mispredictions.
* :class:`IdleManager` — the Sec. 3.2 energy-conservation rule: when no
  input demands performance, drop to the idle configuration after a
  grace period.

Each component owns the validation of its own knobs; the runtime wires
them together and keeps thin delegating methods so its public surface
(and the ablation benchmarks poking it) is unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.perf_model import fit_dvfs_model
from repro.core.qos import QoSSpec, QoSType
from repro.core.runtime_state import RuntimeStats, _KeyState, _Phase
from repro.errors import RuntimeModelError
from repro.hardware.dvfs import CpuConfig
from repro.hardware.platform import MobilePlatform


class DvfsProfiler:
    """Online DVFS profiling + Eq. 1 model fitting (paper Sec. 6.2).

    The profile cluster is the fastest one (big on the paper's
    platform); other clusters' models are derived through the
    statically profiled IPC ratios.  Single-cluster platforms (paper
    Sec. 10's "a runtime leveraging only a single big (or little) core
    capable of DVFS") simply have no derivations.

    Args:
        platform: the hardware being profiled.
        profile_both_clusters: four-run mode ("we build performance
            models for big and little cores separately", Sec. 6.2) —
            the secondary cluster gets its own two profiling runs
            instead of an IPC-derived model.
    """

    def __init__(
        self, platform: MobilePlatform, profile_both_clusters: bool = False
    ) -> None:
        self.platform = platform
        self.profile_both_clusters = profile_both_clusters

        cluster_names = platform.cluster_names
        self.profile_cluster = max(
            cluster_names,
            key=lambda n: platform.cluster(n).spec.ipc_factor
            * platform.cluster(n).spec.opps.max.freq_mhz,
        )
        profile_spec = platform.cluster(self.profile_cluster).spec
        self.fmax = CpuConfig(self.profile_cluster, profile_spec.opps.max.freq_mhz)
        self.fmin = CpuConfig(self.profile_cluster, profile_spec.opps.min.freq_mhz)
        #: cluster -> cycle scale factor vs. the profile cluster
        self.cycle_factors: dict[str, float] = {
            name: profile_spec.ipc_factor / platform.cluster(name).spec.ipc_factor
            for name in cluster_names
            if name != self.profile_cluster
        }
        self.secondary_clusters = list(self.cycle_factors)
        if profile_both_clusters and len(self.secondary_clusters) != 1:
            raise RuntimeModelError(
                "profile_both_clusters requires exactly two clusters"
            )
        if self.secondary_clusters:
            secondary = self.secondary_clusters[0]
            secondary_spec = platform.cluster(secondary).spec
            self.secondary_fmax = CpuConfig(secondary, secondary_spec.opps.max.freq_mhz)
            self.secondary_fmin = CpuConfig(secondary, secondary_spec.opps.min.freq_mhz)
        else:
            self.secondary_fmax = self.secondary_fmin = None

    # ------------------------------------------------------------------
    @staticmethod
    def frames_needed(spec: QoSSpec) -> int:
        """Frames per profiling phase: continuous events have plenty of
        frames, so three are used (min-aggregated) to reject batching
        noise; a single event costs one whole user interaction per
        profiling frame, so one must do (the paper's "two profiling
        runs" for single events, e.g. MSN in Sec. 7.2)."""
        return 3 if spec.qos_type is QoSType.CONTINUOUS else 1

    def phase_config(self, state: _KeyState) -> Optional[CpuConfig]:
        """The pinned configuration a profiling phase demands, or None
        once the key's models are fitted (STABLE: predict instead)."""
        if state.phase is _Phase.PROFILE_MAX:
            return self.fmax
        if state.phase is _Phase.PROFILE_MIN:
            return self.fmin
        if state.phase is _Phase.PROFILE_LITTLE_MAX:
            return self.secondary_fmax
        if state.phase is _Phase.PROFILE_LITTLE_MIN:
            return self.secondary_fmin
        return None

    def observe(self, state: _KeyState, spec: QoSSpec, observed_us: float) -> bool:
        """Feed one observed frame latency to the profiling state
        machine.  Returns True if the observation belonged to a
        profiling phase (consumed here), False in STABLE (the feedback
        controller's turf)."""
        if state.phase is _Phase.PROFILE_MAX:
            state.profile_buffer.append(observed_us)
            if len(state.profile_buffer) >= self.frames_needed(spec):
                # The minimum over the phase's frames rejects additive
                # queueing/batching noise that a single sample picks up.
                state.profile_sample = (
                    self.fmax.freq_mhz,
                    min(state.profile_buffer),
                )
                state.profile_buffer = []
                state.phase = _Phase.PROFILE_MIN
        elif state.phase is _Phase.PROFILE_MIN:
            state.profile_buffer.append(observed_us)
            if len(state.profile_buffer) >= self.frames_needed(spec):
                self.finish_big_profiling(state, min(state.profile_buffer))
                state.profile_buffer = []
        elif state.phase is _Phase.PROFILE_LITTLE_MAX:
            state.profile_buffer.append(observed_us)
            if len(state.profile_buffer) >= self.frames_needed(spec):
                state.profile_sample = (
                    self.secondary_fmax.freq_mhz,
                    min(state.profile_buffer),
                )
                state.profile_buffer = []
                state.phase = _Phase.PROFILE_LITTLE_MIN
        elif state.phase is _Phase.PROFILE_LITTLE_MIN:
            state.profile_buffer.append(observed_us)
            if len(state.profile_buffer) >= self.frames_needed(spec):
                self.finish_little_profiling(state, min(state.profile_buffer))
                state.profile_buffer = []
        else:
            return False
        return True

    def finish_big_profiling(self, state: _KeyState, observed_min_us: float) -> None:
        assert state.profile_sample is not None
        fmax_mhz, latency_max_us = state.profile_sample
        profile_model = fit_dvfs_model(
            fmax_mhz, latency_max_us, self.fmin.freq_mhz, observed_min_us
        )
        state.models.set(self.profile_cluster, profile_model)
        state.profile_sample = None
        if self.profile_both_clusters:
            # Four-run mode: continue profiling on the secondary cluster
            # instead of deriving its model.
            state.phase = _Phase.PROFILE_LITTLE_MAX
            return
        # Two-run mode: derive the other clusters' models through the
        # statically profiled IPC ratios.
        for cluster, factor in self.cycle_factors.items():
            state.models.set(cluster, profile_model.scaled_cycles(factor))
        state.phase = _Phase.STABLE

    def finish_little_profiling(self, state: _KeyState, observed_min_us: float) -> None:
        assert state.profile_sample is not None
        fmax_mhz, latency_max_us = state.profile_sample
        secondary = self.secondary_clusters[0]
        secondary_model = fit_dvfs_model(
            fmax_mhz, latency_max_us, self.secondary_fmin.freq_mhz, observed_min_us
        )
        state.models.set(secondary, secondary_model)
        state.phase = _Phase.STABLE
        state.profile_sample = None


class FeedbackController:
    """Reactive learning from observed frame latencies (paper Sec. 6.3).

    Args:
        profiler: the key's :class:`DvfsProfiler` (model derivation
            topology for EWMA updates, and the phase to recalibrate to).
        stats: the shared :class:`RuntimeStats` counter block.
        misprediction_tolerance: relative error above which a
            prediction counts as a miss.
        recalibration_threshold: consecutive misses before the key is
            sent back to profiling.
        ewma_model_update: continuously refine cycle counts from
            stable-phase observations ("fine-tune the prediction").
        ewma_alpha: blend weight for the refinement.
        surge_aware: predict from a high percentile of recent cycle
            counts instead of the EWMA mean (Sec. 7.2/8 made concrete).
        surge_percentile: which percentile governs under surge_aware.
        surge_window: how many recent observations the percentile sees.
    """

    def __init__(
        self,
        profiler: DvfsProfiler,
        stats: RuntimeStats,
        misprediction_tolerance: float = 0.30,
        recalibration_threshold: int = 3,
        ewma_model_update: bool = True,
        ewma_alpha: float = 0.30,
        surge_aware: bool = False,
        surge_percentile: float = 0.9,
        surge_window: int = 12,
    ) -> None:
        if not 0 < misprediction_tolerance < 1:
            raise RuntimeModelError("misprediction tolerance must be in (0, 1)")
        if recalibration_threshold < 1:
            raise RuntimeModelError("recalibration threshold must be >= 1")
        if not 0.5 <= surge_percentile <= 1.0:
            raise RuntimeModelError("surge percentile must be in [0.5, 1]")
        if surge_window < 2:
            raise RuntimeModelError("surge window must be >= 2")
        self.profiler = profiler
        self.stats = stats
        self.misprediction_tolerance = misprediction_tolerance
        self.recalibration_threshold = recalibration_threshold
        self.ewma_model_update = ewma_model_update
        self.ewma_alpha = ewma_alpha
        self.surge_aware = surge_aware
        self.surge_percentile = surge_percentile
        self.surge_window = surge_window

    def feedback(self, state: _KeyState, observed_us: float, target_us: float) -> None:
        if state.last_requested is None:
            return
        requested_config, predicted_us = state.last_requested
        predicted_us = max(predicted_us, 1.0)
        relative_error = abs(observed_us - predicted_us) / predicted_us

        if observed_us > target_us:
            # Under-prediction violated QoS: step up one level (next
            # frequency, or little-to-big migration at the cluster edge).
            state.boost += 1
            state.overpredict_streak = 0
            self.stats.boosts_up += 1
            self.stats.violations_fed_back += 1
        elif observed_us < predicted_us * (1.0 - self.misprediction_tolerance):
            # Apparent over-prediction.  A single fast frame can be an
            # artifact (the event may have executed at a faster
            # leftover configuration, e.g. during the idle-grace window
            # of a previous event), so require two in a row before
            # conserving with a step-down.
            state.overpredict_streak += 1
            if state.overpredict_streak >= 2 and state.boost > -3:
                state.boost -= 1
                state.overpredict_streak = 0
                self.stats.boosts_down += 1
        else:
            state.overpredict_streak = 0

        if self.ewma_model_update and observed_us > 0:
            self.ewma_update(state, requested_config, observed_us)

        if relative_error > self.misprediction_tolerance:
            state.consecutive_mispredictions += 1
            if state.consecutive_mispredictions > self.recalibration_threshold:
                state.phase = _Phase.PROFILE_MAX
                state.consecutive_mispredictions = 0
                state.boost = 0
                state.recalibrations += 1
                self.stats.recalibrations += 1
        else:
            state.consecutive_mispredictions = 0

    def ewma_update(
        self, state: _KeyState, config: CpuConfig, observed_us: float
    ) -> None:
        """The paper's "fine-tune the prediction": continuously refine
        the cycle count from stable-phase observations."""
        model = state.models.get(config.cluster)
        residual_us = observed_us - model.t_independent_us
        if residual_us <= 0:
            return
        observed_cycles = residual_us * config.freq_mhz
        blended = (1 - self.ewma_alpha) * model.n_cycles + self.ewma_alpha * observed_cycles
        if self.surge_aware:
            history = state.recent_cycles.setdefault(config.cluster, [])
            history.append(observed_cycles)
            del history[: -self.surge_window]
            ordered = sorted(history)
            rank = max(0, min(len(ordered) - 1,
                              int(self.surge_percentile * len(ordered))))
            blended = max(blended, ordered[rank])
        updated = model.with_cycles(blended)
        state.models.set(config.cluster, updated)
        profiler = self.profiler
        if config.cluster == profiler.profile_cluster and not profiler.profile_both_clusters:
            for cluster, factor in profiler.cycle_factors.items():
                state.models.set(cluster, updated.scaled_cycles(factor))


class IdleManager:
    """Drop to the idle configuration when nothing demands performance
    (paper Sec. 3.2's "post-frame work executes in low-power mode").

    Args:
        platform: actuation target.
        idle_config: the low-power configuration to park on.
        idle_grace_ms: hysteresis before dropping — input streams
            (finger moves at ~60 Hz) complete event-by-event, and
            dropping between samples would thrash the DVFS actuator.
        has_demand: zero-arg predicate: does any live input still
            demand performance?  Checked again when the grace timer
            fires, so a new input cancels the drop.
        stats: the shared :class:`RuntimeStats` counter block.
    """

    def __init__(
        self,
        platform: MobilePlatform,
        idle_config: CpuConfig,
        idle_grace_ms: float,
        has_demand: Callable[[], bool],
        stats: RuntimeStats,
    ) -> None:
        self.platform = platform
        self.idle_config = idle_config
        self.idle_grace_us = max(0, int(idle_grace_ms * 1_000))
        self._has_demand = has_demand
        self.stats = stats
        self._idle_event = None

    def maybe_go_idle(self) -> None:
        if self._has_demand():
            return
        if self.idle_grace_us == 0:
            self.drop_to_idle()
            return
        if self._idle_event is not None and self._idle_event.pending:
            return
        self._idle_event = self.platform.kernel.schedule_in(
            self.idle_grace_us, self.drop_to_idle, label="greenweb-idle"
        )

    def drop_to_idle(self) -> None:
        if self._has_demand():
            return
        current = self.platform.config
        # If already on the little cluster, stay put: the leakage gap
        # between little operating points is negligible, and avoiding
        # the down-switch halves configuration churn for workloads whose
        # predicted config is already little (Fig. 12's "modest
        # switching" behaviour).
        if current.cluster == self.idle_config.cluster:
            return
        self.stats.idle_drops += 1
        self.platform.set_config(self.idle_config)

    def cancel_pending(self) -> None:
        if self._idle_event is not None and self._idle_event.pending:
            self._idle_event.cancel()
        self._idle_event = None
