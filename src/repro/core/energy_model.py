"""The runtime's energy model (paper Sec. 6.2).

"The energy model can be built based on the performance model and the
power consumption under different core and frequency settings.  We
profile the different power consumptions statically and hard-code them
into the runtime."

:class:`PowerTable` is that hard-coded table: busy power (one active
core + cluster leakage) per configuration, captured once from the
platform's power model at runtime construction.  Predicted frame
energy is then ``busy_power(config) * predicted_latency(config)``.
"""

from __future__ import annotations

from repro.errors import RuntimeModelError
from repro.hardware.dvfs import CpuConfig
from repro.hardware.platform import MobilePlatform


class PowerTable:
    """Statically profiled busy-power per <cluster, frequency> config."""

    def __init__(self, busy_power_w: dict[CpuConfig, float]) -> None:
        if not busy_power_w:
            raise RuntimeModelError("power table cannot be empty")
        self._busy_power_w = dict(busy_power_w)

    @classmethod
    def profile(cls, platform: MobilePlatform) -> "PowerTable":
        """Build the table from a platform (the offline profiling step)."""
        table: dict[CpuConfig, float] = {}
        for config in platform.all_configs():
            spec = platform.cluster(config.cluster).spec
            opp = spec.opps.at(config.freq_mhz)
            table[config] = platform.power_model.core_dynamic_w(
                spec, opp
            ) + platform.power_model.cluster_static_w(spec, opp)
        return cls(table)

    def busy_power_w(self, config: CpuConfig) -> float:
        """Busy power (watts) at ``config``.

        Raises:
            RuntimeModelError: for a configuration not in the table.
        """
        try:
            return self._busy_power_w[config]
        except KeyError:
            raise RuntimeModelError(f"no power entry for {config}") from None

    def configs(self) -> list[CpuConfig]:
        """All profiled configurations."""
        return list(self._busy_power_w)

    def frame_energy_j(self, config: CpuConfig, predicted_latency_us: float) -> float:
        """Predicted energy of a frame: busy power x predicted time."""
        if predicted_latency_us < 0:
            raise RuntimeModelError(f"negative latency: {predicted_latency_us}")
        return self.busy_power_w(config) * predicted_latency_us * 1e-6
