"""The runtime's energy model (paper Sec. 6.2).

"The energy model can be built based on the performance model and the
power consumption under different core and frequency settings.  We
profile the different power consumptions statically and hard-code them
into the runtime."

:class:`PowerTable` is that hard-coded table: busy power (one active
core + cluster leakage) per configuration, captured once from the
platform's power model at runtime construction.  Predicted frame
energy is then ``busy_power(config) * predicted_latency(config)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeModelError
from repro.hardware.dvfs import CpuConfig
from repro.hardware.platform import MobilePlatform
from repro.hardware.power import PowerModel


@dataclass(frozen=True)
class SweepTable:
    """Precomputed per-platform configuration table for the predictor.

    Parallel tuples, one entry per configuration in table order, so the
    sweep never touches a dict or ``CpuConfig`` attribute in its hot
    loop (and the vectorized path can mirror them as numpy arrays).
    """

    configs: tuple[CpuConfig, ...]
    #: distinct cluster names in first-appearance order
    cluster_names: tuple[str, ...]
    #: per-config index into :attr:`cluster_names`
    cluster_index: tuple[int, ...]
    freqs_mhz: tuple[int, ...]
    busy_power_w: tuple[float, ...]


def _platform_power_signature(platform: MobilePlatform):
    """Value key identifying everything :meth:`PowerTable.profile`
    reads, or ``None`` when the platform's power model is a subclass
    (whose overrides the key cannot capture)."""
    if type(platform.power_model) is not PowerModel:
        return None
    rows = []
    for config in platform.all_configs():
        spec = platform.cluster(config.cluster).spec
        opp = spec.opps.at(config.freq_mhz)
        rows.append(
            (config.cluster, config.freq_mhz, opp.voltage_v, spec.ceff_nf,
             spec.leakage_w_per_v)
        )
    return tuple(rows)


class PowerTable:
    """Statically profiled busy-power per <cluster, frequency> config."""

    #: identical platforms share one (immutable) profiled table; every
    #: session builds an identically-shaped ODroid, so this turns the
    #: per-session offline-profiling step into a lookup.
    _profile_cache: dict = {}

    def __init__(self, busy_power_w: dict[CpuConfig, float]) -> None:
        if not busy_power_w:
            raise RuntimeModelError("power table cannot be empty")
        self._busy_power_w = dict(busy_power_w)
        self._sweep_table: "SweepTable | None" = None

    @classmethod
    def profile(cls, platform: MobilePlatform) -> "PowerTable":
        """Build the table from a platform (the offline profiling step).

        Memoized on the platform's power-relevant state: the table only
        depends on cluster specs, OPP voltages, and the stock power
        model's coefficients, all immutable.
        """
        signature = _platform_power_signature(platform)
        if signature is not None:
            cached = cls._profile_cache.get(signature)
            if cached is not None:
                return cached
        table: dict[CpuConfig, float] = {}
        for config in platform.all_configs():
            spec = platform.cluster(config.cluster).spec
            opp = spec.opps.at(config.freq_mhz)
            table[config] = platform.power_model.core_dynamic_w(
                spec, opp
            ) + platform.power_model.cluster_static_w(spec, opp)
        result = cls(table)
        if signature is not None:
            cls._profile_cache[signature] = result
        return result

    def sweep_table(self) -> SweepTable:
        """The precomputed config table (built once, then cached)."""
        cached = self._sweep_table
        if cached is None:
            configs = tuple(self._busy_power_w)
            cluster_names = tuple(dict.fromkeys(c.cluster for c in configs))
            index = {name: i for i, name in enumerate(cluster_names)}
            cached = SweepTable(
                configs=configs,
                cluster_names=cluster_names,
                cluster_index=tuple(index[c.cluster] for c in configs),
                freqs_mhz=tuple(c.freq_mhz for c in configs),
                busy_power_w=tuple(self._busy_power_w[c] for c in configs),
            )
            self._sweep_table = cached
        return cached

    def busy_power_w(self, config: CpuConfig) -> float:
        """Busy power (watts) at ``config``.

        Raises:
            RuntimeModelError: for a configuration not in the table.
        """
        try:
            return self._busy_power_w[config]
        except KeyError:
            raise RuntimeModelError(f"no power entry for {config}") from None

    def configs(self) -> list[CpuConfig]:
        """All profiled configurations."""
        return list(self._busy_power_w)

    def frame_energy_j(self, config: CpuConfig, predicted_latency_us: float) -> float:
        """Predicted energy of a frame: busy power x predicted time."""
        if predicted_latency_us < 0:
            raise RuntimeModelError(f"negative latency: {predicted_latency_us}")
        return self.busy_power_w(config) * predicted_latency_us * 1e-6
