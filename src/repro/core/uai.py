"""User-agent intervention (UAI) against mis-annotation (paper Sec. 8).

"One potential vulnerability of exposing GreenWeb hints to developers
is that developers might place hints that lead to inefficient system
decisions ... a developer could set every event's QoS target to an
extremely low value, which causes the Web runtime always to operate at
the highest performance with maximal energy consumption.  ... One
candidate [UAI policy] is to specify an energy budget of any Web
application and ignore overly aggressive GreenWeb annotations once the
energy budget is consumed."

:class:`UaiGreenWebRuntime` implements that candidate policy on top of
the stock runtime: while the page stays within its energy budget,
annotations are honoured verbatim; once the budget is consumed, any
annotation whose target is *more aggressive* than the Table 1 default
for its category is clamped back to the default (the paper's
"ignore overly aggressive annotations"), and the per-event aggression
is reported for diagnostics.
"""

from __future__ import annotations


from repro.browser.messages import InputMsg
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import (
    SINGLE_LONG_DEFAULT,
    QoSSpec,
    QoSType,
    ResponseExpectation,
    UsageScenario,
)
from repro.core.runtime import GreenWebRuntime
from repro.errors import QosError
from repro.hardware.platform import MobilePlatform
from repro.web.events import Event


def default_target_for(spec: QoSSpec) -> QoSSpec:
    """The Table 1 default spec for a (possibly customised) spec's
    category — what UAI clamps an aggressive annotation back to."""
    if spec.qos_type is QoSType.CONTINUOUS:
        return QoSSpec.continuous()
    expectation = spec.expectation
    if expectation is None:
        # Infer the closest category from the annotated target: treat
        # anything tighter than the long-category default as "short".
        expectation = (
            ResponseExpectation.SHORT
            if spec.target.imperceptible_ms < SINGLE_LONG_DEFAULT.imperceptible_ms
            else ResponseExpectation.LONG
        )
    return QoSSpec.single(expectation)


def is_aggressive(spec: QoSSpec) -> bool:
    """True if the spec demands a *tighter* (lower-latency) target than
    its category default — the mis-annotation pattern Sec. 8 describes."""
    default = default_target_for(spec)
    return (
        spec.target.imperceptible_ms < default.target.imperceptible_ms
        or spec.target.usable_ms < default.target.usable_ms
    )


class UaiGreenWebRuntime(GreenWebRuntime):
    """GreenWeb runtime with a Sec. 8 energy-budget UAI policy.

    Args:
        energy_budget_j: the application's energy allowance.  While
            cumulative platform energy stays below it, annotations are
            honoured as-is; afterwards, aggressive targets are clamped
            to their Table 1 category defaults.
    """

    def __init__(
        self,
        platform: MobilePlatform,
        registry: AnnotationRegistry,
        scenario: UsageScenario = UsageScenario.IMPERCEPTIBLE,
        energy_budget_j: float = float("inf"),
        **kwargs,
    ) -> None:
        if energy_budget_j <= 0:
            raise QosError(f"energy budget must be positive, got {energy_budget_j}")
        super().__init__(platform, registry, scenario, **kwargs)
        self.energy_budget_j = energy_budget_j
        self.clamped_inputs = 0
        self.aggressive_inputs_seen = 0

    # ------------------------------------------------------------------
    @property
    def budget_exhausted(self) -> bool:
        """Whether the app has consumed its energy allowance."""
        return self.platform.meter.total_j >= self.energy_budget_j

    def on_input(self, msg: InputMsg, event: Event) -> None:
        spec = self.registry.lookup(event.target, event.type)
        if spec is not None and is_aggressive(spec):
            self.aggressive_inputs_seen += 1
            if self.budget_exhausted:
                # Intervene: pretend the annotation used the category
                # default.  We do this by entering the base runtime with
                # a patched registry view for this lookup.
                self.clamped_inputs += 1
                clamped = default_target_for(spec)
                self._dispatch_with_spec(msg, event, clamped)
                return
        super().on_input(msg, event)

    def _dispatch_with_spec(self, msg: InputMsg, event: Event, spec: QoSSpec) -> None:
        """Run the base on_input path with an overridden spec."""
        self.stats.inputs_seen += 1
        key = f"{msg.target_key}@{event.type}!uai"
        self.input_specs[msg.uid] = (spec, key)
        state = self._key_state(key)
        if state.frameless:
            return
        self._demanding[msg.uid] = key
        self._cancel_pending_idle()
        self.platform.set_config(self._config_for(key, spec))
