"""The two QoS abstractions: QoS type and QoS target (paper Sec. 3).

* **QoS type** (Sec. 3.2): whether user experience is judged by the
  responsiveness of one *single* response frame, or the smoothness of a
  *continuous* frame sequence.
* **QoS target** (Sec. 3.3): the performance level needed — an
  *imperceptible* frame latency ``TI`` beyond which extra speed adds no
  perceivable value, and a *usable* latency ``TU`` below which the app
  feels broken.

Table 1's three interaction categories give the default targets:

===================  ==============  ======================
category             (TI, TU)        typical interactions
===================  ==============  ======================
continuous           (16.6, 33.3) ms  T, M (animation/scroll)
single, short        (100, 300) ms    T (lightweight taps)
single, long         (1, 10) s        L, T (loads, heavy jobs)
===================  ==============  ======================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import QosError


class QoSType(enum.Enum):
    """Whether QoS is judged on one frame or a frame sequence."""

    SINGLE = "single"
    CONTINUOUS = "continuous"

    def __str__(self) -> str:
        return self.value


class ResponseExpectation(enum.Enum):
    """For ``single`` events: does the user expect a short or a long
    response period?  (Paper Sec. 3.3: lightweight interactions are
    expected to finish "instantly"; users tolerate seconds for jobs
    they know are heavy.)"""

    SHORT = "short"
    LONG = "long"

    def __str__(self) -> str:
        return self.value


class UsageScenario(enum.Enum):
    """The two evaluation scenarios (paper Sec. 7.1): *imperceptible*
    when battery is plentiful (target TI), *usable* when it is tight
    (target TU)."""

    IMPERCEPTIBLE = "imperceptible"
    USABLE = "usable"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class QoSTarget:
    """An (imperceptible, usable) frame-latency pair in milliseconds."""

    imperceptible_ms: float
    usable_ms: float

    def __post_init__(self) -> None:
        if self.imperceptible_ms <= 0 or self.usable_ms <= 0:
            raise QosError(f"QoS targets must be positive: {self}")
        if self.imperceptible_ms > self.usable_ms:
            raise QosError(
                f"imperceptible target ({self.imperceptible_ms} ms) must not exceed "
                f"usable target ({self.usable_ms} ms)"
            )

    def for_scenario(self, scenario) -> float:
        """The operative per-frame latency target (ms) for a scenario.

        ``scenario`` is either a static :class:`UsageScenario` or a
        live :class:`repro.scenarios.base.Scenario` object, whose
        operative target may vary with virtual time (evaluated at the
        scenario platform's current instant).  Duck-typed on purpose:
        the core QoS layer never imports the scenario engine.
        """
        if scenario is UsageScenario.IMPERCEPTIBLE:
            return self.imperceptible_ms
        if scenario is UsageScenario.USABLE:
            return self.usable_ms
        return scenario.operative_target_ms(self)

    def for_scenario_at(self, scenario, at_us: int) -> float:
        """Like :meth:`for_scenario`, evaluated at virtual time
        ``at_us`` (violation accounting samples the operative target at
        an event's *dispatch* time, not at collection time)."""
        if isinstance(scenario, UsageScenario):
            return self.for_scenario(scenario)
        return scenario.operative_target_ms(self, at_us=at_us)

    def __str__(self) -> str:
        return f"(TI={self.imperceptible_ms}ms, TU={self.usable_ms}ms)"


#: Table 1 defaults: continuous frames at 60 / 30 FPS.
CONTINUOUS_DEFAULT = QoSTarget(16.6, 33.3)
#: Table 1 defaults: single frame, short expected response.
SINGLE_SHORT_DEFAULT = QoSTarget(100.0, 300.0)
#: Table 1 defaults: single frame, long expected response.
SINGLE_LONG_DEFAULT = QoSTarget(1_000.0, 10_000.0)


@dataclass(frozen=True)
class QoSSpec:
    """A complete QoS specification for one (element, event) pair: the
    QoS type plus the target pair (defaulted per Table 1 when the
    annotation omits explicit values)."""

    qos_type: QoSType
    target: QoSTarget
    #: Only meaningful for SINGLE: the annotated expectation, if the
    #: annotation used the short/long keyword form.
    expectation: Optional[ResponseExpectation] = None

    def __post_init__(self) -> None:
        if self.qos_type is QoSType.CONTINUOUS and self.expectation is not None:
            raise QosError("continuous QoS has no short/long expectation")

    def target_ms(self, scenario) -> float:
        """Operative frame-latency target for the scenario (a
        :class:`UsageScenario` or a live scenario object; see
        :meth:`QoSTarget.for_scenario`)."""
        return self.target.for_scenario(scenario)

    def target_ms_at(self, scenario, at_us: int) -> float:
        """Operative target evaluated at virtual time ``at_us``."""
        return self.target.for_scenario_at(scenario, at_us)

    @classmethod
    def continuous(cls, target: Optional[QoSTarget] = None) -> "QoSSpec":
        """A ``continuous`` spec (Table 1 defaults unless overridden)."""
        return cls(QoSType.CONTINUOUS, target or CONTINUOUS_DEFAULT)

    @classmethod
    def single(
        cls,
        expectation: ResponseExpectation = ResponseExpectation.SHORT,
        target: Optional[QoSTarget] = None,
    ) -> "QoSSpec":
        """A ``single`` spec; target defaults from the expectation."""
        if target is None:
            target = (
                SINGLE_SHORT_DEFAULT
                if expectation is ResponseExpectation.SHORT
                else SINGLE_LONG_DEFAULT
            )
        return cls(QoSType.SINGLE, target, expectation)

    def __str__(self) -> str:
        kind = str(self.qos_type)
        if self.expectation is not None:
            kind += f",{self.expectation}"
        return f"{kind} {self.target}"


@dataclass(frozen=True)
class InteractionCategory:
    """One row of the paper's Table 1."""

    qos_type: QoSType
    target: QoSTarget
    description: str
    interactions: tuple[str, ...]


#: Paper Table 1 verbatim: the three QoS type x target categories.
TABLE1_CATEGORIES: tuple[InteractionCategory, ...] = (
    InteractionCategory(
        QoSType.CONTINUOUS,
        CONTINUOUS_DEFAULT,
        "QoS experience is evaluated by continuous frame latencies.",
        ("T", "M"),
    ),
    InteractionCategory(
        QoSType.SINGLE,
        SINGLE_SHORT_DEFAULT,
        "QoS experience is evaluated by single frame latency. "
        "Users expect short response period.",
        ("T",),
    ),
    InteractionCategory(
        QoSType.SINGLE,
        SINGLE_LONG_DEFAULT,
        "QoS experience is evaluated by single frame latency. "
        "Users expect long response period.",
        ("L", "T"),
    ),
)
