"""GreenWeb core: QoS abstractions, language extension, runtime, governors.

This package is the paper's primary contribution:

* :mod:`repro.core.qos` — the two QoS abstractions (Sec. 3): QoS type
  (single / continuous) and QoS target (imperceptible TI / usable TU),
  with the Table 1 defaults per interaction category.
* :mod:`repro.core.language` — the GreenWeb CSS extension (Sec. 4):
  ``E:QoS { on<event>-qos: ... }`` rules, parsed off the ordinary CSS
  object model.
* :mod:`repro.core.annotations` — the annotation registry mapping
  (element, event) pairs to QoS specifications under the cascade.
* :mod:`repro.core.perf_model` / :mod:`repro.core.energy_model` /
  :mod:`repro.core.predictor` — the runtime's predictive models
  (Sec. 6.2): the Xie et al. DVFS latency model fitted from two
  profiling runs, the statically profiled power table, and the
  minimum-energy configuration sweep.
* :mod:`repro.core.runtime` — the GreenWeb runtime (Sec. 6): per-frame
  operation, profiling, feedback adaptation, and energy conservation
  after the associated frames of an event are produced.
* :mod:`repro.core.governors` — the baselines (Sec. 7.1): Perf and the
  Android-style Interactive governor (plus extra reference policies).
"""

from repro.core.annotations import AnnotationRegistry
from repro.core.ebs import EbsGovernor
from repro.core.governors import (
    InteractiveGovernor,
    OndemandGovernor,
    PerfGovernor,
    PowersaveGovernor,
)
from repro.core.language import GreenWebAnnotation, extract_annotations
from repro.core.perf_model import PerfModelCoefficients, fit_dvfs_model
from repro.core.predictor import ConfigPredictor
from repro.core.qos import (
    CONTINUOUS_DEFAULT,
    SINGLE_LONG_DEFAULT,
    SINGLE_SHORT_DEFAULT,
    QoSSpec,
    QoSTarget,
    QoSType,
    ResponseExpectation,
    UsageScenario,
    TABLE1_CATEGORIES,
)
from repro.core.runtime import GreenWebRuntime
from repro.core.uai import UaiGreenWebRuntime

__all__ = [
    "QoSType",
    "QoSTarget",
    "QoSSpec",
    "ResponseExpectation",
    "UsageScenario",
    "CONTINUOUS_DEFAULT",
    "SINGLE_SHORT_DEFAULT",
    "SINGLE_LONG_DEFAULT",
    "TABLE1_CATEGORIES",
    "GreenWebAnnotation",
    "extract_annotations",
    "AnnotationRegistry",
    "PerfModelCoefficients",
    "fit_dvfs_model",
    "ConfigPredictor",
    "GreenWebRuntime",
    "UaiGreenWebRuntime",
    "EbsGovernor",
    "PerfGovernor",
    "InteractiveGovernor",
    "PowersaveGovernor",
    "OndemandGovernor",
]
