"""The GreenWeb language extension (paper Sec. 4, Fig. 3, Table 2).

GreenWeb extends CSS with one pseudo-class and one property family::

    GreenWebRule ::= Selector? { QoSDecl+ }
    Selector     ::= Element:QoS
    QoSDecl      ::= CDecl | SDecl
    CDecl        ::= on<event>-qos: continuous [, v, v]
    SDecl        ::= on<event>-qos: single, short|long | single, v, v

Semantics (Table 2):

* ``onevent-qos: continuous`` — once ``event`` fires on a selected
  element, continuously optimise every associated frame's latency;
  default targets TI=16.6 ms, TU=33.3 ms.
* ``onevent-qos: single, short|long`` — optimise the latency of the
  single frame the event causes; defaults (100, 300) ms for ``short``
  and (1, 10) s for ``long``.
* ``onevent-qos: continuous|single, ti, tu`` — explicit TI and TU in
  milliseconds.  Both values must appear or be omitted together.

This module extracts :class:`GreenWebAnnotation` records from a parsed
stylesheet; it deliberately reuses the stock CSS object model — the
whole point of the design is that GreenWeb *is* CSS (Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnnotationError
from repro.core.qos import (
    QoSSpec,
    QoSTarget,
    QoSType,
    ResponseExpectation,
)
from repro.web.css.selectors import Selector
from repro.web.css.stylesheet import Declaration, Stylesheet
from repro.web.css.tokenizer import CssToken, CssTokenType
from repro.web.events import EventType

#: Suffix of the GreenWeb property family.
QOS_PROPERTY_SUFFIX = "-qos"
#: Prefix of the event name inside the property (``onclick-qos``).
QOS_PROPERTY_PREFIX = "on"


@dataclass(frozen=True)
class GreenWebAnnotation:
    """One extracted GreenWeb annotation: *when ``event_type`` fires on
    elements matching ``selector``, apply ``spec``*."""

    selector: Selector
    event_type: EventType
    spec: QoSSpec
    #: source order of the enclosing rule, for cascade tie-breaking
    source_order: int = 0

    def __str__(self) -> str:
        return f"{self.selector} {{ on{self.event_type}-qos: {self.spec} }}"


def is_qos_property(prop: str) -> bool:
    """True if ``prop`` is a GreenWeb ``on<event>-qos`` property."""
    return prop.startswith(QOS_PROPERTY_PREFIX) and prop.endswith(QOS_PROPERTY_SUFFIX)


def event_type_of_property(prop: str) -> EventType:
    """Map ``onclick-qos`` -> :attr:`EventType.CLICK`.

    Raises:
        AnnotationError: if the embedded event name is unknown.
    """
    if not is_qos_property(prop):
        raise AnnotationError(f"{prop!r} is not a GreenWeb QoS property")
    name = prop[len(QOS_PROPERTY_PREFIX) : -len(QOS_PROPERTY_SUFFIX)]
    try:
        return EventType(name)
    except ValueError:
        raise AnnotationError(
            f"unknown event {name!r} in GreenWeb property {prop!r}; "
            f"supported: {[e.value for e in EventType]}"
        ) from None


def parse_qos_declaration(declaration: Declaration) -> QoSSpec:
    """Parse the value of an ``on<event>-qos`` declaration (Table 2).

    Raises:
        AnnotationError: on malformed values (with a description of the
            accepted forms).
    """
    tokens = [t for t in declaration.tokens if t.type is not CssTokenType.COMMA]
    if not tokens:
        raise AnnotationError(f"empty QoS declaration {declaration!r}")

    head = tokens[0]
    if head.type is not CssTokenType.IDENT or head.value.lower() not in (
        "continuous",
        "single",
    ):
        raise AnnotationError(
            f"QoS type must be 'continuous' or 'single', got {head.value!r} "
            f"in {declaration.property!r}"
        )
    qos_type = QoSType(head.value.lower())
    rest = tokens[1:]

    if qos_type is QoSType.CONTINUOUS:
        if not rest:
            return QoSSpec.continuous()
        target = _parse_target_pair(rest, declaration)
        return QoSSpec.continuous(target)

    # single
    if not rest:
        raise AnnotationError(
            f"'single' requires 'short'/'long' or explicit targets in "
            f"{declaration.property!r}"
        )
    if rest[0].type is CssTokenType.IDENT:
        keyword = rest[0].value.lower()
        if keyword not in ("short", "long"):
            raise AnnotationError(
                f"expected 'short' or 'long' after 'single', got {rest[0].value!r}"
            )
        if len(rest) > 1:
            raise AnnotationError(
                f"unexpected trailing values after 'single, {keyword}' in "
                f"{declaration.property!r}"
            )
        return QoSSpec.single(ResponseExpectation(keyword))
    target = _parse_target_pair(rest, declaration)
    return QoSSpec(QoSType.SINGLE, target)


def _parse_target_pair(tokens: list[CssToken], declaration: Declaration) -> QoSTarget:
    """Explicit TI/TU values: exactly two, milliseconds (Table 2: "both
    values must either appear or be omitted together")."""
    if len(tokens) != 2:
        raise AnnotationError(
            f"explicit QoS targets need exactly two values (TI, TU); got "
            f"{len(tokens)} in {declaration.property!r}: {declaration.value!r}"
        )
    values = []
    for token in tokens:
        if token.type is CssTokenType.NUMBER:
            values.append(token.numeric)
        elif token.type is CssTokenType.DIMENSION and token.unit == "ms":
            values.append(token.numeric)
        elif token.type is CssTokenType.DIMENSION and token.unit == "s":
            values.append(token.numeric * 1000.0)
        else:
            raise AnnotationError(
                f"QoS target must be a number (milliseconds), got {token.value!r}"
            )
    try:
        return QoSTarget(values[0], values[1])
    except Exception as exc:
        raise AnnotationError(f"invalid QoS target pair in {declaration!r}: {exc}") from exc


def extract_annotations(stylesheet: Stylesheet) -> list[GreenWebAnnotation]:
    """Pull every GreenWeb annotation out of a stylesheet.

    Only rules whose selector carries the ``:QoS`` pseudo-class are
    considered (Sec. 4.1); a ``on<event>-qos`` declaration inside a
    non-QoS rule is an authoring error and raises.
    """
    annotations: list[GreenWebAnnotation] = []
    for order, rule in enumerate(stylesheet.rules):
        qos_declarations = [d for d in rule.declarations if is_qos_property(d.property)]
        if not qos_declarations:
            continue
        if not rule.is_greenweb:
            raise AnnotationError(
                f"rule {rule} declares QoS properties but its selector lacks "
                f"the :QoS pseudo-class"
            )
        for selector in rule.selectors:
            if not selector.has_qos:
                continue
            for declaration in qos_declarations:
                annotations.append(
                    GreenWebAnnotation(
                        selector=selector,
                        event_type=event_type_of_property(declaration.property),
                        spec=parse_qos_declaration(declaration),
                        source_order=order,
                    )
                )
    return annotations


def annotation_to_css(annotation: GreenWebAnnotation) -> str:
    """Render an annotation back to GreenWeb CSS text (used by
    AutoGreen's generation phase)."""
    spec = annotation.spec
    if spec.qos_type is QoSType.CONTINUOUS:
        from repro.core.qos import CONTINUOUS_DEFAULT

        if spec.target == CONTINUOUS_DEFAULT:
            value = "continuous"
        else:
            value = (
                f"continuous, {_fmt(spec.target.imperceptible_ms)}, "
                f"{_fmt(spec.target.usable_ms)}"
            )
    elif spec.expectation is not None:
        value = f"single, {spec.expectation}"
    else:
        value = (
            f"single, {_fmt(spec.target.imperceptible_ms)}, "
            f"{_fmt(spec.target.usable_ms)}"
        )
    return f"{annotation.selector} {{ on{annotation.event_type}-qos: {value}; }}"


def _fmt(value: float) -> str:
    return f"{value:g}"
