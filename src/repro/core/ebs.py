"""Event-Based Scheduling (EBS) — the annotation-free point of
comparison from the paper's Sec. 9.

EBS (Zhu et al., HPCA 2015) trades event execution latency against
energy *without* QoS annotations: it measures each event's latency at
runtime and uses the measurement as a proxy for what users will
tolerate.  The paper's critique, verbatim:

    "If an event takes a long time to execute, EBS 'guesses' that it
    is an event for which users could naturally tolerate a long
    latency and, thus, decides to reduce CPU frequency.  However, the
    measured latency is merely an artifact of a particular mobile
    system's capability ... GreenWeb annotations express inherent user
    QoS expectations and thus provide definitive QoS constraints."

This implementation follows that description: per event key it tracks
the observed latency, derives a *tolerated* latency as a multiple of
the long-run observation, and picks the minimum-energy configuration
predicted to stay within it.  The circularity the paper criticises is
real and observable here: running slower inflates the next
measurement, which licenses running slower still, drifting QoS for
latency-tolerant-*looking* events (see ``bench_ablation_ebs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.browser.engine import BrowserPolicy
from repro.browser.frame_tracker import FrameRecord, InputRecord
from repro.browser.messages import InputMsg
from repro.core.energy_model import PowerTable
from repro.core.perf_model import ClusterModelSet, fit_dvfs_model
from repro.core.predictor import ConfigPredictor
from repro.errors import RuntimeModelError
from repro.hardware.dvfs import CpuConfig
from repro.hardware.platform import MobilePlatform
from repro.web.events import Event


@dataclass
class _EbsKeyState:
    """Per-event-key state: the latency EWMA and the fitted model."""

    observed_latency_us: Optional[float] = None
    models: ClusterModelSet = field(default_factory=ClusterModelSet)
    profile_sample: Optional[tuple[int, float]] = None
    phase: str = "profile-max"  # profile-max -> profile-min -> stable


class EbsGovernor(BrowserPolicy):
    """Annotation-free event-based scheduling.

    Args:
        tolerance_factor: how much slower than the *measured* latency
            an event is allowed to get (EBS's latency slack).
        latency_ewma_alpha: smoothing of the latency measurement.
    """

    def __init__(
        self,
        platform: MobilePlatform,
        tolerance_factor: float = 1.5,
        latency_ewma_alpha: float = 0.4,
        idle_config: Optional[CpuConfig] = None,
    ) -> None:
        if tolerance_factor < 1.0:
            raise RuntimeModelError("tolerance factor must be >= 1")
        if not 0 < latency_ewma_alpha <= 1:
            raise RuntimeModelError("EWMA alpha must be in (0, 1]")
        self.platform = platform
        self.tolerance_factor = tolerance_factor
        self.latency_ewma_alpha = latency_ewma_alpha
        self.power_table = PowerTable.profile(platform)
        self.predictor = ConfigPredictor(self.power_table)
        configs = platform.all_configs()
        self.idle_config = idle_config if idle_config is not None else configs[0]
        big = platform.cluster("big").spec
        little = platform.cluster("little").spec
        self._big_fmax = CpuConfig("big", big.opps.max.freq_mhz)
        self._big_fmin = CpuConfig("big", big.opps.min.freq_mhz)
        self._little_cycle_factor = big.ipc_factor / little.ipc_factor
        self._keys: dict[str, _EbsKeyState] = {}
        self._uid_keys: dict[int, str] = {}
        self._demanding: set[int] = set()
        self.decisions = 0

    # ------------------------------------------------------------------
    def bind(self, browser) -> None:
        super().bind(browser)
        self.platform.set_config(self.idle_config)

    def on_input(self, msg: InputMsg, event: Event) -> None:
        key = f"{msg.target_key}@{event.type}"
        self._uid_keys[msg.uid] = key
        self._demanding.add(msg.uid)
        self.platform.set_config(self._config_for(self._key_state(key)))

    def on_frame_scheduled(self, vsync_us: int, msgs: list[InputMsg]) -> None:
        for msg in msgs:
            key = self._uid_keys.get(msg.uid)
            if key is not None:
                self.platform.set_config(self._config_for(self._key_state(key)))
                return

    def on_frame_displayed(self, frame: FrameRecord) -> None:
        observed = float(frame.max_latency_us)
        for uid in frame.uids:
            key = self._uid_keys.get(uid)
            if key is None:
                continue
            state = self._key_state(key)
            self._learn(state, observed)
            break

    def on_input_complete(self, record: InputRecord) -> None:
        self._demanding.discard(record.uid)
        if not self._demanding:
            self.platform.set_config(self.idle_config)

    # ------------------------------------------------------------------
    def _key_state(self, key: str) -> _EbsKeyState:
        if key not in self._keys:
            self._keys[key] = _EbsKeyState()
        return self._keys[key]

    def _config_for(self, state: _EbsKeyState) -> CpuConfig:
        self.decisions += 1
        if state.phase == "profile-max":
            return self._big_fmax
        if state.phase == "profile-min":
            return self._big_fmin
        assert state.observed_latency_us is not None
        # The EBS guess: users tolerate tolerance_factor x what they
        # have been getting.  No notion of inherent QoS expectations.
        tolerated_ms = state.observed_latency_us * self.tolerance_factor / 1000.0
        prediction = self.predictor.predict(state.models, max(tolerated_ms, 0.001))
        return prediction.config

    def _learn(self, state: _EbsKeyState, observed_us: float) -> None:
        if state.phase == "profile-max":
            state.profile_sample = (self._big_fmax.freq_mhz, observed_us)
            state.phase = "profile-min"
        elif state.phase == "profile-min":
            assert state.profile_sample is not None
            fmax_mhz, latency_max = state.profile_sample
            big_model = fit_dvfs_model(
                fmax_mhz, latency_max, self._big_fmin.freq_mhz, observed_us
            )
            state.models.set("big", big_model)
            state.models.set(
                "little", big_model.scaled_cycles(self._little_cycle_factor)
            )
            state.phase = "stable"
        if state.observed_latency_us is None:
            state.observed_latency_us = observed_us
        else:
            alpha = self.latency_ewma_alpha
            state.observed_latency_us = (
                (1 - alpha) * state.observed_latency_us + alpha * observed_us
            )
