"""Shared state types for the GreenWeb runtime and its components.

Split out of :mod:`repro.core.runtime` so the components
(:mod:`repro.core.components`) and the runtime that composes them can
both import the per-key adaptive state without a circular import.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.perf_model import ClusterModelSet
from repro.core.predictor import Prediction
from repro.hardware.dvfs import CpuConfig


class _Phase(enum.Enum):
    PROFILE_MAX = "profile-max"
    PROFILE_MIN = "profile-min"
    #: extra phases used only with ``profile_both_clusters=True``: the
    #: little-cluster model is fitted from its own two profiling runs
    #: instead of being derived from the big fit via the IPC ratio.
    PROFILE_LITTLE_MAX = "profile-little-max"
    PROFILE_LITTLE_MIN = "profile-little-min"
    STABLE = "stable"


@dataclass
class _KeyState:
    """Adaptive state for one annotated (element, event) key."""

    phase: _Phase = _Phase.PROFILE_MAX
    models: ClusterModelSet = field(default_factory=ClusterModelSet)
    profile_sample: Optional[tuple[int, float]] = None  # (freq_mhz, latency_us)
    #: latencies observed so far in the current profiling phase
    profile_buffer: list[float] = field(default_factory=list)
    #: recent observed cycle counts per cluster (surge-aware predictor)
    recent_cycles: dict = field(default_factory=dict)
    #: consecutive inputs under this key that produced no frame at all
    frameless_inputs: int = 0
    #: set once the key is known to never produce frames (e.g. an
    #: annotated touchstart whose page has no touchstart listener);
    #: such keys stop driving configuration changes.
    frameless: bool = False
    boost: int = 0
    consecutive_mispredictions: int = 0
    overpredict_streak: int = 0
    last_prediction: Optional[Prediction] = None
    #: the configuration actually requested (after boost) and the
    #: model's latency prediction AT that configuration — feedback must
    #: judge the model against what actually ran, not against the
    #: pre-boost sweep winner.
    last_requested: Optional[tuple[CpuConfig, float]] = None
    profiling_runs: int = 0
    recalibrations: int = 0


@dataclass
class RuntimeStats:
    """Counters for reports and the ablation benchmarks."""

    inputs_seen: int = 0
    unannotated_inputs: int = 0
    predictions: int = 0
    profiling_frames: int = 0
    violations_fed_back: int = 0
    boosts_up: int = 0
    boosts_down: int = 0
    recalibrations: int = 0
    idle_drops: int = 0
