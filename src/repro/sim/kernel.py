"""The discrete-event simulation kernel.

A :class:`Kernel` owns a priority queue of timestamped callbacks and a
monotonically advancing integer clock (microseconds).  Components
schedule work with :meth:`Kernel.schedule_at` / :meth:`Kernel.schedule_in`
and the driver advances the simulation with :meth:`Kernel.run_until` /
:meth:`Kernel.run_for` / :meth:`Kernel.step`.

Ordering guarantees
-------------------
Events at the same timestamp fire in **insertion order** (a per-kernel
sequence number breaks ties).  This matters for the browser model: an
input arriving "at" a VSync tick must be processed after the tick if it
was scheduled later, exactly as a real event loop would interleave them.

Cancellation
------------
``schedule_*`` returns a :class:`ScheduledEvent` handle; cancelling it is
O(1) (the heap entry is tombstoned and skipped on pop).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SchedulingError

Action = Callable[[], None]

# Heap entries are plain (time_us, seq, event) tuples: the unique seq
# breaks every tie, so comparison never reaches the event object, and
# tuple comparison is several times cheaper than a dataclass with
# generated __lt__ — the heap push/pop pair is the kernel's hot path.
_HeapEntry = tuple[int, int, "ScheduledEvent"]


class ScheduledEvent:
    """Handle for a scheduled callback.

    Attributes:
        time_us: absolute firing time in microseconds.
        label: optional human-readable tag (shows up in kernel stats).
    """

    __slots__ = ("time_us", "action", "label", "_cancelled", "_fired")

    def __init__(self, time_us: int, action: Action, label: str = "") -> None:
        self.time_us = time_us
        self.action = action
        self.label = label
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether the event's action has already run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting in the queue."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a
        no-op; the handle just records both flags."""
        self._cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        tag = f" {self.label!r}" if self.label else ""
        return f"<ScheduledEvent t={self.time_us}us{tag} {state}>"


class Kernel:
    """Discrete-event simulation loop with an integer-microsecond clock."""

    def __init__(self, start_time_us: int = 0) -> None:
        if start_time_us < 0:
            raise SchedulingError("kernel start time must be non-negative")
        self._now_us = start_time_us
        self._heap: list[_HeapEntry] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now_us(self) -> int:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds (convenience)."""
        return self._now_us / 1_000

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, event in self._heap if event.pending)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_us: int, action: Action, label: str = "") -> ScheduledEvent:
        """Schedule ``action`` at absolute time ``time_us``.

        Raises:
            SchedulingError: if ``time_us`` is in the past.
        """
        if time_us < self._now_us:
            raise SchedulingError(
                f"cannot schedule at {time_us}us; clock is already at {self._now_us}us"
            )
        event = ScheduledEvent(time_us, action, label)
        heapq.heappush(self._heap, (time_us, self._seq, event))
        self._seq += 1
        return event

    def schedule_in(self, delay_us: int, action: Action, label: str = "") -> ScheduledEvent:
        """Schedule ``action`` after a relative delay (>= 0) in microseconds."""
        if delay_us < 0:
            raise SchedulingError(f"negative delay: {delay_us}us")
        # Inlined schedule_at (hot path): a non-negative delay can never
        # land in the past, so the past-time check is skipped.
        time_us = self._now_us + delay_us
        event = ScheduledEvent(time_us, action, label)
        heapq.heappush(self._heap, (time_us, self._seq, event))
        self._seq += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next live event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        while self._heap:
            time_us, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_us = time_us
            event._fired = True
            self._events_fired += 1
            event.action()
            return True
        return False

    def run_until(self, deadline_us: int) -> None:
        """Run all events with timestamp <= ``deadline_us``, then advance
        the clock to exactly ``deadline_us``.

        Actions may schedule further events; newly scheduled events inside
        the window are processed in the same call.
        """
        if deadline_us < self._now_us:
            raise SchedulingError(
                f"deadline {deadline_us}us is before current time {self._now_us}us"
            )
        if self._running:
            raise SchedulingError("kernel is not reentrant: run_until called from an action")
        self._running = True
        try:
            heap = self._heap
            heappop = heapq.heappop
            while heap:
                if heap[0][0] > deadline_us:
                    break
                time_us, _seq, event = heappop(heap)
                if event.cancelled:
                    continue
                self._now_us = time_us
                event._fired = True
                self._events_fired += 1
                event.action()
            self._now_us = deadline_us
        finally:
            self._running = False

    def run_for(self, duration_us: int) -> None:
        """Run the simulation forward by ``duration_us`` microseconds."""
        self.run_until(self._now_us + duration_us)

    # ------------------------------------------------------------------
    # Frontier primitives (used by :class:`repro.sim.batch.BatchRunner`)
    # ------------------------------------------------------------------
    def next_event_time_us(self) -> int | None:
        """Timestamp of the next live event, or ``None`` if the queue is
        empty.  Tombstoned (cancelled) heap heads are pruned as a side
        effect, so repeated peeks stay O(1) amortized."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2]._cancelled:
                heapq.heappop(heap)
                continue
            return head[0]
        return None

    def drain_until(self, limit_us: int) -> int | None:
        """Fire every event with timestamp <= ``limit_us`` in exactly the
        order :meth:`run_until` would, but leave the clock at the last
        fired event instead of advancing it to ``limit_us``.

        This is the building block for batched lockstep execution: the
        batch frontier repeatedly drains one kernel up to the next other
        kernel's event horizon.  Per-kernel fire order is identical to a
        scalar :meth:`run_until` because both walk the same heap with the
        same (time, seq) ordering.

        Returns:
            The timestamp of the next live event past ``limit_us``, or
            ``None`` if the queue is empty.
        """
        if self._running:
            raise SchedulingError("kernel is not reentrant: drain_until called from an action")
        self._running = True
        try:
            heap = self._heap
            heappop = heapq.heappop
            while heap:
                head = heap[0]
                if head[0] > limit_us:
                    if head[2]._cancelled:
                        heappop(heap)
                        continue
                    return head[0]
                time_us, _seq, event = heappop(heap)
                if event._cancelled:
                    continue
                self._now_us = time_us
                event._fired = True
                self._events_fired += 1
                event.action()
            return None
        finally:
            self._running = False

    def advance_clock(self, time_us: int) -> None:
        """Advance the clock to ``time_us`` without firing anything.

        Used by the batch frontier to finalize a window after
        :meth:`drain_until` has consumed every event inside it — the
        combination is equivalent to ``run_until(time_us)``.

        Raises:
            SchedulingError: if ``time_us`` is in the past or a live
                event is still pending at or before it.
        """
        if time_us < self._now_us:
            raise SchedulingError(
                f"cannot rewind clock to {time_us}us from {self._now_us}us"
            )
        pending = self.next_event_time_us()
        if pending is not None and pending <= time_us:
            raise SchedulingError(
                f"cannot advance clock past pending event at {pending}us"
            )
        self._now_us = time_us

    def drain(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue is empty.

        Args:
            max_events: safety valve against runaway self-rescheduling
                components (e.g. a VSync source that re-arms forever).

        Returns:
            The number of events fired.

        Raises:
            SchedulingError: if ``max_events`` is exceeded.
        """
        if self._running:
            raise SchedulingError("kernel is not reentrant: drain called from an action")
        fired = 0
        self._running = True
        try:
            while self.stepping_allowed():
                if not self._step_unlocked():
                    break
                fired += 1
                if fired > max_events:
                    raise SchedulingError(f"drain exceeded {max_events} events; runaway loop?")
        finally:
            self._running = False
        return fired

    def stepping_allowed(self) -> bool:
        """Hook point for subclasses; default always allows stepping."""
        return True

    def _step_unlocked(self) -> bool:
        while self._heap:
            time_us, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_us = time_us
            event._fired = True
            self._events_fired += 1
            event.action()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel t={self._now_us}us pending={self.pending_count}>"
