"""Export a :class:`~repro.sim.tracing.TraceLog` to Chrome trace format.

The JSON produced loads directly into ``chrome://tracing`` /
https://ui.perfetto.dev, giving the same kind of timeline view browser
engineers use on real Chromium: input events, frame lifecycles, DVFS
decisions, and animation spans on separate tracks.

Mapping:

* ``input`` records -> instant events on the "inputs" track;
* ``frame displayed`` records -> duration events spanning from the
  frame's VSync to its display (using the ``max_latency_us`` payload);
* ``dvfs`` / ``config`` records -> counter + instant events on the
  "cpu" track;
* ``animation`` start/end pairs -> duration events per animation.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import SimulationError
from repro.sim.tracing import TraceLog

#: trace-event "phases" (Chrome trace format)
_INSTANT = "i"
_COMPLETE = "X"
_COUNTER = "C"

_PID = 1
_TID_INPUT = 1
_TID_FRAME = 2
_TID_CPU = 3
_TID_ANIMATION = 4
_TID_TASK_BASE = 10  # per-context task tracks allocated from here


def to_chrome_trace(trace: TraceLog) -> list[dict[str, Any]]:
    """Convert a trace log into a list of Chrome trace events."""
    if trace.enabled and not trace.retaining:
        raise SimulationError(
            "cannot export a non-retaining (gated) trace log: records "
            "were streamed to subscribers and dropped; re-run with "
            "trace level 'full'"
        )
    events: list[dict[str, Any]] = [
        _meta(_TID_INPUT, "inputs"),
        _meta(_TID_FRAME, "frames"),
        _meta(_TID_CPU, "cpu config"),
        _meta(_TID_ANIMATION, "animations"),
    ]
    open_animations: dict[tuple[int, str], int] = {}
    task_tracks: dict[str, int] = {}

    for record in trace.records:
        if record.category == "input" and record.name != "complete":
            events.append(
                {
                    "name": f"input:{record.name}",
                    "ph": _INSTANT,
                    "ts": record.time_us,
                    "pid": _PID,
                    "tid": _TID_INPUT,
                    "s": "t",
                    "args": dict(record.data),
                }
            )
        elif record.category == "frame" and record.name == "displayed":
            latency = int(record.data.get("max_latency_us", 0))
            events.append(
                {
                    "name": f"frame {record.data.get('seq', '?')}",
                    "ph": _COMPLETE,
                    "ts": record.time_us - latency,
                    "dur": latency,
                    "pid": _PID,
                    "tid": _TID_FRAME,
                    "args": {k: _plain(v) for k, v in record.data.items()},
                }
            )
        elif record.category == "config" and record.name == "applied":
            events.append(
                {
                    "name": "config",
                    "ph": _INSTANT,
                    "ts": record.time_us,
                    "pid": _PID,
                    "tid": _TID_CPU,
                    "s": "t",
                    "args": dict(record.data),
                }
            )
            events.append(
                {
                    "name": "freq_mhz",
                    "ph": _COUNTER,
                    "ts": record.time_us,
                    "pid": _PID,
                    "args": {"freq_mhz": record.data.get("freq_mhz", 0)},
                }
            )
        elif record.category == "task" and record.name == "span":
            context = str(record.data.get("context", "cpu"))
            if context not in task_tracks:
                task_tracks[context] = _TID_TASK_BASE + len(task_tracks)
                events.append(_meta(task_tracks[context], f"thread: {context}"))
            run_start = int(record.data.get("run_start_us", record.time_us))
            events.append(
                {
                    "name": str(record.data.get("label") or "task"),
                    "ph": _COMPLETE,
                    "ts": run_start,
                    "dur": max(0, record.time_us - run_start),
                    "pid": _PID,
                    "tid": task_tracks[context],
                    "args": {k: _plain(v) for k, v in record.data.items()},
                }
            )
        elif record.category == "animation":
            key = (record.data.get("uid", -1), str(record.data.get("target", "")))
            if record.name == "start":
                open_animations[key] = record.time_us
            elif record.name == "end" and key in open_animations:
                start = open_animations.pop(key)
                events.append(
                    {
                        "name": f"animation:{record.data.get('kind', '?')}",
                        "ph": _COMPLETE,
                        "ts": start,
                        "dur": record.time_us - start,
                        "pid": _PID,
                        "tid": _TID_ANIMATION,
                        "args": {k: _plain(v) for k, v in record.data.items()},
                    }
                )
    return events


def export_chrome_trace(trace: TraceLog, path: str) -> int:
    """Write the Chrome trace JSON to ``path``; returns event count."""
    events = to_chrome_trace(trace)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


def _meta(tid: int, name: str) -> dict[str, Any]:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": _PID,
        "tid": tid,
        "args": {"name": name},
    }


def _plain(value: Any) -> Any:
    """JSON-encodable payload values (tuples -> lists, etc.)."""
    if isinstance(value, tuple):
        return list(value)
    return value
