"""Lockstep multi-kernel stepping on a shared virtual-time frontier.

A :class:`BatchRunner` advances N independent :class:`~repro.sim.kernel.Kernel`
instances through their simulation windows inside one process.  Sessions in
this codebase never share mutable state — each one owns its platform,
browser, and trace — so *any* interleaving of their event loops produces the
same per-session results.  The frontier exists to bound divergence: no
kernel's clock runs more than ``quantum_us`` ahead of the slowest active
kernel, which keeps memory for streaming consumers bounded and gives later
cross-session vectorization a window to operate on.

Ordering guarantee
------------------
Within one kernel, events fire in exactly the order a scalar
``Kernel.run_until`` would fire them: the frontier only chooses *which*
kernel runs next (earliest next-event time, ties broken by lane index), and
each lane drains its own heap with the unmodified (time, seq) ordering.
``tests/differential/test_kernel_ordering.py`` property-checks this against
randomized schedules, and the batch parity suite checks it end-to-end
through full sessions.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.errors import SchedulingError
from repro.sim.kernel import Kernel

#: How far (µs) one lane may run ahead of the global frontier before the
#: runner switches lanes.  Larger values amortize lane-switch overhead;
#: smaller values keep lane clocks tighter together.  50 ms ≈ three vsync
#: periods is enough to batch a whole frame's task chain per switch.
DEFAULT_QUANTUM_US = 50_000


class BatchRunner:
    """Advance many independent kernels in lockstep.

    Args:
        kernels: the lanes to step.  They must not share schedulable
            state — an action on one lane must never touch another lane's
            kernel (the parity harness exists to catch violations).
        quantum_us: lookahead slack past the global frontier granted to
            the running lane (see module docstring).
    """

    def __init__(self, kernels: Sequence[Kernel], quantum_us: int = DEFAULT_QUANTUM_US) -> None:
        if quantum_us < 0:
            raise SchedulingError(f"negative quantum: {quantum_us}us")
        self._kernels = list(kernels)
        self._quantum_us = quantum_us
        self._lane_switches = 0

    @property
    def kernels(self) -> tuple[Kernel, ...]:
        """The lanes, in index order."""
        return tuple(self._kernels)

    @property
    def lane_switches(self) -> int:
        """How many times :meth:`run_until` picked a lane off the frontier
        heap (introspection for tests and benchmarks)."""
        return self._lane_switches

    def frontier_us(self) -> int | None:
        """Earliest next-event time across all lanes, or ``None`` when
        every queue is empty."""
        times = [t for k in self._kernels if (t := k.next_event_time_us()) is not None]
        return min(times) if times else None

    def run_until(self, deadlines_us: Sequence[int] | int) -> None:
        """Run every lane to its deadline.

        Equivalent to calling ``kernel.run_until(deadline)`` on each lane
        in isolation: all events with timestamp <= the lane's deadline
        fire (in scalar order), then the lane's clock is advanced to
        exactly the deadline.

        Args:
            deadlines_us: one absolute deadline per lane, or a single
                value applied to all lanes.
        """
        kernels = self._kernels
        if isinstance(deadlines_us, int):
            deadlines = [deadlines_us] * len(kernels)
        else:
            deadlines = list(deadlines_us)
        if len(deadlines) != len(kernels):
            raise SchedulingError(
                f"{len(deadlines)} deadlines for {len(kernels)} kernels"
            )

        # Frontier heap of (next_event_time, lane_index).  Lanes with no
        # events inside their window finalize immediately.
        frontier: list[tuple[int, int]] = []
        for index, kernel in enumerate(kernels):
            next_us = kernel.next_event_time_us()
            if next_us is not None and next_us <= deadlines[index]:
                frontier.append((next_us, index))
            else:
                kernel.advance_clock(deadlines[index])
        heapq.heapify(frontier)

        quantum = self._quantum_us
        heappush = heapq.heappush
        heappop = heapq.heappop
        while frontier:
            _time_us, index = heappop(frontier)
            self._lane_switches += 1
            kernel = kernels[index]
            deadline = deadlines[index]
            # Run this lane until it would pass the next other lane's
            # horizon (plus quantum slack) or its own deadline.
            if frontier:
                limit = min(deadline, frontier[0][0] + quantum)
            else:
                limit = deadline
            next_us = kernel.drain_until(limit)
            if next_us is not None and next_us <= deadline:
                heappush(frontier, (next_us, index))
            else:
                kernel.advance_clock(deadline)

    def run_for(self, durations_us: Sequence[int] | int) -> None:
        """Run every lane forward by a duration (per-lane or shared)."""
        kernels = self._kernels
        if isinstance(durations_us, int):
            deadlines = [k.now_us + durations_us for k in kernels]
        else:
            if len(durations_us) != len(kernels):
                raise SchedulingError(
                    f"{len(durations_us)} durations for {len(kernels)} kernels"
                )
            deadlines = [k.now_us + d for k, d in zip(kernels, durations_us)]
        self.run_until(deadlines)
