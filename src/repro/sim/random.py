"""Named, seeded random-number streams.

Every stochastic element in the reproduction — callback work draws,
animation complexity surges, interaction inter-arrival jitter — pulls
from a *named* stream derived from a single experiment seed.  Two
consequences:

* experiments are bit-for-bit repeatable given a seed, and
* adding a new consumer of randomness does not perturb the draws seen
  by existing consumers (each name gets an independent generator).

Streams are ``numpy.random.Generator`` instances seeded with
``SeedSequence(seed).spawn()`` children keyed by a stable hash of the
stream name.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_hash(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (platform independent)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_seed(root: int, *keys: "int | str") -> int:
    """Derive a decorrelated 63-bit child seed from ``root`` and a key path.

    Used wherever one experiment seed must fan out into many independent
    sub-seeds — e.g. ``derive_seed(7, "fleet-session", 42)`` gives session
    42 of a fleet rooted at seed 7 its own workload seed.  The derivation
    is platform independent (string keys go through the same stable hash
    as stream names) and collision-resistant via ``SeedSequence``.
    """
    material = [int(root)]
    for key in keys:
        material.append(int(key) if isinstance(key, int) else _stable_hash(str(key)))
    entropy = np.random.SeedSequence(material).generate_state(1, dtype=np.uint64)[0]
    return int(entropy) % (2**63)


class RngStreams:
    """Factory of independent named RNG streams from one master seed."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical sequence.
        """
        if name not in self._streams:
            child_seed = np.random.SeedSequence([self._seed, _stable_hash(name)])
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """Derive a child factory (for per-application sub-seeding).

        The child seed goes through the same documented SeedSequence
        path as every other derivation (:func:`derive_seed`), not an
        ad-hoc multiply-add mix: forks are decorrelated from their
        siblings and from the parent's own streams by construction.
        """
        return RngStreams(seed=derive_seed(self._seed, name))
