"""Structured trace log.

Components append :class:`TraceRecord` entries (timestamp, category,
name, payload dict).  The evaluation harness computes every paper metric
from traces rather than from ad-hoc counters, which keeps the
measurement path uniform across governors and makes tests able to
assert on the exact sequence of platform decisions.

Because the measurement path *is* the hot path at population scale, a
``TraceLog`` supports three cost levels (see :meth:`TraceLog.for_level`):

* ``"full"`` — every record is constructed, retained in memory, and
  indexed per ``(category, name)`` so :meth:`filter`/:meth:`count`
  touch only matching records instead of scanning the whole log;
* ``"gated"`` — only an allowlisted set of categories is constructed
  and records are *not* retained: they flow to subscribers (streaming
  folds, see :mod:`repro.evaluation.folds`) and are dropped, so memory
  per session is constant;
* ``"off"`` — every emit is a no-op.

Hot emit sites should guard expensive payload construction with
:meth:`TraceLog.wants` so a gated or disabled log skips the formatting
work entirely, not just the record append.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional

from repro.errors import SimulationError

#: The trace levels :meth:`TraceLog.for_level` accepts.
TRACE_LEVELS: tuple[str, ...] = ("full", "gated", "off")

#: Default category allowlist for level ``"gated"``: what the
#: evaluation runner's streaming folds consume — input windows (active
#: energy accounting) and applied configurations (residency).  Every
#: figure and fleet aggregate derives from these plus non-trace
#: counters, which is why gating to this set leaves results unchanged.
GATED_CATEGORIES: frozenset[str] = frozenset({"input", "config"})


class TraceRecord:
    """A single trace entry.

    A ``__slots__`` class rather than a (frozen) dataclass: records are
    constructed on the emit hot path, and the generated frozen-dataclass
    ``__init__`` pays an ``object.__setattr__`` per field.

    Attributes:
        time_us: simulated timestamp.
        category: coarse source, e.g. ``"dvfs"``, ``"frame"``, ``"input"``.
        name: event name within the category, e.g. ``"migrate"``.
        data: free-form payload (kept small; values should be scalars).
    """

    __slots__ = ("time_us", "category", "name", "data")

    def __init__(
        self, time_us: int, category: str, name: str, data: Optional[dict] = None
    ) -> None:
        self.time_us = time_us
        self.category = category
        self.name = name
        self.data = data if data is not None else {}

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time_us == other.time_us
            and self.category == other.category
            and self.name == other.name
            and self.data == other.data
        )

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time_us={self.time_us!r}, category={self.category!r}, "
            f"name={self.name!r}, data={self.data!r})"
        )


class TraceLog:
    """Append-only in-memory trace with indexed category filters.

    Args:
        enabled: ``False`` makes every :meth:`emit` a no-op.
        categories: optional category allowlist ("gating"); records in
            other categories are never constructed.  ``None`` = all.
        retain: when ``False``, records are delivered to subscribers
            but not stored — :meth:`filter`/:meth:`count` see nothing
            and memory stays constant no matter how long the run is.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[Iterable[str]] = None,
        retain: bool = True,
    ) -> None:
        self.enabled = enabled
        self._categories = frozenset(categories) if categories is not None else None
        self._retain = retain
        self._records: list[TraceRecord] = []
        self._by_category: dict[str, list[TraceRecord]] = {}
        self._by_key: dict[tuple[str, str], list[TraceRecord]] = {}
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    @classmethod
    def for_level(
        cls, level: str, categories: Optional[Iterable[str]] = None
    ) -> "TraceLog":
        """Build a log for a named cost level.

        ``"full"`` retains and indexes everything; ``"gated"`` keeps
        only ``categories`` (default :data:`GATED_CATEGORIES`) and only
        for subscribers; ``"off"`` records nothing at all.
        """
        if level == "full":
            return cls()
        if level == "gated":
            return cls(
                categories=categories if categories is not None else GATED_CATEGORIES,
                retain=False,
            )
        if level == "off":
            return cls(enabled=False)
        raise SimulationError(
            f"unknown trace level {level!r}; known: {list(TRACE_LEVELS)}"
        )

    @property
    def retaining(self) -> bool:
        """Whether emitted records are stored for later scans."""
        return self._retain

    @property
    def categories(self) -> Optional[frozenset[str]]:
        """The category allowlist, or ``None`` when unrestricted."""
        return self._categories

    def wants(self, category: str) -> bool:
        """True when a record in ``category`` would be kept — the guard
        hot emit sites use to skip building payloads nobody will read."""
        if not self.enabled:
            return False
        return self._categories is None or category in self._categories

    def emit(self, time_us: int, category: str, name: str, **data: Any) -> None:
        """Append a record (no-op when disabled or gated out)."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        record = TraceRecord(time_us, category, name, data)
        if self._retain:
            self._records.append(record)
            by_category = self._by_category.get(category)
            if by_category is None:
                by_category = self._by_category[category] = []
            by_category.append(record)
            key = (category, name)
            by_key = self._by_key.get(key)
            if by_key is None:
                by_key = self._by_key[key] = []
            by_key.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live listener invoked on every emitted record."""
        self._subscribers.append(callback)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """All records, in emission order (do not mutate)."""
        return self._records

    def filter(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        since_us: int = 0,
        until_us: Optional[int] = None,
    ) -> list[TraceRecord]:
        """Return records matching the given constraints.

        Category/name lookups go through per-``(category, name)``
        indices, so the cost is proportional to the number of *matching*
        records, not the full log.
        """
        if category is not None and name is not None:
            candidates = self._by_key.get((category, name), [])
        elif category is not None:
            candidates = self._by_category.get(category, [])
        else:
            candidates = self._records
        if name is not None and category is None:
            candidates = [r for r in candidates if r.name == name]
        if since_us == 0 and until_us is None:
            return list(candidates)
        return [
            record
            for record in candidates
            if record.time_us >= since_us
            and (until_us is None or record.time_us <= until_us)
        ]

    def count(self, category: Optional[str] = None, name: Optional[str] = None) -> int:
        """Count records matching the constraints (index lookup when a
        category is given; never scans non-matching records)."""
        if category is not None and name is not None:
            return len(self._by_key.get((category, name), []))
        if category is not None:
            return len(self._by_category.get(category, []))
        if name is not None:
            return sum(1 for record in self._records if record.name == name)
        return len(self._records)

    def clear(self) -> None:
        """Drop all records (subscribers stay registered)."""
        self._records.clear()
        self._by_category.clear()
        self._by_key.clear()
