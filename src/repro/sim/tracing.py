"""Structured trace log.

Components append :class:`TraceRecord` entries (timestamp, category,
name, payload dict).  The evaluation harness computes every paper metric
from traces rather than from ad-hoc counters, which keeps the
measurement path uniform across governors and makes tests able to
assert on the exact sequence of platform decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Attributes:
        time_us: simulated timestamp.
        category: coarse source, e.g. ``"dvfs"``, ``"frame"``, ``"input"``.
        name: event name within the category, e.g. ``"migrate"``.
        data: free-form payload (kept small; values should be scalars).
    """

    time_us: int
    category: str
    name: str
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


class TraceLog:
    """Append-only in-memory trace with category filters.

    A ``TraceLog`` may be disabled (``enabled=False``) to make hot loops
    cheap in benchmarks that do not need the trace.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def emit(self, time_us: int, category: str, name: str, **data: Any) -> None:
        """Append a record (no-op when disabled)."""
        if not self.enabled:
            return
        record = TraceRecord(time_us, category, name, data)
        self._records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live listener invoked on every emitted record."""
        self._subscribers.append(callback)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        """All records, in emission order (do not mutate)."""
        return self._records

    def filter(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        since_us: int = 0,
        until_us: Optional[int] = None,
    ) -> list[TraceRecord]:
        """Return records matching the given constraints."""
        out = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if name is not None and record.name != name:
                continue
            if record.time_us < since_us:
                continue
            if until_us is not None and record.time_us > until_us:
                continue
            out.append(record)
        return out

    def count(self, category: Optional[str] = None, name: Optional[str] = None) -> int:
        """Count records matching the constraints."""
        return len(self.filter(category=category, name=name))

    def clear(self) -> None:
        """Drop all records (subscribers stay registered)."""
        self._records.clear()
