"""Discrete-event simulation kernel.

This package is the timing substrate for everything else in the
reproduction: the hardware platform, the browser engine, and the
GreenWeb runtime all advance on the same simulated clock.

Public surface:

* :class:`~repro.sim.kernel.Kernel` — the event loop.
* :class:`~repro.sim.clock.SimTime` helpers — all kernel-facing time is
  integer **microseconds** to keep event ordering exact.
* :class:`~repro.sim.tracing.TraceLog` — structured event log used by
  the evaluation harness and by tests.
* :class:`~repro.sim.random.RngStreams` — named, seeded RNG streams so
  every experiment is deterministic.
"""

from repro.sim.clock import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    ms_to_us,
    s_to_us,
    us_to_ms,
    us_to_s,
)
from repro.sim.batch import BatchRunner
from repro.sim.kernel import Kernel, ScheduledEvent
from repro.sim.random import RngStreams
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "BatchRunner",
    "Kernel",
    "ScheduledEvent",
    "TraceLog",
    "TraceRecord",
    "RngStreams",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "ms_to_us",
    "s_to_us",
    "us_to_ms",
    "us_to_s",
]
