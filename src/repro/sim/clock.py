"""Simulated time units and conversions.

The kernel's native unit is the integer microsecond.  Integers keep the
event heap totally ordered with no floating-point drift, which matters
because frame batching logic compares timestamps for exact equality
(e.g. "did this callback run before the VSync tick?").

Public API layers (benchmark reports, QoS targets) speak milliseconds;
these helpers do the conversions and centralise rounding policy: we
always round *up* when converting durations into kernel ticks so a
modelled duration is never silently shortened.
"""

from __future__ import annotations

import math

#: One microsecond in kernel ticks (the base unit).
MICROSECOND: int = 1
#: One millisecond in kernel ticks.
MILLISECOND: int = 1_000
#: One second in kernel ticks.
SECOND: int = 1_000_000


def ms_to_us(milliseconds: float) -> int:
    """Convert milliseconds to integer microseconds, rounding up.

    >>> ms_to_us(16.6)
    16600
    >>> ms_to_us(0.0001)
    1
    """
    if milliseconds < 0:
        raise ValueError(f"negative duration: {milliseconds} ms")
    if milliseconds == 0:
        return 0
    return max(1, math.ceil(milliseconds * MILLISECOND))


def s_to_us(seconds: float) -> int:
    """Convert seconds to integer microseconds, rounding up."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds} s")
    if seconds == 0:
        return 0
    return max(1, math.ceil(seconds * SECOND))


def us_to_ms(ticks: int) -> float:
    """Convert kernel ticks (microseconds) to float milliseconds."""
    return ticks / MILLISECOND


def us_to_s(ticks: int) -> float:
    """Convert kernel ticks (microseconds) to float seconds."""
    return ticks / SECOND
