"""The fleet driver: run a population of sessions across worker processes.

Execution model:

* the population is expanded and sharded deterministically by
  :class:`~repro.fleet.spec.FleetSpec` (never influenced by job count);
* shards run on a ``ProcessPoolExecutor`` (``jobs > 1``) or inline
  (``jobs == 1``) through the same
  :func:`~repro.fleet.worker.run_shard_job` entry point;
* at most ``jobs`` shards are in flight at once, so a shard's
  wall-clock deadline starts when it begins executing, not when it
  joins the queue; a crashed or hung shard is retried within a bounded
  budget and then recorded in the result, never fatal;
* partial aggregates merge in shard-index order, so the aggregate is
  bit-identical across job counts;
* with a checkpoint attached, every accepted partial is durably
  appended the moment it lands, and ``resume=True`` reloads completed
  shards and skips them — an interrupted-then-resumed run serialises
  byte-identically to an uninterrupted one;
* SIGINT/SIGTERM during a pooled run triggers a graceful stop: no new
  shards are submitted, in-flight workers are terminated, the
  checkpoint is flushed, and the partial result reports which signal
  stopped it (a second signal exits immediately);
* embedders (the ``repro serve`` daemon, progress heartbeats) can pass
  ``on_shard=`` to observe each accepted partial as it lands, ``stop=``
  (a :class:`threading.Event`) for a signal-free cooperative stop, and
  ``pool=`` (a :class:`repro.fleet.pool.WorkerPool`) to share one warm
  worker pool across many runs.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import EvaluationError
from repro.fleet.aggregate import FleetAggregate
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.pool import WorkerPool
from repro.fleet.spec import FleetSpec, Shard
from repro.fleet.worker import run_shard_job

#: How often the pool loop wakes to check shard deadlines (seconds).
_POLL_S = 0.05

#: ``on_shard`` callback type: (partial dict, accepted shard count so
#: far — resumed shards included, total shard count).
ShardCallback = Callable[[dict, int, int], None]


@dataclass
class ShardFailure:
    """A shard that exhausted its retry budget."""

    shard: int
    attempts: int
    error: str

    def to_dict(self) -> dict:
        return {"shard": self.shard, "attempts": self.attempts, "error": self.error}


@dataclass
class FleetResult:
    """Outcome of one fleet run."""

    sessions: int
    seed: int
    jobs: int
    #: lockstep width sessions advanced at (1 = scalar).  Execution
    #: fact only, like ``jobs`` — never serialised: batched and scalar
    #: runs are byte-identical.
    batch: int
    shard_size: int
    shards_total: int
    sessions_completed: int
    retries: int
    failures: list[ShardFailure]
    aggregate: FleetAggregate
    elapsed_s: float = 0.0
    #: shards reloaded from a checkpoint instead of executed
    resumed_shards: int = 0
    #: the signal number that gracefully stopped this run, else None.
    #: Execution fact only — like ``jobs`` and ``elapsed_s`` it never
    #: enters :meth:`to_dict`, so a resumed-to-completion run stays
    #: byte-identical to an uninterrupted one.
    interrupted: Optional[int] = None
    #: True when a cooperative ``stop`` event ended the run early
    #: (job cancellation, daemon drain).  Execution fact only, like
    #: ``interrupted`` — never serialised.
    stopped: bool = False

    @property
    def ok(self) -> bool:
        """True when every session of the population was aggregated."""
        return not self.failures and self.interrupted is None and not self.stopped

    def to_dict(self) -> dict:
        """Plain-data form.

        The ``fleet`` and ``aggregate`` sections depend only on the
        (population, seed) actually aggregated — wall-clock time and
        job count are deliberately excluded — so a clean (failure-free)
        run serialises byte-identically no matter how many workers ran
        it or how long they took.  The ``run`` section records what
        this particular execution did (completions, retries, failures);
        under failures it can differ across job counts, because the
        pooled backend has failure modes (shard deadlines, worker
        death) that cannot occur inline.
        """
        return {
            "fleet": {
                "sessions": self.sessions,
                "seed": self.seed,
                "shard_size": self.shard_size,
                "shards": self.shards_total,
            },
            "run": {
                "sessions_completed": self.sessions_completed,
                "retries": self.retries,
                "failed_shards": [failure.to_dict() for failure in self.failures],
            },
            "aggregate": self.aggregate.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


class Fleet:
    """Run a :class:`FleetSpec` population.

    >>> from repro.fleet import Fleet, FleetSpec, parse_mix
    >>> spec = FleetSpec(sessions=100, seed=7, mix=parse_mix("todo:greenweb,cnet:perf"))
    >>> result = Fleet(spec, jobs=4).run()
    >>> result.aggregate.energy_j.sum  # doctest: +SKIP

    ``checkpoint`` names a JSONL file (see
    :mod:`repro.fleet.checkpoint`) that durably records each accepted
    shard partial; ``resume=True`` reloads completed shards from it —
    refusing if it was written for a different spec fingerprint — and
    runs only the rest.

    ``on_shard(partial, accepted, total)`` is called for every accepted
    shard partial — resumed shards first (in shard-index order, before
    any fresh shard runs), then fresh ones in acceptance order.  It runs
    on the driver thread and must not raise.  ``stop`` is a
    :class:`threading.Event`; setting it stops the run gracefully (no
    new shards submitted, in-flight work dropped — unrecorded shards
    simply rerun on resume) with ``result.stopped`` set.  ``pool`` is a
    caller-owned :class:`~repro.fleet.pool.WorkerPool` to execute on;
    the driver never shuts it down (it rebuilds it when a hang, broken
    worker, or early stop leaves work in flight), so one warm pool can
    serve many sequential runs.
    """

    def __init__(
        self,
        spec: FleetSpec,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        pool: Optional[WorkerPool] = None,
        on_shard: Optional[ShardCallback] = None,
        stop: Optional[threading.Event] = None,
        batch: int = 1,
    ) -> None:
        if jobs <= 0:
            raise EvaluationError(f"fleet needs >= 1 job, got {jobs}")
        if batch <= 0:
            raise EvaluationError(f"fleet batch width must be >= 1, got {batch}")
        if resume and checkpoint is None:
            raise EvaluationError("resume requires a checkpoint path")
        self.spec = spec
        self.jobs = jobs
        #: lockstep width per worker: consecutive groups of this many
        #: sessions of a shard advance together on one batch frontier
        #: (see :mod:`repro.evaluation.batch`).  Byte-identical to the
        #: scalar path, so — like ``jobs`` — it is an execution knob
        #: that never enters the spec fingerprint: checkpoints written
        #: in either mode resume interchangeably in the other.
        self.batch = batch
        self.checkpoint = checkpoint
        self.resume = resume
        self.pool = pool
        self.on_shard = on_shard
        self.stop = stop
        self._accepted = 0
        self._total_shards = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        started = time.monotonic()
        shards = self.spec.shards()
        self._accepted = 0
        self._total_shards = len(shards)
        store: Optional[CheckpointStore] = None
        preloaded: dict[int, dict] = {}
        if self.checkpoint is not None:
            # Fingerprint validation happens here, before any shard (or
            # worker process) is started: a mismatched resume must fail
            # without doing any work.
            if self.resume:
                store = CheckpointStore.resume(
                    self.checkpoint, self.spec.fingerprint()
                )
            else:
                store = CheckpointStore.fresh(
                    self.checkpoint, self.spec.fingerprint()
                )
            preloaded = store.completed

        interrupted: Optional[int] = None
        stopped = False
        try:
            # Announce resumed shards (in shard-index order, before any
            # fresh shard runs) so progress heartbeats and streaming
            # consumers account for them immediately.
            for shard in shards:
                if shard.index in preloaded:
                    self._notify(preloaded[shard.index])
            todo = [shard for shard in shards if shard.index not in preloaded]
            if not todo:
                results, retries, failures = {}, 0, []
            elif self.pool is None and self.jobs == 1:
                results, retries, failures, interrupted, stopped = (
                    self._run_inline(todo, store)
                )
            else:
                results, retries, failures, interrupted, stopped = (
                    self._run_pooled(todo, store)
                )
            results.update(preloaded)
        finally:
            if store is not None:
                store.close()

        # Merge partials in shard-index order — the one fixed order that
        # makes float accumulation identical for every job count (and
        # for any interleaving of checkpointed and fresh shards).
        aggregate = FleetAggregate()
        sessions_completed = 0
        for shard in shards:
            partial = results.get(shard.index)
            if partial is not None:
                aggregate.merge(FleetAggregate.from_dict(partial["aggregate"]))
                sessions_completed += partial["sessions"]

        return FleetResult(
            sessions=self.spec.sessions,
            seed=self.spec.seed,
            jobs=self.jobs,
            batch=self.batch,
            shard_size=self.spec.shard_size,
            shards_total=len(shards),
            sessions_completed=sessions_completed,
            retries=retries,
            failures=sorted(failures, key=lambda f: f.shard),
            aggregate=aggregate,
            elapsed_s=time.monotonic() - started,
            resumed_shards=len(preloaded),
            interrupted=interrupted,
            stopped=stopped,
        )

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    def _notify(self, partial: dict) -> None:
        """Count one accepted partial and inform the observer."""
        self._accepted += 1
        if self.on_shard is not None:
            self.on_shard(partial, self._accepted, self._total_shards)

    def _stop_requested(self) -> bool:
        return self.stop is not None and self.stop.is_set()

    def _payload(self, shard: Shard, attempt: int) -> dict:
        payload = {
            "shard": shard.index,
            "attempt": attempt,
            "sessions": [
                spec.to_job(self.spec.settle_s, self.spec.trace_level)
                for spec in shard.sessions
            ],
        }
        if self.batch > 1:
            payload["batch"] = self.batch
        if self.spec.inject_crash is not None:
            payload["inject_crash"] = self.spec.inject_crash
        return payload

    def _run_inline(self, shards: list[Shard], store: Optional[CheckpointStore]):
        """Sequential backend: same shard granularity, same retry
        semantics, no processes (and hence no hang timeouts).

        Ctrl-C lands as a plain ``KeyboardInterrupt`` here (there are
        no workers to reap); the shard it interrupted is dropped — the
        checkpoint already holds every shard accepted before it.
        """
        results: dict[int, dict] = {}
        failures: list[ShardFailure] = []
        retries = 0
        interrupted: Optional[int] = None
        stopped = False
        try:
            for shard in shards:
                if self._stop_requested():
                    stopped = True
                    break
                for attempt in range(self.spec.max_retries + 1):
                    try:
                        partial = run_shard_job(self._payload(shard, attempt))
                    except Exception as exc:
                        if attempt < self.spec.max_retries:
                            retries += 1
                        else:
                            failures.append(
                                ShardFailure(shard.index, attempt + 1, repr(exc))
                            )
                    else:
                        results[shard.index] = partial
                        if store is not None:
                            store.record(partial)
                        self._notify(partial)
                        break
        except KeyboardInterrupt:
            interrupted = signal.SIGINT
        return results, retries, failures, interrupted, stopped

    def _run_pooled(self, shards: list[Shard], store: Optional[CheckpointStore]):
        """Process-pool backend with per-shard deadlines and retry.

        At most ``jobs`` shards are in flight at once, so every
        submitted shard lands on a free worker and its deadline clocks
        execution time, not queue wait — a fleet of any size can sit in
        the ready queue indefinitely without timing out.  A shard that
        does outlive its deadline cannot be interrupted through the
        future API; the worker pool is killed and rebuilt instead, so a
        hang frees its slot rather than silently shrinking capacity.

        SIGINT/SIGTERM get a graceful path: the first signal stops
        submission and breaks the loop — the shared ``finally``
        terminates every worker (hung ones included) and the run
        returns what it has, checkpoint already flushed.  The handler
        re-arms the default handlers as its first act, so a second
        signal exits immediately.

        With a caller-owned pool (``self.pool``), the same machinery
        runs on borrowed workers: the in-flight cap is the pool's
        worker count, a hang still rebuilds the pool (the pool object
        survives, only its processes are replaced), and teardown never
        shuts the pool down — it only rebuilds it when an early exit
        leaves shards in flight, so the next run starts from a clean
        pool instead of racing abandoned work.
        """
        owned = self.pool is None
        pool = self.pool if self.pool is not None else WorkerPool(self.jobs)
        cap = pool.workers
        by_index = {shard.index: shard for shard in shards}
        results: dict[int, dict] = {}
        failures: list[ShardFailure] = []
        retries = 0
        #: shards ready to run, as (shard_index, attempt)
        ready: deque[tuple[int, int]] = deque((shard.index, 0) for shard in shards)
        running: dict[Future, tuple[int, int, float]] = {}

        interrupted: list[int] = []
        stopped = False

        def handle_signal(signum: int, _frame) -> None:
            signal.signal(signal.SIGINT, signal.default_int_handler)
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            interrupted.append(signum)

        # Signal handlers can only be installed from the main thread; a
        # fleet driven from a worker thread just keeps the process's
        # existing disposition.
        previous: dict[int, object] = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, handle_signal)

        def submit_ready() -> None:
            while ready and len(running) < cap:
                shard_index, attempt = ready.popleft()
                future = pool.submit(
                    run_shard_job, self._payload(by_index[shard_index], attempt)
                )
                running[future] = (
                    shard_index,
                    attempt,
                    time.monotonic() + self.spec.shard_timeout_s,
                )

        def reschedule(shard_index: int, attempt: int, error: str) -> None:
            nonlocal retries
            if attempt < self.spec.max_retries:
                retries += 1
                ready.append((shard_index, attempt + 1))
            else:
                failures.append(ShardFailure(shard_index, attempt + 1, error))

        def requeue_running() -> None:
            # Innocent in-flight shards go back to the head of the
            # queue at the same attempt — no retry charge.
            for shard_index, attempt, _ in reversed(list(running.values())):
                ready.appendleft((shard_index, attempt))
            running.clear()

        try:
            while (ready or running) and not interrupted:
                if self._stop_requested():
                    stopped = True
                    break
                submit_ready()
                done, _ = wait(
                    set(running), timeout=_POLL_S, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    shard_index, attempt, _deadline = running.pop(future)
                    try:
                        partial = future.result()
                    except BrokenProcessPool as exc:
                        # A hard worker death poisons the whole pool and
                        # every in-flight future.  Rebuild the pool,
                        # charge a retry to the shard whose future broke,
                        # and resubmit innocent bystanders free of charge.
                        requeue_running()
                        reschedule(shard_index, attempt, repr(exc))
                        # Terminating the processes (not just shutting
                        # down) is what actually returns a dead or hung
                        # shard's slot to the pool.
                        pool.rebuild()
                        broken = True
                        break  # remaining `done` futures died with the pool
                    except Exception as exc:
                        reschedule(shard_index, attempt, repr(exc))
                    else:
                        results[shard_index] = partial
                        if store is not None:
                            store.record(partial)
                        self._notify(partial)
                if broken:
                    continue
                now = time.monotonic()
                expired = {
                    future: (shard_index, attempt)
                    for future, (shard_index, attempt, deadline) in running.items()
                    if now > deadline
                }
                if expired:
                    for future in expired:
                        del running[future]
                    requeue_running()
                    for shard_index, attempt in expired.values():
                        reschedule(
                            shard_index,
                            attempt,
                            f"shard {shard_index} exceeded "
                            f"{self.spec.shard_timeout_s}s deadline",
                        )
                    pool.rebuild()
        finally:
            # Every exit path — completion, interruption, an exception
            # in this loop — must leave zero abandoned worker processes
            # behind; plain ``shutdown`` would leak any worker stuck in
            # user code.  In-flight shards at interruption/stop are
            # simply dropped: unrecorded, they rerun on resume.  An
            # owned pool dies with the run; a borrowed pool belongs to
            # the caller and is only rebuilt (workers replaced, pool
            # kept) when an early exit left shards in flight.
            if owned:
                pool.shutdown()
            elif running:
                pool.rebuild()
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return (
            results,
            retries,
            failures,
            (interrupted[0] if interrupted else None),
            stopped,
        )
