"""The fleet driver: run a population of sessions across worker processes.

Execution model:

* the population is expanded and sharded deterministically by
  :class:`~repro.fleet.spec.FleetSpec` (never influenced by job count);
* shards run on a ``ProcessPoolExecutor`` (``jobs > 1``) or inline
  (``jobs == 1``) through the same
  :func:`~repro.fleet.worker.run_shard_job` entry point;
* at most ``jobs`` shards are in flight at once, so a shard's
  wall-clock deadline starts when it begins executing, not when it
  joins the queue; a crashed or hung shard is retried within a bounded
  budget and then recorded in the result, never fatal;
* partial aggregates merge in shard-index order, so the aggregate is
  bit-identical across job counts;
* with a checkpoint attached, every accepted partial is durably
  appended the moment it lands, and ``resume=True`` reloads completed
  shards and skips them — an interrupted-then-resumed run serialises
  byte-identically to an uninterrupted one;
* SIGINT/SIGTERM during a pooled run triggers a graceful stop: no new
  shards are submitted, in-flight workers are terminated, the
  checkpoint is flushed, and the partial result reports which signal
  stopped it (a second signal exits immediately).
"""

from __future__ import annotations

import json
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Optional

from repro.errors import EvaluationError
from repro.fleet.aggregate import FleetAggregate
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.spec import FleetSpec, Shard
from repro.fleet.worker import ignore_interrupts, run_shard_job

#: How often the pool loop wakes to check shard deadlines (seconds).
_POLL_S = 0.05


def _shutdown_pool(executor: ProcessPoolExecutor) -> None:
    """Stop a pool's workers for real, hung ones included.

    ``executor.shutdown`` never stops a worker stuck in user code, so
    every exit path — normal completion, deadline rebuild, exception,
    graceful interruption — must terminate the processes outright or a
    hung shard outlives the run as a leaked process.
    """
    processes = list(getattr(executor, "_processes", {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join()


@dataclass
class ShardFailure:
    """A shard that exhausted its retry budget."""

    shard: int
    attempts: int
    error: str

    def to_dict(self) -> dict:
        return {"shard": self.shard, "attempts": self.attempts, "error": self.error}


@dataclass
class FleetResult:
    """Outcome of one fleet run."""

    sessions: int
    seed: int
    jobs: int
    shard_size: int
    shards_total: int
    sessions_completed: int
    retries: int
    failures: list[ShardFailure]
    aggregate: FleetAggregate
    elapsed_s: float = 0.0
    #: shards reloaded from a checkpoint instead of executed
    resumed_shards: int = 0
    #: the signal number that gracefully stopped this run, else None.
    #: Execution fact only — like ``jobs`` and ``elapsed_s`` it never
    #: enters :meth:`to_dict`, so a resumed-to-completion run stays
    #: byte-identical to an uninterrupted one.
    interrupted: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True when every session of the population was aggregated."""
        return not self.failures and self.interrupted is None

    def to_dict(self) -> dict:
        """Plain-data form.

        The ``fleet`` and ``aggregate`` sections depend only on the
        (population, seed) actually aggregated — wall-clock time and
        job count are deliberately excluded — so a clean (failure-free)
        run serialises byte-identically no matter how many workers ran
        it or how long they took.  The ``run`` section records what
        this particular execution did (completions, retries, failures);
        under failures it can differ across job counts, because the
        pooled backend has failure modes (shard deadlines, worker
        death) that cannot occur inline.
        """
        return {
            "fleet": {
                "sessions": self.sessions,
                "seed": self.seed,
                "shard_size": self.shard_size,
                "shards": self.shards_total,
            },
            "run": {
                "sessions_completed": self.sessions_completed,
                "retries": self.retries,
                "failed_shards": [failure.to_dict() for failure in self.failures],
            },
            "aggregate": self.aggregate.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


class Fleet:
    """Run a :class:`FleetSpec` population.

    >>> from repro.fleet import Fleet, FleetSpec, parse_mix
    >>> spec = FleetSpec(sessions=100, seed=7, mix=parse_mix("todo:greenweb,cnet:perf"))
    >>> result = Fleet(spec, jobs=4).run()
    >>> result.aggregate.energy_j.sum  # doctest: +SKIP

    ``checkpoint`` names a JSONL file (see
    :mod:`repro.fleet.checkpoint`) that durably records each accepted
    shard partial; ``resume=True`` reloads completed shards from it —
    refusing if it was written for a different spec fingerprint — and
    runs only the rest.
    """

    def __init__(
        self,
        spec: FleetSpec,
        jobs: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        if jobs <= 0:
            raise EvaluationError(f"fleet needs >= 1 job, got {jobs}")
        if resume and checkpoint is None:
            raise EvaluationError("resume requires a checkpoint path")
        self.spec = spec
        self.jobs = jobs
        self.checkpoint = checkpoint
        self.resume = resume

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        started = time.monotonic()
        shards = self.spec.shards()
        store: Optional[CheckpointStore] = None
        preloaded: dict[int, dict] = {}
        if self.checkpoint is not None:
            # Fingerprint validation happens here, before any shard (or
            # worker process) is started: a mismatched resume must fail
            # without doing any work.
            if self.resume:
                store = CheckpointStore.resume(
                    self.checkpoint, self.spec.fingerprint()
                )
            else:
                store = CheckpointStore.fresh(
                    self.checkpoint, self.spec.fingerprint()
                )
            preloaded = store.completed

        interrupted: Optional[int] = None
        try:
            todo = [shard for shard in shards if shard.index not in preloaded]
            if not todo:
                results, retries, failures = {}, 0, []
            elif self.jobs == 1:
                results, retries, failures, interrupted = self._run_inline(
                    todo, store
                )
            else:
                results, retries, failures, interrupted = self._run_pooled(
                    todo, store
                )
            results.update(preloaded)
        finally:
            if store is not None:
                store.close()

        # Merge partials in shard-index order — the one fixed order that
        # makes float accumulation identical for every job count (and
        # for any interleaving of checkpointed and fresh shards).
        aggregate = FleetAggregate()
        sessions_completed = 0
        for shard in shards:
            partial = results.get(shard.index)
            if partial is not None:
                aggregate.merge(FleetAggregate.from_dict(partial["aggregate"]))
                sessions_completed += partial["sessions"]

        return FleetResult(
            sessions=self.spec.sessions,
            seed=self.spec.seed,
            jobs=self.jobs,
            shard_size=self.spec.shard_size,
            shards_total=len(shards),
            sessions_completed=sessions_completed,
            retries=retries,
            failures=sorted(failures, key=lambda f: f.shard),
            aggregate=aggregate,
            elapsed_s=time.monotonic() - started,
            resumed_shards=len(preloaded),
            interrupted=interrupted,
        )

    # ------------------------------------------------------------------
    # Execution backends
    # ------------------------------------------------------------------
    def _payload(self, shard: Shard, attempt: int) -> dict:
        payload = {
            "shard": shard.index,
            "attempt": attempt,
            "sessions": [
                spec.to_job(self.spec.settle_s, self.spec.trace_level)
                for spec in shard.sessions
            ],
        }
        if self.spec.inject_crash is not None:
            payload["inject_crash"] = self.spec.inject_crash
        return payload

    def _run_inline(self, shards: list[Shard], store: Optional[CheckpointStore]):
        """Sequential backend: same shard granularity, same retry
        semantics, no processes (and hence no hang timeouts).

        Ctrl-C lands as a plain ``KeyboardInterrupt`` here (there are
        no workers to reap); the shard it interrupted is dropped — the
        checkpoint already holds every shard accepted before it.
        """
        results: dict[int, dict] = {}
        failures: list[ShardFailure] = []
        retries = 0
        interrupted: Optional[int] = None
        try:
            for shard in shards:
                for attempt in range(self.spec.max_retries + 1):
                    try:
                        partial = run_shard_job(self._payload(shard, attempt))
                    except Exception as exc:
                        if attempt < self.spec.max_retries:
                            retries += 1
                        else:
                            failures.append(
                                ShardFailure(shard.index, attempt + 1, repr(exc))
                            )
                    else:
                        results[shard.index] = partial
                        if store is not None:
                            store.record(partial)
                        break
        except KeyboardInterrupt:
            interrupted = signal.SIGINT
        return results, retries, failures, interrupted

    def _run_pooled(self, shards: list[Shard], store: Optional[CheckpointStore]):
        """Process-pool backend with per-shard deadlines and retry.

        At most ``jobs`` shards are in flight at once, so every
        submitted shard lands on a free worker and its deadline clocks
        execution time, not queue wait — a fleet of any size can sit in
        the ready queue indefinitely without timing out.  A shard that
        does outlive its deadline cannot be interrupted through the
        future API; the worker pool is killed and rebuilt instead, so a
        hang frees its slot rather than silently shrinking capacity.

        SIGINT/SIGTERM get a graceful path: the first signal stops
        submission and breaks the loop — the shared ``finally``
        terminates every worker (hung ones included) and the run
        returns what it has, checkpoint already flushed.  The handler
        re-arms the default handlers as its first act, so a second
        signal exits immediately.
        """
        by_index = {shard.index: shard for shard in shards}
        results: dict[int, dict] = {}
        failures: list[ShardFailure] = []
        retries = 0
        #: shards ready to run, as (shard_index, attempt)
        ready: deque[tuple[int, int]] = deque((shard.index, 0) for shard in shards)
        running: dict[Future, tuple[int, int, float]] = {}
        executor = ProcessPoolExecutor(
            max_workers=self.jobs, initializer=ignore_interrupts
        )

        interrupted: list[int] = []

        def handle_signal(signum: int, _frame) -> None:
            signal.signal(signal.SIGINT, signal.default_int_handler)
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            interrupted.append(signum)

        # Signal handlers can only be installed from the main thread; a
        # fleet driven from a worker thread just keeps the process's
        # existing disposition.
        previous: dict[int, object] = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, handle_signal)

        def submit_ready() -> None:
            while ready and len(running) < self.jobs:
                shard_index, attempt = ready.popleft()
                future = executor.submit(
                    run_shard_job, self._payload(by_index[shard_index], attempt)
                )
                running[future] = (
                    shard_index,
                    attempt,
                    time.monotonic() + self.spec.shard_timeout_s,
                )

        def reschedule(shard_index: int, attempt: int, error: str) -> None:
            nonlocal retries
            if attempt < self.spec.max_retries:
                retries += 1
                ready.append((shard_index, attempt + 1))
            else:
                failures.append(ShardFailure(shard_index, attempt + 1, error))

        def requeue_running() -> None:
            # Innocent in-flight shards go back to the head of the
            # queue at the same attempt — no retry charge.
            for shard_index, attempt, _ in reversed(list(running.values())):
                ready.appendleft((shard_index, attempt))
            running.clear()

        def rebuild_pool() -> None:
            # Terminating the processes (not just shutting down) is
            # what actually returns a hung shard's slot to the pool.
            nonlocal executor
            _shutdown_pool(executor)
            executor = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=ignore_interrupts
            )

        try:
            while (ready or running) and not interrupted:
                submit_ready()
                done, _ = wait(
                    set(running), timeout=_POLL_S, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    shard_index, attempt, _deadline = running.pop(future)
                    try:
                        partial = future.result()
                    except BrokenProcessPool as exc:
                        # A hard worker death poisons the whole pool and
                        # every in-flight future.  Rebuild the pool,
                        # charge a retry to the shard whose future broke,
                        # and resubmit innocent bystanders free of charge.
                        requeue_running()
                        reschedule(shard_index, attempt, repr(exc))
                        rebuild_pool()
                        broken = True
                        break  # remaining `done` futures died with the pool
                    except Exception as exc:
                        reschedule(shard_index, attempt, repr(exc))
                    else:
                        results[shard_index] = partial
                        if store is not None:
                            store.record(partial)
                if broken:
                    continue
                now = time.monotonic()
                expired = {
                    future: (shard_index, attempt)
                    for future, (shard_index, attempt, deadline) in running.items()
                    if now > deadline
                }
                if expired:
                    for future in expired:
                        del running[future]
                    requeue_running()
                    for shard_index, attempt in expired.values():
                        reschedule(
                            shard_index,
                            attempt,
                            f"shard {shard_index} exceeded "
                            f"{self.spec.shard_timeout_s}s deadline",
                        )
                    rebuild_pool()
        finally:
            # Every exit path — completion, interruption, an exception
            # in this loop — must leave zero worker processes behind;
            # plain ``shutdown`` would leak any worker stuck in user
            # code.  In-flight shards at interruption are simply
            # dropped: unrecorded, they rerun on resume.
            _shutdown_pool(executor)
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return results, retries, failures, (interrupted[0] if interrupted else None)
