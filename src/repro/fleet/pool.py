"""Order-preserving parallel map over worker processes.

The light-weight sibling of the fleet driver: no sharding, retries, or
deadlines — just "run this picklable function over these items on N
processes and give me the results in order".  Figure regeneration
(``python -m repro figures --jobs N``) and other embarrassingly
parallel experiment matrices use this; anything that needs failure
isolation should use :class:`repro.fleet.Fleet` instead.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(fn: Callable[[T], R], items: Iterable[T], jobs: int = 1) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order.

    ``jobs <= 1`` runs inline (no processes, exact same results), so
    callers can thread a ``--jobs`` flag straight through.  ``fn`` must
    be a module-level callable and items/results picklable when
    ``jobs > 1``.
    """
    work: Sequence[T] = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work, chunksize=1))
