"""Worker-process pooling: parallel map and the shareable WorkerPool.

Two layers live here:

* :func:`parallel_map` — the light-weight sibling of the fleet driver:
  no sharding, retries, or deadlines — just "run this picklable
  function over these items on N processes and give me the results in
  order".  Figure regeneration (``python -m repro figures --jobs N``)
  and other embarrassingly parallel experiment matrices use this.
* :class:`WorkerPool` — a rebuildable ``ProcessPoolExecutor`` wrapper
  that can *outlive a single fleet run*.  The fleet driver uses a
  private one per run by default; the ``repro serve`` daemon owns one
  and hands it to every job's :class:`repro.fleet.Fleet`, so warm
  worker processes persist across jobs.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from repro.errors import EvaluationError

T = TypeVar("T")
R = TypeVar("R")


def terminate_executor(executor: ProcessPoolExecutor) -> None:
    """Stop a pool's workers for real, hung ones included.

    ``executor.shutdown`` never stops a worker stuck in user code, so
    every teardown path — normal completion, deadline rebuild,
    exception, graceful interruption — must terminate the processes
    outright or a hung shard outlives the run as a leaked process.
    """
    processes = list(getattr(executor, "_processes", {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join()


class WorkerPool:
    """A rebuildable process pool, shareable across fleet runs.

    ``executor`` is created lazily on first use, so a pool can be
    constructed cheaply at daemon startup.  :meth:`rebuild` terminates
    the current workers (the only way to reclaim a hung shard's slot)
    and provisions a fresh executor — the pool object itself stays
    usable, which is what lets a long-running daemon recover from a
    hang or drop a cancelled job's in-flight shards without losing the
    pool it shares across jobs.  :meth:`shutdown` ends the pool's life.
    """

    def __init__(self, workers: int, initializer: Optional[Callable[[], None]] = None):
        if workers <= 0:
            raise EvaluationError(f"worker pool needs >= 1 worker, got {workers}")
        self.workers = workers
        # Default lazily to the fleet worker's signal-disposition reset
        # (importing it at module load would be circular: worker pulls
        # in the evaluation package, which imports this module).
        self._initializer = initializer
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise EvaluationError("worker pool is shut down")
        if self._executor is None:
            if self._initializer is None:
                from repro.fleet.worker import ignore_interrupts

                self._initializer = ignore_interrupts
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, initializer=self._initializer
            )
        return self._executor

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Submit work, tracking the in-flight count.

        :attr:`in_flight` is what pool-utilization metrics report, so
        every path that resolves a future — success, worker exception,
        cancellation, pool breakage — must decrement it; the done
        callback fires on all of them.
        """
        future = self.executor.submit(fn, *args)
        with self._in_flight_lock:
            self._in_flight += 1
        future.add_done_callback(self._settle_in_flight)
        return future

    def _settle_in_flight(self, _future: "Future") -> None:
        with self._in_flight_lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        """Submitted-but-unresolved futures (pool utilization)."""
        with self._in_flight_lock:
            return self._in_flight

    def rebuild(self) -> None:
        """Terminate the current workers and start a fresh executor."""
        if self._executor is not None:
            terminate_executor(self._executor)
            self._executor = None
        if not self._closed:
            _ = self.executor

    def shutdown(self) -> None:
        """Terminate the workers and refuse further use."""
        self._closed = True
        if self._executor is not None:
            terminate_executor(self._executor)
            self._executor = None


def parallel_map(fn: Callable[[T], R], items: Iterable[T], jobs: int = 1) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order.

    ``jobs <= 1`` runs inline (no processes, exact same results), so
    callers can thread a ``--jobs`` flag straight through.  ``fn`` must
    be a module-level callable and items/results picklable when
    ``jobs > 1``.
    """
    work: Sequence[T] = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(fn, work, chunksize=1))
