"""Durable fleet checkpoints: survive interruption, resume, lose nothing.

A million-session fleet takes hours; a Ctrl-C, OOM kill, or pre-empted
CI runner must not throw the completed shards away.  The driver appends
each accepted shard partial to a :class:`CheckpointStore` the moment it
is accepted, and ``--resume`` reloads those partials on startup and
skips their shards.

File format — line-oriented JSON (JSONL), append-only:

* line 1 is a **header** record::

      {"kind": "header", "version": 1, "fingerprint": {...}}

  where ``fingerprint`` is :meth:`repro.fleet.spec.FleetSpec.fingerprint`
  — the result-determining spec fields (sessions, seed, mix, shard_size,
  settle_s, trace_level) plus a code/schema version.  A resume refuses
  a checkpoint whose fingerprint does not match the current spec: its
  shards would merge into a different population's aggregate.
* every further line is one completed shard's partial::

      {"kind": "shard", "shard": 3, "sessions": 8, "aggregate": {...}}

Durability: each record is written as one line, flushed, and fsync'd
before the driver moves on, so a crash loses at most the shard that was
in flight.  A record torn by a crash mid-write (partial line, invalid
JSON) is detected on resume, dropped together with anything after it,
and the file is truncated back to the last intact record — the dropped
shards simply rerun.  Because partials always merge in shard-index
order, a resumed run's aggregate is byte-identical to an uninterrupted
one.
"""

from __future__ import annotations

import json
import os
from typing import BinaryIO, Optional

from repro.errors import EvaluationError

#: Bump when the checkpoint *file format* (not the aggregate schema —
#: that lives in the fingerprint version) changes incompatibly.
CHECKPOINT_VERSION = 1


def _encode(record: dict) -> bytes:
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def scan_checkpoint(path: str) -> tuple[Optional[dict], dict[int, dict], int]:
    """Parse a checkpoint file, tolerating a torn tail.

    Returns ``(header, completed, intact_bytes)`` where ``completed``
    maps shard index to its partial (the exact dict shape
    :func:`repro.fleet.worker.run_shard_job` returns) and
    ``intact_bytes`` is the byte offset after the last intact record —
    everything past it is damage from an interrupted write and should
    be truncated away.  The first unreadable or incomplete record ends
    the scan; later lines are unreachable by the append-only writer's
    ordering guarantee, so nothing after damage is trusted.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    header: Optional[dict] = None
    completed: dict[int, dict] = {}
    intact_bytes = 0
    for raw in data.splitlines(keepends=True):
        if not raw.endswith(b"\n"):
            break  # torn final line: the writer died mid-record
        try:
            record = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            break
        if not isinstance(record, dict):
            break
        if header is None:
            if record.get("kind") != "header":
                raise EvaluationError(
                    f"{path} is not a fleet checkpoint (first record is "
                    f"not a header)"
                )
            header = record
        elif record.get("kind") == "shard":
            try:
                completed[int(record["shard"])] = {
                    "shard": int(record["shard"]),
                    "sessions": int(record["sessions"]),
                    "aggregate": record["aggregate"],
                }
            except (KeyError, TypeError, ValueError):
                break  # structurally damaged shard record: treat as torn
        # records of unknown kind are skipped but kept (forward compat)
        intact_bytes += len(raw)
    return header, completed, intact_bytes


class CheckpointStore:
    """Append-only shard-partial store backing ``--checkpoint/--resume``.

    Construct through :meth:`fresh` (truncate and start over) or
    :meth:`resume` (reload completed shards, validating the
    fingerprint); then :meth:`record` each accepted partial and
    :meth:`close` when the run ends.  ``completed`` holds the partials
    reloaded at open time, keyed by shard index.
    """

    def __init__(self, path: str, handle: BinaryIO, completed: dict[int, dict]):
        self.path = path
        self._handle: Optional[BinaryIO] = handle
        self.completed = completed

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def fresh(cls, path: str, fingerprint: dict) -> "CheckpointStore":
        """Start a new checkpoint at ``path``, truncating any old one."""
        handle = open(path, "wb")
        store = cls(path, handle, completed={})
        store._append(
            {"kind": "header", "version": CHECKPOINT_VERSION,
             "fingerprint": fingerprint}
        )
        return store

    @classmethod
    def resume(cls, path: str, fingerprint: dict) -> "CheckpointStore":
        """Reopen ``path``, reload its completed shards, repair a torn
        tail, and refuse on any fingerprint mismatch.

        A missing or empty file (the previous run died before its
        header hit disk) degrades to a fresh checkpoint — there is
        nothing durable to disagree with.
        """
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            return cls.fresh(path, fingerprint)
        header, completed, intact_bytes = scan_checkpoint(path)
        if header is None:
            raise EvaluationError(
                f"{path} is not a fleet checkpoint (unreadable header); "
                f"rerun without --resume to start over"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise EvaluationError(
                f"checkpoint {path} uses format version "
                f"{header.get('version')!r}, this build writes "
                f"{CHECKPOINT_VERSION}; rerun without --resume to start over"
            )
        stored = header.get("fingerprint")
        if stored != fingerprint:
            keys = sorted(set(fingerprint) | set(stored or {}))
            mismatched = [
                key for key in keys
                if (stored or {}).get(key) != fingerprint.get(key)
            ]
            raise EvaluationError(
                f"checkpoint {path} was written for a different fleet spec "
                f"(mismatched: {', '.join(mismatched)}); resuming would "
                f"merge incompatible shards — rerun without --resume to "
                f"start over"
            )
        if intact_bytes < os.path.getsize(path):
            # Torn tail from an interrupted write: truncate back to the
            # last intact record so appends continue from clean state.
            os.truncate(path, intact_bytes)
        return cls(path, open(path, "ab"), completed=completed)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self._handle is None:
            raise EvaluationError(f"checkpoint {self.path} is closed")
        self._handle.write(_encode(record))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, partial: dict) -> None:
        """Durably append one accepted shard partial (the dict returned
        by :func:`repro.fleet.worker.run_shard_job`)."""
        self._append(
            {
                "kind": "shard",
                "shard": partial["shard"],
                "sessions": partial["sessions"],
                "aggregate": partial["aggregate"],
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
