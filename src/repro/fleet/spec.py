"""Fleet population specs: what a simulated user population looks like.

A :class:`FleetSpec` describes a *population* of sessions as a weighted
mix of (application, governor, scenario, trace) cells plus a root seed.
Expansion is fully deterministic: session ``i`` of a fleet rooted at
seed ``s`` always gets the same cell and the same derived workload seed,
independent of how many worker processes later execute it.  Sharding is
equally deterministic and — crucially — independent of the job count,
so ``--jobs 1`` and ``--jobs 8`` partition (and therefore aggregate)
the population identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.errors import EvaluationError
from repro.policies import POLICIES
from repro.scenarios import SCENARIOS
from repro.sim.random import RngStreams, derive_seed
from repro.sim.tracing import TRACE_LEVELS
from repro.workloads.registry import APP_NAMES

#: Shard size used when a spec does not choose one.  Small enough that a
#: hundred-session fleet spreads across several workers, large enough
#: that per-shard process overhead stays negligible.
DEFAULT_SHARD_SIZE = 8

#: Bump whenever expansion, seeding, aggregation, or the serialised
#: aggregate schema changes in a result-affecting way: a checkpoint
#: written by older code must not silently merge with shards produced
#: by newer code.
#: v2: aggregate schema gained switching counts and per-cell groups.
FINGERPRINT_VERSION = 2

_TRACE_KINDS = ("micro", "full")


@dataclass(frozen=True)
class MixEntry:
    """One weighted cell of the population mix."""

    app: str
    governor: str = "greenweb"
    scenario: str = "imperceptible"
    trace_kind: str = "micro"
    weight: float = 1.0

    def validate(self) -> "MixEntry":
        """Validate every field and return the canonical entry.

        The governor and scenario are normalized through their
        registries, so ``greenweb(boost=0, ewma=0.25)`` and
        ``greenweb(ewma_alpha=0.25,boost=0)`` become the same canonical
        spec string — and likewise ``thermal(trip_ms=2000,cap_mhz=900)``
        and ``thermal(cap_mhz=900.0, trip_ms=2e3)``.  The canonical
        strings are what the fleet fingerprint hashes, making two
        parameterizations of one governor or scenario distinct
        populations.
        """
        if self.app not in APP_NAMES:
            raise EvaluationError(
                f"unknown application {self.app!r}; known: {list(APP_NAMES)}"
            )
        canonical_governor = POLICIES.normalize(self.governor).canonical()
        canonical_scenario = SCENARIOS.normalize(self.scenario).canonical()
        if self.trace_kind not in _TRACE_KINDS:
            raise EvaluationError(
                f"unknown trace kind {self.trace_kind!r}; use 'micro' or 'full'"
            )
        if not (self.weight > 0.0):
            raise EvaluationError(f"mix weight must be positive, got {self.weight}")
        if (canonical_governor, canonical_scenario) != (self.governor, self.scenario):
            return replace(
                self, governor=canonical_governor, scenario=canonical_scenario
            )
        return self

    @property
    def label(self) -> str:
        return f"{self.app}:{self.governor}:{self.scenario}:{self.trace_kind}"


def _split_outside_parens(text: str, sep: str) -> list[str]:
    """Split on ``sep`` occurrences not enclosed in parentheses, so
    parameterized governor and scenario specs
    (``greenweb(ewma=0.25,boost=2)``, ``thermal(cap_mhz=1100)``) pass
    through the mix grammar's ``,``/``:``/``=`` separators intact."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def parse_mix(text: str) -> list[MixEntry]:
    """Parse a ``--mix`` string into validated entries.

    Grammar: comma-separated items, each
    ``APP[:GOVERNOR[:SCENARIO[:TRACE]]][=WEIGHT]``, where GOVERNOR and
    SCENARIO may be parameterized specs (separators inside their
    parentheses do not split the item), e.g.::

        todo:greenweb=3,cnet:perf,amazon:greenweb(ewma=0.25):usable:full=0.5
        paperjs:greenweb:thermal(cap_mhz=1100,hot_load=0.2):micro=2
    """
    entries = []
    for raw in _split_outside_parens(text, ","):
        item = raw.strip()
        if not item:
            continue
        weight = 1.0
        weight_parts = _split_outside_parens(item, "=")
        if len(weight_parts) > 1:
            item = "=".join(weight_parts[:-1])
            weight_text = weight_parts[-1]
            try:
                weight = float(weight_text)
            except ValueError:
                raise EvaluationError(
                    f"bad mix weight {weight_text!r} in {raw.strip()!r}"
                ) from None
        parts = [part.strip() for part in _split_outside_parens(item, ":")]
        if len(parts) > 4:
            raise EvaluationError(
                f"bad mix item {raw.strip()!r}: expected "
                "APP[:GOVERNOR[:SCENARIO[:TRACE]]][=WEIGHT]"
            )
        defaults = MixEntry(app=parts[0])
        entries.append(
            MixEntry(
                app=parts[0],
                governor=parts[1] if len(parts) > 1 else defaults.governor,
                scenario=parts[2] if len(parts) > 2 else defaults.scenario,
                trace_kind=parts[3] if len(parts) > 3 else defaults.trace_kind,
                weight=weight,
            ).validate()
        )
    if not entries:
        raise EvaluationError(f"empty mix {text!r}")
    return entries


def default_mix() -> list[MixEntry]:
    """All twelve applications under GreenWeb and Perf, micro traces."""
    return [
        MixEntry(app=app, governor=governor)
        for app in APP_NAMES
        for governor in ("greenweb", "perf")
    ]


@dataclass(frozen=True)
class SessionSpec:
    """One fully-resolved session of the population."""

    index: int
    app: str
    governor: str
    scenario: str
    trace_kind: str
    seed: int

    def to_job(self, settle_s: float = 4.0, trace_level: str = "gated") -> dict:
        """The picklable :func:`repro.evaluation.runner.run_workload_job`
        argument for this session.

        Fleet sessions default to ``"gated"`` tracing: every aggregated
        metric is computed by streaming folds, so the result is
        identical to ``"full"`` while per-session memory stays constant
        (nobody reads a fleet session's raw trace).
        """
        return {
            "app": self.app,
            "governor": self.governor,
            "scenario": self.scenario,
            "trace_kind": self.trace_kind,
            "seed": self.seed,
            "settle_s": settle_s,
            "trace_level": trace_level,
        }


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of the population executed by one worker."""

    index: int
    sessions: tuple[SessionSpec, ...]

    def __len__(self) -> int:
        return len(self.sessions)


@dataclass
class FleetSpec:
    """A population of sessions plus the knobs that control its run."""

    sessions: int
    seed: int = 0
    mix: list[MixEntry] = field(default_factory=default_mix)
    shard_size: int = DEFAULT_SHARD_SIZE
    max_retries: int = 1
    shard_timeout_s: float = 300.0
    settle_s: float = 4.0
    #: tracing level for every session (see
    #: :data:`repro.sim.tracing.TRACE_LEVELS`); ``"gated"`` keeps
    #: per-session memory constant without changing any aggregate.
    trace_level: str = "gated"
    #: test-only fault injection, e.g. ``{"shard": 2, "attempts": 1}``
    #: (fail the first attempt of shard 2) with optional ``"mode"`` of
    #: ``"raise"`` (default) or ``"sleep"`` (hang past the timeout);
    #: ``"shard"`` may be a list to target several shards at once.
    inject_crash: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.sessions <= 0:
            raise EvaluationError(f"fleet needs >= 1 session, got {self.sessions}")
        if self.shard_size <= 0:
            raise EvaluationError(f"shard size must be positive, got {self.shard_size}")
        if self.max_retries < 0:
            raise EvaluationError(f"max_retries must be >= 0, got {self.max_retries}")
        if not self.mix:
            raise EvaluationError("fleet mix must not be empty")
        if self.trace_level not in TRACE_LEVELS:
            raise EvaluationError(
                f"unknown trace level {self.trace_level!r}; known: {list(TRACE_LEVELS)}"
            )
        # validate() canonicalizes governor specs, so re-bind the list:
        # the fingerprint below must hash canonical strings, never the
        # caller's spelling.
        self.mix = [entry.validate() for entry in self.mix]

    def fingerprint(self) -> dict:
        """The result-determining identity of this population.

        Two specs with equal fingerprints expand, shard, and aggregate
        identically, so their shard partials are interchangeable — this
        is the compatibility contract a resume checks before reusing
        checkpointed shards.  Execution knobs that cannot change any
        result (``max_retries``, ``shard_timeout_s``, job count, the
        test-only ``inject_crash``) are deliberately excluded: retrying
        an interrupted run with a longer timeout is exactly the
        situation resume exists for.
        """
        return {
            "version": FINGERPRINT_VERSION,
            "sessions": self.sessions,
            "seed": self.seed,
            "mix": [
                [entry.app, entry.governor, entry.scenario, entry.trace_kind,
                 entry.weight]
                for entry in self.mix
            ],
            "shard_size": self.shard_size,
            "settle_s": self.settle_s,
            "trace_level": self.trace_level,
        }

    # ------------------------------------------------------------------
    # Deterministic expansion
    # ------------------------------------------------------------------
    def expand(self) -> list[SessionSpec]:
        """Resolve the weighted mix into one spec per session.

        Session ``i`` draws its cell from the ``fleet/mix`` RNG stream of
        the root seed and derives its own workload seed, so the expansion
        depends only on (sessions, seed, mix) — never on job count.
        """
        weights = np.array([entry.weight for entry in self.mix], dtype=float)
        rng = RngStreams(self.seed).stream("fleet/mix")
        choices = rng.choice(len(self.mix), size=self.sessions, p=weights / weights.sum())
        specs = []
        for index, choice in enumerate(choices):
            entry = self.mix[int(choice)]
            specs.append(
                SessionSpec(
                    index=index,
                    app=entry.app,
                    governor=entry.governor,
                    scenario=entry.scenario,
                    trace_kind=entry.trace_kind,
                    seed=derive_seed(self.seed, "fleet-session", index),
                )
            )
        return specs

    def shards(self) -> list[Shard]:
        """Partition the expanded population into fixed-size shards."""
        specs = self.expand()
        return [
            Shard(index=shard_index, sessions=tuple(specs[start : start + self.shard_size]))
            for shard_index, start in enumerate(range(0, len(specs), self.shard_size))
        ]
