"""Mergeable streaming metrics for fleet runs.

A fleet of a million sessions cannot hold a million ``RunResult``
objects; it folds each session into constant-size *mergeable*
accumulators instead.  Every type here supports three operations —
``add`` (fold in one observation), ``merge`` (combine two partials),
and ``to_dict``/``from_dict`` (cross a process or JSON boundary) — and
merging partials in a fixed order reproduces the single-process result
bit for bit, which is what makes ``--jobs N`` invisible in the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import EvaluationError


@dataclass
class Accumulator:
    """Count / sum / min / max of a stream of floats."""

    count: int = 0
    sum: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Accumulator") -> None:
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Accumulator":
        return cls(
            count=data["count"], sum=data["sum"], min=data["min"], max=data["max"]
        )


@dataclass
class Histogram:
    """Fixed-bucket histogram over ``[lo, hi)`` with explicit overflow.

    Fixed bucket edges are what make two partial histograms mergeable by
    plain element-wise addition — no re-binning, no approximation.
    """

    lo: float
    hi: float
    buckets: int
    counts: list[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self) -> None:
        if self.hi <= self.lo or self.buckets <= 0:
            raise EvaluationError(
                f"bad histogram bounds [{self.lo}, {self.hi}) x {self.buckets}"
            )
        if not self.counts:
            self.counts = [0] * self.buckets
        elif len(self.counts) != self.buckets:
            raise EvaluationError(
                f"histogram has {len(self.counts)} counts for {self.buckets} buckets"
            )

    def edge(self, index: int) -> float:
        """The lower edge of bucket ``index`` (``edge(buckets) == hi``);
        bucket ``i`` covers ``[edge(i), edge(i+1))``."""
        return self.lo + (self.hi - self.lo) * index / self.buckets

    def add(self, value: float) -> None:
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            # The multiply-divide estimate can land one bucket off near
            # an edge (and round to index == buckets for values just
            # below hi); clamp, then nudge until the bucket's half-open
            # range actually contains the value.
            index = int((value - self.lo) / (self.hi - self.lo) * self.buckets)
            if index >= self.buckets:
                index = self.buckets - 1
            while index > 0 and value < self.edge(index):
                index -= 1
            while index + 1 < self.buckets and value >= self.edge(index + 1):
                index += 1
            self.counts[index] += 1

    def merge(self, other: "Histogram") -> None:
        if (other.lo, other.hi, other.buckets) != (self.lo, self.hi, self.buckets):
            raise EvaluationError(
                "cannot merge histograms with different bucket layouts: "
                f"[{self.lo}, {self.hi}) x {self.buckets} vs "
                f"[{other.lo}, {other.hi}) x {other.buckets}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.underflow += other.underflow
        self.overflow += other.overflow

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def to_dict(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets": self.buckets,
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        return cls(
            lo=data["lo"],
            hi=data["hi"],
            buckets=data["buckets"],
            counts=list(data["counts"]),
            underflow=data["underflow"],
            overflow=data["overflow"],
        )


#: Separator for :attr:`FleetAggregate.by_cell` keys.  Canonical policy
#: and scenario specs may contain ``(`` ``)`` ``,`` ``=`` but never
#: ``|`` — the spec grammar's parser alphabet excludes it, and
#: programmatic construction rejects it
#: (:class:`repro.policies.spec.PolicySpec` bans the fleet delimiters
#: in string parameter values).  :func:`cell_key` still guards, so a
#: future field that slips a ``|`` through fails loudly here instead of
#: producing a key :func:`split_cell_key` mis-parses.
CELL_SEP = "|"


def cell_key(app: str, scenario: str, governor: str) -> str:
    """The ``by_cell`` grouping key for one (app, scenario, policy)."""
    for field_name, value in (
        ("app", app), ("scenario", scenario), ("governor", governor)
    ):
        if CELL_SEP in value:
            raise EvaluationError(
                f"cell {field_name} {value!r} contains the reserved cell-key "
                f"delimiter {CELL_SEP!r}"
            )
    return f"{app}{CELL_SEP}{scenario}{CELL_SEP}{governor}"


def split_cell_key(key: str) -> tuple[str, str, str]:
    """Inverse of :func:`cell_key` (specs never contain ``|``)."""
    app, scenario, governor = key.split(CELL_SEP, 2)
    return app, scenario, governor


@dataclass
class GroupAggregate:
    """Per-group (governor, application, or cell) session statistics."""

    sessions: int = 0
    energy_j: Accumulator = field(default_factory=Accumulator)
    violation_pct: Accumulator = field(default_factory=Accumulator)
    freq_switches: int = 0
    migrations: int = 0

    def add_run(self, run: dict) -> None:
        self.sessions += 1
        self.energy_j.add(run["energy_j"])
        self.violation_pct.add(run["mean_violation_pct"])
        self.freq_switches += run.get("freq_switches", 0)
        self.migrations += run.get("migrations", 0)

    def merge(self, other: "GroupAggregate") -> None:
        self.sessions += other.sessions
        self.energy_j.merge(other.energy_j)
        self.violation_pct.merge(other.violation_pct)
        self.freq_switches += other.freq_switches
        self.migrations += other.migrations

    def to_dict(self) -> dict:
        return {
            "sessions": self.sessions,
            "energy_j": self.energy_j.to_dict(),
            "violation_pct": self.violation_pct.to_dict(),
            "freq_switches": self.freq_switches,
            "migrations": self.migrations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GroupAggregate":
        return cls(
            sessions=data["sessions"],
            energy_j=Accumulator.from_dict(data["energy_j"]),
            violation_pct=Accumulator.from_dict(data["violation_pct"]),
            freq_switches=data.get("freq_switches", 0),
            migrations=data.get("migrations", 0),
        )


def _violation_hist() -> Histogram:
    return Histogram(lo=0.0, hi=100.0, buckets=20)


def _energy_hist() -> Histogram:
    return Histogram(lo=0.0, hi=5.0, buckets=25)


def _latency_hist() -> Histogram:
    return Histogram(lo=0.0, hi=200.0, buckets=40)


@dataclass
class FleetAggregate:
    """Everything a fleet run reports, in constant memory.

    Fold sessions in with :meth:`add_run` (taking the plain-dict output
    of :func:`repro.evaluation.runner.run_workload_job`); combine shard
    partials with :meth:`merge`.
    """

    sessions: int = 0
    frames: int = 0
    inputs: int = 0
    energy_j: Accumulator = field(default_factory=Accumulator)
    active_energy_j: Accumulator = field(default_factory=Accumulator)
    violation_pct: Accumulator = field(default_factory=Accumulator)
    #: per-session mean QoS violation, % over target
    violation_hist: Histogram = field(default_factory=_violation_hist)
    #: per-session total energy, joules
    energy_hist: Histogram = field(default_factory=_energy_hist)
    #: per-session mean input-to-completion latency, milliseconds
    latency_hist: Histogram = field(default_factory=_latency_hist)
    freq_switches: int = 0
    migrations: int = 0
    by_governor: dict[str, GroupAggregate] = field(default_factory=dict)
    by_app: dict[str, GroupAggregate] = field(default_factory=dict)
    #: (app, scenario, governor) cells (see :func:`cell_key`) — the
    #: grouping the policy-comparison dashboard renders.
    by_cell: dict[str, GroupAggregate] = field(default_factory=dict)

    def add_run(self, run: dict) -> None:
        self.sessions += 1
        self.frames += run["frames"]
        self.inputs += run["inputs"]
        self.energy_j.add(run["energy_j"])
        self.active_energy_j.add(run["active_energy_j"])
        self.violation_pct.add(run["mean_violation_pct"])
        self.violation_hist.add(run["mean_violation_pct"])
        self.energy_hist.add(run["energy_j"])
        self.freq_switches += run.get("freq_switches", 0)
        self.migrations += run.get("migrations", 0)
        if run["inputs"]:
            self.latency_hist.add(1000.0 * run["active_time_s"] / run["inputs"])
        self.by_governor.setdefault(run["governor"], GroupAggregate()).add_run(run)
        self.by_app.setdefault(run["app"], GroupAggregate()).add_run(run)
        cell = cell_key(
            run["app"], run.get("scenario", "imperceptible"), run["governor"]
        )
        self.by_cell.setdefault(cell, GroupAggregate()).add_run(run)

    def merge(self, other: "FleetAggregate") -> None:
        self.sessions += other.sessions
        self.frames += other.frames
        self.inputs += other.inputs
        self.energy_j.merge(other.energy_j)
        self.active_energy_j.merge(other.active_energy_j)
        self.violation_pct.merge(other.violation_pct)
        self.violation_hist.merge(other.violation_hist)
        self.energy_hist.merge(other.energy_hist)
        self.latency_hist.merge(other.latency_hist)
        self.freq_switches += other.freq_switches
        self.migrations += other.migrations
        for name, group in other.by_governor.items():
            self.by_governor.setdefault(name, GroupAggregate()).merge(group)
        for name, group in other.by_app.items():
            self.by_app.setdefault(name, GroupAggregate()).merge(group)
        for name, group in other.by_cell.items():
            self.by_cell.setdefault(name, GroupAggregate()).merge(group)

    def to_dict(self) -> dict:
        """Plain-data form with deterministically sorted group keys."""
        return {
            "sessions": self.sessions,
            "frames": self.frames,
            "inputs": self.inputs,
            "energy_j": self.energy_j.to_dict(),
            "active_energy_j": self.active_energy_j.to_dict(),
            "violation_pct": self.violation_pct.to_dict(),
            "violation_hist": self.violation_hist.to_dict(),
            "energy_hist": self.energy_hist.to_dict(),
            "latency_hist": self.latency_hist.to_dict(),
            "freq_switches": self.freq_switches,
            "migrations": self.migrations,
            "by_governor": {
                name: self.by_governor[name].to_dict()
                for name in sorted(self.by_governor)
            },
            "by_app": {
                name: self.by_app[name].to_dict() for name in sorted(self.by_app)
            },
            "by_cell": {
                name: self.by_cell[name].to_dict() for name in sorted(self.by_cell)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetAggregate":
        return cls(
            sessions=data["sessions"],
            frames=data["frames"],
            inputs=data["inputs"],
            energy_j=Accumulator.from_dict(data["energy_j"]),
            active_energy_j=Accumulator.from_dict(data["active_energy_j"]),
            violation_pct=Accumulator.from_dict(data["violation_pct"]),
            violation_hist=Histogram.from_dict(data["violation_hist"]),
            energy_hist=Histogram.from_dict(data["energy_hist"]),
            latency_hist=Histogram.from_dict(data["latency_hist"]),
            freq_switches=data.get("freq_switches", 0),
            migrations=data.get("migrations", 0),
            by_governor={
                name: GroupAggregate.from_dict(group)
                for name, group in data["by_governor"].items()
            },
            by_app={
                name: GroupAggregate.from_dict(group)
                for name, group in data["by_app"].items()
            },
            by_cell={
                name: GroupAggregate.from_dict(group)
                for name, group in data.get("by_cell", {}).items()
            },
        )
