"""Fleet simulation: populations of sessions, run in parallel.

The single-session :class:`repro.Session` answers "what does governor G
do to application A?".  This package answers the production question:
"what happens across a whole *population* of users?" — a weighted mix
of applications, governors, and scenarios, fanned out over worker
processes and folded into constant-memory mergeable aggregates.

Quickstart::

    from repro.fleet import Fleet, FleetSpec, parse_mix

    spec = FleetSpec(sessions=1000, seed=7,
                     mix=parse_mix("todo:greenweb=3,cnet:perf"))
    result = Fleet(spec, jobs=4).run()
    print(result.aggregate.energy_j.sum,
          result.aggregate.by_governor["greenweb"].violation_pct.mean)

Guarantees:

* **Determinism** — the aggregate (and its JSON form) is byte-identical
  for any ``jobs`` value at the same (sessions, seed, mix).
* **Failure isolation** — a crashed or hung shard is retried up to a
  bound, then recorded in ``result.failures``; it never kills the run.
* **Constant memory** — only per-shard partial aggregates cross process
  boundaries, never per-session results.
* **Interruptibility** — with ``checkpoint=PATH`` each accepted shard
  partial is durably appended as it lands; SIGINT/SIGTERM stops the run
  gracefully (workers terminated, checkpoint flushed) and
  ``resume=True`` picks up where it left off, producing byte-identical
  output to an uninterrupted run.

CLI equivalent: ``python -m repro fleet --sessions 1000 --jobs 4
--seed 7 --mix "todo:greenweb=3,cnet:perf" --json-out fleet.json
--checkpoint fleet.ckpt`` (add ``--resume`` after an interruption).
"""

from repro.fleet.aggregate import (
    Accumulator,
    FleetAggregate,
    GroupAggregate,
    Histogram,
    cell_key,
    split_cell_key,
)
from repro.fleet.checkpoint import CHECKPOINT_VERSION, CheckpointStore, scan_checkpoint
from repro.fleet.driver import Fleet, FleetResult, ShardFailure
from repro.fleet.pool import WorkerPool, parallel_map
from repro.fleet.spec import (
    DEFAULT_SHARD_SIZE,
    FINGERPRINT_VERSION,
    FleetSpec,
    MixEntry,
    SessionSpec,
    Shard,
    default_mix,
    parse_mix,
)
from repro.fleet.worker import run_shard_job

__all__ = [
    "Accumulator",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "DEFAULT_SHARD_SIZE",
    "FINGERPRINT_VERSION",
    "Fleet",
    "FleetAggregate",
    "FleetResult",
    "FleetSpec",
    "GroupAggregate",
    "Histogram",
    "MixEntry",
    "SessionSpec",
    "Shard",
    "ShardFailure",
    "WorkerPool",
    "cell_key",
    "default_mix",
    "parallel_map",
    "parse_mix",
    "run_shard_job",
    "scan_checkpoint",
    "split_cell_key",
]
