"""Shard execution: the module-level entry point worker processes run.

:func:`run_shard_job` is deliberately boring — plain dict in, plain
dict out, importable without side effects — so a ``ProcessPoolExecutor``
can pickle it by reference and a future RPC backend could call it over
the wire unchanged.  Each shard runs its sessions sequentially in
population order and folds them into one partial
:class:`~repro.fleet.aggregate.FleetAggregate`, which is all that
crosses back to the driver: memory per shard is constant in the number
of sessions.
"""

from __future__ import annotations

import signal
import time

from repro.evaluation.batch import run_workload_jobs_batched
from repro.evaluation.runner import run_workload_job
from repro.fleet.aggregate import FleetAggregate


def ignore_interrupts() -> None:
    """Pool-worker initializer: interruption belongs to the driver.

    A terminal Ctrl-C delivers SIGINT to the whole foreground process
    group — workers included.  The driver owns the shutdown sequence
    (stop submitting, flush the checkpoint, terminate the workers), so
    workers ignore SIGINT and wait to be terminated instead of dying
    mid-shard and poisoning the pool with ``BrokenProcessPool`` noise.

    SIGTERM is reset to the default action for the opposite reason:
    fork copies the parent's signal dispositions, so without the reset
    a worker forked after the driver installed its graceful SIGTERM
    handler would *survive* ``process.terminate()`` — the handler just
    sets a flag that nothing in the worker reads — and every shutdown
    would stall out the five-second join before escalating to SIGKILL.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def _maybe_inject_crash(payload: dict) -> None:
    """Test-only fault hook: fail this shard's first N attempts.

    ``inject_crash = {"shard": i, "attempts": n, "mode": "raise"|"sleep"}``
    makes shard ``i`` misbehave while ``attempt < n`` — either raising
    (a worker crash) or sleeping past the shard timeout (a hang); a
    list value for ``"shard"`` targets several shards at once (e.g. to
    hang every worker simultaneously).  The driver's retry/timeout
    machinery is exercised by real failures, not mocks, yet production
    payloads never set the key.
    """
    crash = payload.get("inject_crash")
    if not crash:
        return
    targets = crash.get("shard")
    if not isinstance(targets, (list, tuple)):
        targets = [targets]
    if payload["shard"] not in targets:
        return
    if payload.get("attempt", 0) >= crash.get("attempts", 1):
        return
    if crash.get("mode", "raise") == "sleep":
        time.sleep(float(crash.get("sleep_s", 60.0)))
    else:
        raise RuntimeError(
            f"injected crash in shard {payload['shard']} "
            f"(attempt {payload.get('attempt', 0)})"
        )


def run_shard_job(payload: dict) -> dict:
    """Run one shard and return its partial aggregate as plain data.

    Payload keys: ``shard`` (index), ``sessions`` (list of
    ``run_workload_job`` argument dicts, population order), ``attempt``
    (0-based retry counter, driver-provided), ``batch`` (lockstep
    width; consecutive groups of this many sessions advance together
    through :func:`repro.evaluation.batch.run_workload_jobs_batched` —
    byte-identical to the scalar path, so it never enters the spec
    fingerprint), and the optional test-only ``inject_crash``.
    """
    _maybe_inject_crash(payload)
    aggregate = FleetAggregate()
    sessions = payload["sessions"]
    batch = payload.get("batch", 1)
    if batch > 1:
        # Population order is preserved: chunks are consecutive and the
        # batched runner returns results in input order, so aggregate
        # float accumulation order matches the scalar loop exactly.
        for start in range(0, len(sessions), batch):
            for result in run_workload_jobs_batched(sessions[start : start + batch]):
                aggregate.add_run(result)
    else:
        for job in sessions:
            aggregate.add_run(run_workload_job(job))
    return {
        "shard": payload["shard"],
        "sessions": len(payload["sessions"]),
        "aggregate": aggregate.to_dict(),
    }
