"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``apps`` — list the twelve Table 3 applications with their metadata.
* ``run APP`` — run one (application, governor, scenario) cell and
  print the scorecard; ``--export-trace out.json`` additionally writes
  a Chrome-trace timeline loadable in chrome://tracing or Perfetto.
* ``figures`` — regenerate the paper's figures/tables (all, or a
  selection) as text, with ASCII bar charts for the energy figures;
  ``--jobs N`` fans the experiment matrix out over N worker processes.
* ``fleet`` — simulate a *population* of sessions (a weighted mix of
  apps x governors x scenarios) in parallel shards with streaming
  aggregation; ``--json-out`` writes the deterministic summary and
  ``--progress`` draws a live stderr heartbeat.
* ``serve`` — run the fleet-as-a-service HTTP daemon: submit jobs over
  ``POST /jobs``, stream live aggregates over SSE, browse HTML
  dashboards; in-flight jobs resume after a restart.
* ``checkpoint inspect PATH`` — describe a fleet checkpoint journal
  (fingerprint, completed shards, torn-tail status) without running
  anything.
* ``autogreen APP`` — run AutoGreen on the unannotated application and
  print the generated GreenWeb CSS.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time

from repro.errors import ReproError
from repro.evaluation.runner import run_workload
from repro.ioutil import probe_writable, write_file_atomic
from repro.policies import POLICIES
from repro.scenarios import SCENARIOS, build_live_scenario
from repro.sim.tracing import TRACE_LEVELS
from repro.workloads.registry import APP_NAMES, build_app, table3_specs


def _cmd_apps(_args: argparse.Namespace) -> int:
    print(f"{'name':12s} {'interaction':12s} {'QoS type':11s} {'target':16s} "
          f"{'events':>6s} {'time':>5s} {'annot%':>7s}")
    for spec in table3_specs():
        print(
            f"{spec.name:12s} {str(spec.micro_interaction):12s} "
            f"{str(spec.micro_qos_type):11s} {spec.micro_target_label:16s} "
            f"{spec.full_events:6d} {spec.full_duration_s:4d}s {spec.annotation_pct:6.1f}%"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.export_trace:
        # Validate the output path before the simulation, not after:
        # a typo'd path must fail in milliseconds, not minutes.
        probe_writable(args.export_trace, "--export-trace")
    result = run_workload(
        args.app,
        args.governor,
        args.scenario,
        trace_kind=args.trace,
        seed=args.seed,
        trace_level=args.trace_level,
    )
    print(f"app:            {result.app} ({result.trace_kind} trace, seed {args.seed})")
    print(f"governor:       {result.governor} / {result.scenario}")
    print(f"duration:       {result.duration_s:.1f} s simulated")
    print(f"inputs/frames:  {result.inputs} / {result.frames} "
          f"({result.skipped_vsyncs} skipped vsyncs)")
    print(f"energy:         {result.energy_j:.3f} J total, "
          f"{result.active_energy_j * 1000:.1f} mJ in interaction windows")
    print(f"QoS violations: {result.mean_violation_pct:.2f}% mean over "
          f"{result.annotated_events} annotated events")
    print(f"switching:      {result.freq_switches} frequency, "
          f"{result.migrations} migrations")
    residency = sorted(
        result.config_residency.items(), key=lambda kv: kv[1], reverse=True
    )
    shown = ", ".join(f"{config}={fraction:.0%}" for config, fraction in residency[:4])
    print(f"residency:      {shown}")
    if result.runtime_stats:
        print(f"runtime:        {result.runtime_stats}")

    if args.export_trace:
        count = _export_trace(args)
        print(f"chrome trace:   {args.export_trace} ({count} events)")
    return 0


def _export_trace(args: argparse.Namespace) -> int:
    """Re-run with trace retention and export a Chrome-trace JSON."""
    from repro.browser.engine import Browser
    from repro.core.annotations import AnnotationRegistry
    from repro.evaluation.runner import make_policy
    from repro.hardware.platform import odroid_xu_e
    from repro.sim.clock import s_to_us
    from repro.sim.trace_export import export_chrome_trace
    from repro.workloads.interactions import InteractionDriver

    bundle = build_app(args.app, args.seed)
    trace_obj = bundle.micro_trace if args.trace == "micro" else bundle.full_trace
    platform = odroid_xu_e(record_power_intervals=False)
    platform.record_task_spans = True  # per-thread timeline tracks
    scenario = build_live_scenario(args.scenario, platform, seed=args.seed)
    registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
    policy = make_policy(args.governor, platform, registry, scenario)
    browser = Browser(platform, bundle.page, policy=policy)
    scenario.attach(browser)
    driver = InteractionDriver(browser)
    driver.schedule(trace_obj)
    platform.run_for(trace_obj.duration_us + s_to_us(4))
    return export_chrome_trace(platform.trace, args.export_trace)


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.evaluation import experiments
    from repro.evaluation import report

    which = set(args.only) if args.only else {
        "table1", "fig9", "fig10", "fig11", "fig12", "table3"
    }
    apps = args.apps or None
    seed = args.seed
    jobs = args.jobs

    if "table1" in which:
        print(report.render_table1(), end="\n\n")
    if "fig9" in which:
        rows9 = experiments.run_fig9_microbenchmarks(apps=apps, seed=seed, jobs=jobs)
        print(report.render_fig9(rows9), end="\n\n")
        print("GreenWeb-I energy (normalised to Perf, lower is better):")
        print(report.ascii_bars(
            [r.app for r in rows9],
            [r.greenweb_i_energy_norm_pct for r in rows9],
            max_value=100.0,
        ), end="\n\n")
    rows10 = None
    if which & {"fig10", "fig11", "fig12"}:
        rows10 = experiments.run_fig10_full_interactions(apps=apps, seed=seed, jobs=jobs)
    if "fig10" in which:
        print(report.render_fig10(rows10), end="\n\n")
        print("GreenWeb-U energy (normalised to Perf, lower is better):")
        print(report.ascii_bars(
            [r.app for r in rows10],
            [r.greenweb_u_energy_norm_pct for r in rows10],
            max_value=100.0,
        ), end="\n\n")
    if "fig11" in which:
        rows11 = experiments.run_fig11_distribution(fig10_rows=rows10)
        print(report.render_fig11(rows11), end="\n\n")
    if "fig12" in which:
        rows12 = experiments.run_fig12_switching(fig10_rows=rows10)
        print(report.render_fig12(rows12), end="\n\n")
    if "table3" in which:
        print(report.render_table3(experiments.run_table3_characteristics()), end="\n\n")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Frame-timeline analysis of one run (p50/p95/p99, FPS, jank)."""
    from repro.browser.engine import Browser
    from repro.core.annotations import AnnotationRegistry
    from repro.evaluation.analysis import fps_over_time, frame_timeline_stats
    from repro.evaluation.report import ascii_bars
    from repro.evaluation.runner import make_policy
    from repro.hardware.platform import odroid_xu_e
    from repro.sim.clock import s_to_us
    from repro.workloads.interactions import InteractionDriver

    bundle = build_app(args.app, args.seed)
    trace_obj = bundle.micro_trace if args.trace == "micro" else bundle.full_trace
    platform = odroid_xu_e(record_power_intervals=False)
    scenario = build_live_scenario(args.scenario, platform, seed=args.seed)
    registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
    policy = make_policy(args.governor, platform, registry, scenario)
    browser = Browser(platform, bundle.page, policy=policy)
    scenario.attach(browser)
    InteractionDriver(browser).schedule(trace_obj)
    platform.run_for(trace_obj.duration_us + s_to_us(4))

    stats = frame_timeline_stats(platform.trace)
    print(f"frame timeline for {args.app} / {args.governor} / {args.scenario}:")
    print(f"  frames:      {stats.frame_count} over {stats.duration_s:.1f} s "
          f"({stats.mean_fps:.1f} fps mean)")
    print(f"  latency:     p50={stats.latency_p50_us/1000:.1f} ms  "
          f"p95={stats.latency_p95_us/1000:.1f} ms  "
          f"p99={stats.latency_p99_us/1000:.1f} ms  "
          f"max={stats.latency_max_us/1000:.1f} ms")
    print(f"  jank:        {stats.jank_count} frames >= 2 vsync periods "
          f"({stats.jank_rate:.1%})")
    series = fps_over_time(platform.trace, bucket_ms=1000)
    if series:
        print("\nfps over time (1 s buckets):")
        print(ascii_bars(
            [f"{t:5.0f}s" for t, _ in series],
            [fps for _, fps in series],
            unit=" fps",
            max_value=60.0,
        ))
    return 0


class _ProgressLine:
    """The ``fleet --progress`` stderr heartbeat.

    One ``\\r``-overwritten line per accepted shard: shards and sessions
    done, throughput, and a naive remaining-work / current-rate ETA.
    It writes only to stderr so ``--json-out``/stdout consumers never
    see it, and clears itself before the summary prints.
    """

    def __init__(self, sessions_total: int):
        self.sessions_total = sessions_total
        self.sessions_done = 0
        self.started = time.monotonic()
        self._last_width = 0

    def on_shard(self, partial: dict, done: int, total: int) -> None:
        self.sessions_done += partial["sessions"]
        elapsed = time.monotonic() - self.started
        rate = self.sessions_done / elapsed if elapsed > 0 else 0.0
        remaining = max(self.sessions_total - self.sessions_done, 0)
        eta = f"{remaining / rate:4.0f} s" if rate > 0 else "   ? s"
        line = (
            f"shards {done}/{total}  sessions "
            f"{self.sessions_done}/{self.sessions_total}  "
            f"{rate:5.1f}/s  eta {eta}"
        )
        # Pad over the previous line so a shrinking line leaves no tail.
        pad = " " * max(self._last_width - len(line), 0)
        print(f"\r{line}{pad}", end="", file=sys.stderr, flush=True)
        self._last_width = len(line)

    def clear(self) -> None:
        if self._last_width:
            print("\r" + " " * self._last_width + "\r", end="",
                  file=sys.stderr, flush=True)
            self._last_width = 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Simulate a population of sessions and print/write the aggregate.

    Exit codes: 0 on clean completion, 1 when shards exhausted their
    retry budget, 2 on a usage error (bad spec, unwritable path,
    checkpoint fingerprint mismatch), and 128+signum (130 for SIGINT,
    143 for SIGTERM) when a signal stopped the run gracefully.
    """
    from repro.errors import EvaluationError
    from repro.fleet import Fleet, FleetSpec, default_mix, parse_mix

    if args.resume and not args.checkpoint:
        raise EvaluationError("--resume requires --checkpoint PATH")
    # Test-only fault injection for the checkpoint/signal smoke tests:
    # sessions are too fast (~15 ms) to interrupt a real fleet mid-run
    # deterministically, so CI hangs a shard on purpose instead.
    inject = os.environ.get("REPRO_FLEET_INJECT_CRASH")
    spec = FleetSpec(
        sessions=args.sessions,
        seed=args.seed,
        mix=parse_mix(args.mix) if args.mix else default_mix(),
        shard_size=args.shard_size,
        max_retries=args.max_retries,
        shard_timeout_s=args.shard_timeout,
        trace_level=args.trace_level,
        inject_crash=json.loads(inject) if inject else None,
    )
    if args.json_out:
        # Fail fast on an unwritable output path before burning minutes
        # of simulation — without creating the file, so a run that
        # never reaches the final write leaves no empty artifact that
        # looks like a truncated result.
        probe_writable(args.json_out, "--json-out")

    progress = None
    if args.progress == "always" or (
        args.progress == "auto" and sys.stderr.isatty()
    ):
        progress = _ProgressLine(spec.sessions)
    try:
        result = Fleet(
            spec,
            jobs=args.jobs,
            batch=args.batch,
            checkpoint=args.checkpoint,
            resume=args.resume,
            on_shard=progress.on_shard if progress else None,
        ).run()
    finally:
        if progress:
            progress.clear()
    aggregate = result.aggregate

    batch_note = f", batch {result.batch}" if result.batch > 1 else ""
    print(f"fleet:       {result.sessions} sessions, seed {result.seed}, "
          f"{result.shards_total} shards x <= {result.shard_size}, "
          f"{result.jobs} job(s){batch_note}")
    if result.resumed_shards:
        print(f"resumed:     {result.resumed_shards} shard(s) reloaded from "
              f"{args.checkpoint}")
    rate = result.sessions_completed / result.elapsed_s if result.elapsed_s else 0.0
    print(f"completed:   {result.sessions_completed}/{result.sessions} sessions "
          f"in {result.elapsed_s:.1f} s wall ({rate:.1f} sessions/s), "
          f"{result.retries} retries, {len(result.failures)} failed shards")
    for failure in result.failures:
        print(f"  FAILED shard {failure.shard} after {failure.attempts} "
              f"attempt(s): {failure.error}")
    energy = aggregate.energy_j
    violation = aggregate.violation_pct
    if aggregate.sessions:
        print(f"energy:      {energy.sum:.2f} J total, "
              f"{energy.mean:.3f} J/session [{energy.min:.3f}, {energy.max:.3f}]")
        print(f"violations:  {violation.mean:.2f}% mean/session "
              f"[{violation.min:.2f}, {violation.max:.2f}]")
        print(f"throughput:  {aggregate.inputs} inputs, {aggregate.frames} frames")
        print("by governor:")
        for name in sorted(aggregate.by_governor):
            group = aggregate.by_governor[name]
            print(f"  {name:12s} {group.sessions:6d} sessions  "
                  f"{group.energy_j.mean:8.3f} J/session  "
                  f"{group.violation_pct.mean:6.2f}% violations")
    if result.interrupted is not None:
        # Partial progress only: report it, skip the final JSON (its
        # absence is the unambiguous "this run did not finish" signal),
        # and exit with the conventional 128+signum code.
        name = signal.Signals(result.interrupted).name
        where = (
            f"progress checkpointed to {args.checkpoint}; rerun with "
            f"--resume to continue"
            if args.checkpoint
            else "no --checkpoint, so completed shards were discarded"
        )
        print(f"interrupted: {name} after "
              f"{result.sessions_completed}/{result.sessions} sessions; {where}")
        return 128 + result.interrupted
    if args.json_out:
        write_file_atomic(args.json_out, result.to_json())
        print(f"json:        {args.json_out}")
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import main_serve

    return main_serve(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        workers=args.jobs,
        max_concurrent_jobs=args.max_concurrent_jobs,
        max_queued_jobs=args.max_queued_jobs,
        retain_jobs=args.retain_jobs,
        retain_age_s=args.retain_age,
        quiet=args.quiet,
    )


def _cmd_checkpoint_inspect(args: argparse.Namespace) -> int:
    """Describe a checkpoint journal without touching it.

    Exit codes: 0 for a readable journal (even one with a torn tail —
    that is expected damage a resume repairs), 2 when the file is
    missing or not a checkpoint at all.
    """
    from repro.errors import EvaluationError
    from repro.fleet.checkpoint import CHECKPOINT_VERSION, scan_checkpoint

    size = os.path.getsize(args.journal)  # OSError -> exit 2 via main()
    header, completed, intact_bytes = scan_checkpoint(args.journal)
    if header is None:
        raise EvaluationError(
            f"{args.journal} has no intact header record; not a usable "
            f"checkpoint"
        )
    print(f"journal:     {args.journal} ({size} bytes)")
    version = header.get("version")
    compat = "" if version == CHECKPOINT_VERSION else (
        f"  (this build writes v{CHECKPOINT_VERSION}; resume will refuse)"
    )
    print(f"format:      v{version}{compat}")
    fingerprint = header.get("fingerprint") or {}
    for key in sorted(fingerprint):
        value = str(fingerprint[key])
        if len(value) > 120:
            value = f"{value[:117]}..."
        print(f"  {key + ':':14s}{value}")
    sessions = sum(partial["sessions"] for partial in completed.values())
    shards = ", ".join(str(index) for index in sorted(completed)) or "(none)"
    print(f"completed:   {len(completed)} shard(s), {sessions} sessions")
    print(f"  shards:      {shards}")
    if intact_bytes < size:
        print(f"tail:        TORN — last {size - intact_bytes} byte(s) are "
              f"an interrupted write; resume truncates and reruns them")
    else:
        print("tail:        intact")
    return 0


def _cmd_autogreen(args: argparse.Namespace) -> int:
    from repro.autogreen import AutoGreen, generate_annotations

    bundle = build_app(args.app, with_manual_annotations=False)
    report = generate_annotations(AutoGreen(bundle.page).run())
    print(f"AutoGreen on {args.app!r}: {len(report.results)} target(s), "
          f"{report.continuous_count} continuous / {report.single_count} single")
    print(report.css_text or "(no annotation targets discovered)")
    if report.ambiguous_selectors:
        print(f"warning: ambiguous selectors (may over-match): "
              f"{', '.join(report.ambiguous_selectors)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GreenWeb (PLDI 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the Table 3 applications").set_defaults(
        fn=_cmd_apps
    )

    run_parser = sub.add_parser("run", help="run one experiment cell")
    run_parser.add_argument("app", choices=APP_NAMES)
    run_parser.add_argument(
        "--governor", default="greenweb", metavar="SPEC",
        help="policy spec: a registered name or NAME(k=v,...), e.g. "
        f"greenweb(ewma_alpha=0.25); known: {', '.join(POLICIES.names())}",
    )
    run_parser.add_argument(
        "--scenario", default="imperceptible", metavar="SPEC",
        help="usage scenario: a registered name or NAME(k=v,...), e.g. "
        f"thermal(cap_mhz=1100); known: {', '.join(SCENARIOS.names())}",
    )
    run_parser.add_argument("--trace", default="micro", choices=["micro", "full"])
    run_parser.add_argument(
        "--trace-level", default="full", choices=list(TRACE_LEVELS),
        help="tracing cost level: full (retain + index), gated (stream "
        "to metric folds only, constant memory), off (no tracing; "
        "trace-derived metrics read as empty).  Results are identical "
        "between full and gated (default: full)",
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--export-trace",
        metavar="PATH",
        help="also write a chrome://tracing timeline JSON",
    )
    run_parser.set_defaults(fn=_cmd_run)

    figures_parser = sub.add_parser("figures", help="regenerate paper figures")
    figures_parser.add_argument(
        "--only",
        nargs="+",
        choices=["table1", "fig9", "fig10", "fig11", "fig12", "table3"],
        help="subset of figures (default: all)",
    )
    figures_parser.add_argument(
        "--apps", nargs="+", choices=APP_NAMES, help="subset of applications"
    )
    figures_parser.add_argument("--seed", type=int, default=0)
    figures_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment matrix (default: 1)",
    )
    figures_parser.set_defaults(fn=_cmd_figures)

    fleet_parser = sub.add_parser(
        "fleet", help="simulate a population of sessions in parallel"
    )
    fleet_parser.add_argument(
        "--sessions", type=int, default=100, help="population size (default: 100)"
    )
    fleet_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default: 1)"
    )
    fleet_parser.add_argument(
        "--batch", type=int, default=1,
        help="lockstep width: advance this many sessions of a shard "
        "together on one batch frontier (default: 1 = scalar). "
        "Byte-identical results either way; checkpoints resume "
        "interchangeably across modes",
    )
    fleet_parser.add_argument("--seed", type=int, default=0, help="root seed")
    fleet_parser.add_argument(
        "--mix",
        help="population mix: comma-separated "
        "APP[:GOVERNOR[:SCENARIO[:TRACE]]][=WEIGHT] items; GOVERNOR and "
        "SCENARIO may be parameterized specs like "
        "greenweb(ewma_alpha=0.25) or thermal(cap_mhz=1100) "
        "(default: every app under greenweb and perf, micro traces)",
    )
    fleet_parser.add_argument(
        "--json-out", metavar="PATH", help="write the deterministic JSON summary"
    )
    fleet_parser.add_argument(
        "--shard-size", type=int, default=8,
        help="sessions per shard (default: 8; independent of --jobs)",
    )
    fleet_parser.add_argument(
        "--max-retries", type=int, default=1,
        help="retry budget per failed shard (default: 1)",
    )
    fleet_parser.add_argument(
        "--shard-timeout", type=float, default=300.0,
        help="per-shard wall-clock deadline in seconds (default: 300)",
    )
    fleet_parser.add_argument(
        "--trace-level", default="gated", choices=list(TRACE_LEVELS),
        help="per-session tracing level (default: gated — streaming "
        "folds keep memory constant; aggregates identical to full)",
    )
    fleet_parser.add_argument(
        "--checkpoint", metavar="PATH",
        help="durably append each completed shard's partial aggregate "
        "to PATH (fsync'd JSONL) so an interrupted run can be resumed; "
        "without --resume an existing checkpoint is overwritten",
    )
    fleet_parser.add_argument(
        "--resume", action="store_true",
        help="reload completed shards from --checkpoint PATH and run "
        "only the rest; refuses (exit 2) if the checkpoint was written "
        "for a different spec.  The resumed run's JSON is byte-identical "
        "to an uninterrupted one",
    )
    fleet_parser.add_argument(
        "--progress", choices=["auto", "always", "never"], default="auto",
        help="stderr heartbeat (shards, sessions/s, ETA) updated per "
        "completed shard; auto shows it only when stderr is a TTY "
        "(default: auto)",
    )
    fleet_parser.set_defaults(fn=_cmd_fleet)

    serve_parser = sub.add_parser(
        "serve", help="run the fleet-as-a-service HTTP daemon"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8734, help="TCP port (default: 8734)"
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=2,
        help="persistent worker processes, partitioned across the "
        "concurrent-job lanes (default: 2; every lane gets at least 1)",
    )
    serve_parser.add_argument(
        "--max-concurrent-jobs", type=int, default=1, metavar="N",
        help="jobs executed at once, each lane on its own worker-pool "
        "partition of --jobs/N processes (default: 1)",
    )
    serve_parser.add_argument(
        "--max-queued-jobs", type=int, default=None, metavar="N",
        help="admission-queue bound: POST /jobs answers 429 with a "
        "Retry-After hint once N jobs are queued (default: unbounded); "
        "recovery after a restart is exempt",
    )
    serve_parser.add_argument(
        "--retain-jobs", type=int, default=None, metavar="N",
        help="retention GC: keep at most the N most recently settled "
        "jobs, pruning older ones from the state dir (default: keep "
        "all); queued/running jobs and their checkpoints are never "
        "touched",
    )
    serve_parser.add_argument(
        "--retain-age", type=float, default=None, metavar="SECONDS",
        help="retention GC: prune jobs settled more than SECONDS ago "
        "(default: keep all); combines with --retain-jobs (either "
        "limit prunes)",
    )
    serve_parser.add_argument(
        "--state-dir", default="repro-serve", metavar="DIR",
        help="job records, checkpoint journals, and results live here; "
        "restarting with the same DIR resumes in-flight jobs "
        "(default: ./repro-serve)",
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )
    serve_parser.set_defaults(fn=_cmd_serve)

    checkpoint_parser = sub.add_parser(
        "checkpoint", help="inspect fleet checkpoint journals"
    )
    checkpoint_sub = checkpoint_parser.add_subparsers(
        dest="checkpoint_command", required=True
    )
    inspect_parser = checkpoint_sub.add_parser(
        "inspect", help="describe a journal: fingerprint, shards, tail"
    )
    inspect_parser.add_argument("journal", help="checkpoint JSONL path")
    inspect_parser.set_defaults(fn=_cmd_checkpoint_inspect)

    analyze_parser = sub.add_parser("analyze", help="frame-timeline stats for a run")
    analyze_parser.add_argument("app", choices=APP_NAMES)
    analyze_parser.add_argument(
        "--governor", default="greenweb", metavar="SPEC",
        help="policy spec: a registered name or NAME(k=v,...); known: "
        f"{', '.join(POLICIES.names())}",
    )
    analyze_parser.add_argument(
        "--scenario", default="imperceptible", metavar="SPEC",
        help="usage scenario: a registered name or NAME(k=v,...); known: "
        f"{', '.join(SCENARIOS.names())}",
    )
    analyze_parser.add_argument("--trace", default="micro", choices=["micro", "full"])
    analyze_parser.add_argument("--seed", type=int, default=0)
    analyze_parser.set_defaults(fn=_cmd_analyze)

    autogreen_parser = sub.add_parser("autogreen", help="auto-annotate an app")
    autogreen_parser.add_argument("app", choices=APP_NAMES)
    autogreen_parser.set_defaults(fn=_cmd_autogreen)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Piped into `head` etc.: the consumer closing the pipe is not
        # an error.  Swallow the tail and exit cleanly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except KeyboardInterrupt:
        # Commands with a graceful interruption path (fleet) never let
        # the first Ctrl-C reach here; this catches the second signal's
        # forced exit and plain Ctrl-C in commands without one.
        print("error: interrupted", file=sys.stderr)
        return 128 + signal.SIGINT
    except (ReproError, OSError) as exc:
        # Misconfiguration (bad --mix, bad spec values, unwritable
        # output path, ...) is a usage error, not a crash: report it
        # argparse-style.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
