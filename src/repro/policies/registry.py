"""The policy registry: one authoritative name -> policy mapping.

Every scheduling policy — the paper's baselines, the GreenWeb runtime,
post-hoc oracles, third-party extensions — registers here once, and
every layer that used to hard-code governor names (the runner, the
session facade, fleet mix parsing, the CLI) validates and builds
through the registry instead.

Registering a policy::

    from repro.policies import register

    @register("my_policy", description="always little@600")
    def _build(platform, registry, scenario, *, freq_mhz: int = 600):
        return MyPolicy(platform, freq_mhz)

The factory's keyword parameters (after the three fixed positionals
``platform, registry, scenario``) define the policy's typed parameter
schema: names are validated, string values from spec strings are
coerced to the annotated type, and anything unknown raises
:class:`~repro.errors.EvaluationError` with the valid parameter list.
``params_from=SomeClass`` introspects that class's ``__init__`` instead
(for factories that just forward ``**params``).

Post-hoc policies (``posthoc=True``) do not drive a live browser:
their callable receives the full run context and returns a finished
:class:`~repro.evaluation.runner.RunResult` — see
:mod:`repro.policies.oracle`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.errors import EvaluationError
from repro.hardware.dvfs import CpuConfig
from repro.policies.spec import PolicySpec

#: Parameter names consumed by the build call itself, never part of a
#: policy's parameter schema.
_FIXED_PARAMS = frozenset({"self", "platform", "registry", "scenario"})


@dataclass(frozen=True)
class ParamInfo:
    """One declared policy parameter: its annotation and default."""

    name: str
    annotation: str
    default: object


@dataclass(frozen=True)
class PolicyEntry:
    """One registered policy: factory, parameter schema, metadata."""

    name: str
    factory: Optional[Callable]
    params: tuple[ParamInfo, ...]
    description: str = ""
    aliases: Mapping[str, str] = field(default_factory=dict)
    posthoc: Optional[Callable] = None

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    def param(self, name: str) -> ParamInfo:
        for info in self.params:
            if info.name == name:
                return info
        raise KeyError(name)


def _annotation_text(annotation: object) -> str:
    if annotation is inspect.Parameter.empty:
        return ""
    if isinstance(annotation, str):
        return annotation
    return getattr(annotation, "__name__", str(annotation))


def _introspect_params(callable_obj: Callable) -> tuple[ParamInfo, ...]:
    """Derive a parameter schema from a factory (or class) signature."""
    target = callable_obj.__init__ if inspect.isclass(callable_obj) else callable_obj
    params = []
    for param in inspect.signature(target).parameters.values():
        if param.name in _FIXED_PARAMS:
            continue
        if param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        params.append(
            ParamInfo(
                name=param.name,
                annotation=_annotation_text(param.annotation),
                default=None if param.default is inspect.Parameter.empty else param.default,
            )
        )
    return tuple(params)


def _parse_cpu_config(value: str) -> CpuConfig:
    text = value.strip()
    if text.endswith("MHz"):
        text = text[: -len("MHz")]
    cluster, sep, freq = text.partition("@")
    if not sep or not cluster or not freq.isdigit():
        raise EvaluationError(
            f"bad CPU configuration {value!r}: expected CLUSTER@MHZ "
            "(e.g. 'little@600' or 'big@1800MHz')"
        )
    return CpuConfig(cluster, int(freq))


def _coerce_param(
    policy: str, info: ParamInfo, value: object, kind: str = "policy"
) -> object:
    """Coerce a parsed spec value to the parameter's declared type."""
    annotation = info.annotation
    if "CpuConfig" in annotation:
        if isinstance(value, CpuConfig) or value is None:
            return value
        if isinstance(value, str):
            return _parse_cpu_config(value)
        raise EvaluationError(
            f"parameter {info.name!r} of {kind} {policy!r} expects a CPU "
            f"configuration (CLUSTER@MHZ), got {value!r}"
        )
    if "bool" in annotation or isinstance(info.default, bool):
        if isinstance(value, bool):
            return value
        raise EvaluationError(
            f"parameter {info.name!r} of {kind} {policy!r} expects a bool "
            f"(true/false), got {value!r}"
        )
    if "float" in annotation or isinstance(info.default, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EvaluationError(
                f"parameter {info.name!r} of {kind} {policy!r} expects a "
                f"number, got {value!r}"
            )
        return float(value)
    if "int" in annotation or isinstance(info.default, int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise EvaluationError(
                f"parameter {info.name!r} of {kind} {policy!r} expects an "
                f"integer, got {value!r}"
            )
        return value
    if annotation == "str" or isinstance(info.default, str):
        if not isinstance(value, str):
            raise EvaluationError(
                f"parameter {info.name!r} of {kind} {policy!r} expects a "
                f"string, got {value!r}"
            )
        return value
    return value


class PolicyRegistry:
    """A mutable name -> :class:`PolicyEntry` mapping with validation."""

    def __init__(self) -> None:
        self._entries: dict[str, PolicyEntry] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        description: str = "",
        params_from: Optional[Callable] = None,
        aliases: Optional[Mapping[str, str]] = None,
        posthoc: bool = False,
        replace: bool = False,
    ) -> Callable:
        """Decorator registering a policy factory (or post-hoc runner).

        Args:
            name: the policy's spec name.
            description: one-line summary for listings.
            params_from: introspect this callable's signature for the
                parameter schema instead of the decorated factory's
                (for factories that forward ``**params``).
            aliases: short parameter spellings, e.g.
                ``{"ewma": "ewma_alpha"}`` — resolved during
                normalisation so canonical specs always use full names.
            posthoc: the callable is a post-hoc runner producing a
                finished run result, not a live browser policy.
            replace: allow re-registering an existing name (tests,
                interactive reloads); otherwise duplicates raise.
        """
        if not replace and name in self._entries:
            raise EvaluationError(f"policy {name!r} is already registered")

        def decorator(fn: Callable) -> Callable:
            params = _introspect_params(params_from if params_from is not None else fn)
            alias_map = dict(aliases or {})
            known = {p.name for p in params}
            for short, full in alias_map.items():
                if full not in known:
                    raise EvaluationError(
                        f"alias {short!r} of policy {name!r} targets unknown "
                        f"parameter {full!r}"
                    )
            self._entries[name] = PolicyEntry(
                name=name,
                factory=None if posthoc else fn,
                params=params,
                description=description,
                aliases=alias_map,
                posthoc=fn if posthoc else None,
            )
            return fn

        return decorator

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """All registered policy names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> PolicyEntry:
        """The entry for ``name``; the one unknown-policy error message
        every layer (runner, session, fleet mix, CLI) reports."""
        try:
            return self._entries[name]
        except KeyError:
            raise EvaluationError(
                f"unknown policy {name!r}; known policies: {list(self.names())}"
            ) from None

    def describe(self) -> dict[str, str]:
        """name -> one-line description, for CLI/docs listings."""
        return {name: self._entries[name].description for name in self.names()}

    # ------------------------------------------------------------------
    # Validation / construction
    # ------------------------------------------------------------------
    def normalize(self, spec: "PolicySpec | str") -> PolicySpec:
        """Validate a spec against its policy's schema and return the
        canonical form: aliases resolved, values type-coerced, params
        sorted.  Raises :class:`EvaluationError` on unknown policy
        names, unknown parameters, or type mismatches."""
        spec = PolicySpec.coerce(spec)
        entry = self.get(spec.name)
        resolved: dict[str, object] = {}
        for key, value in spec.params:
            full = entry.aliases.get(key, key)
            if full not in {p.name for p in entry.params}:
                if not entry.params:
                    raise EvaluationError(
                        f"policy {spec.name!r} accepts no parameters "
                        f"(got {key!r})"
                    )
                raise EvaluationError(
                    f"unknown parameter {key!r} for policy {spec.name!r}; "
                    f"valid parameters: {entry.param_names}"
                )
            if full in resolved:
                raise EvaluationError(
                    f"duplicate parameter {full!r} in policy {spec.name!r} "
                    "(alias and full name both given)"
                )
            resolved[full] = _coerce_param(spec.name, entry.param(full), value)
        return PolicySpec(spec.name, tuple(resolved.items()))

    def build(self, spec, platform, registry, scenario):
        """Instantiate the live policy a spec describes.

        Args:
            spec: a :class:`PolicySpec` or spec string.
            platform: the :class:`~repro.hardware.platform.MobilePlatform`.
            registry: the page's
                :class:`~repro.core.annotations.AnnotationRegistry`.
            scenario: the usage scenario — a
                :class:`~repro.core.qos.UsageScenario` or a live bound
                :class:`~repro.scenarios.Scenario` (dynamic scenarios
                expose time-varying targets through the same
                ``QoSSpec.target_ms`` dispatch).

        Returns:
            A bound-ready :class:`~repro.browser.engine.BrowserPolicy`.

        Raises:
            EvaluationError: unknown name/params, or a post-hoc policy
                (those cannot drive a live browser).
        """
        spec = self.normalize(spec)
        entry = self.get(spec.name)
        if entry.factory is None:
            raise EvaluationError(
                f"policy {spec.name!r} is post-hoc: it replays whole runs "
                "and cannot drive a live browser; use "
                "repro.evaluation.runner.run_workload instead"
            )
        return entry.factory(platform, registry, scenario, **spec.params_dict)


#: The process-wide default registry.  ``repro.policies`` registers the
#: built-in policies on import; third parties add theirs via
#: :func:`repro.policies.register`.
POLICIES = PolicyRegistry()
