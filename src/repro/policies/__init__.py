"""Pluggable scheduling policies: specs, registry, built-ins.

Policies are *data* here: a spec string like ``greenweb(ewma=0.25)``
parses to a :class:`PolicySpec`, validates against the named policy's
registered parameter schema, and builds the live
:class:`~repro.browser.engine.BrowserPolicy` — the same canonical
string flows through the CLI, the evaluation runner, fleet mix
grammars, and checkpoint fingerprints.

Third-party policies register with the same decorator the built-ins
use (see ``examples/custom_policy.py``)::

    from repro.policies import register

    @register("fixed", description="pin one configuration")
    def _build(platform, registry, scenario, *, config: str = "little@600"):
        ...

Importing this package registers the built-in policies (the paper's
six governors plus the post-hoc ``oracle`` lower bound) as a side
effect.
"""

from repro.policies.registry import POLICIES, ParamInfo, PolicyEntry, PolicyRegistry
from repro.policies.spec import PolicySpec

#: Register a policy on the process-wide default registry.
register = POLICIES.register

# Built-in registrations (import for side effect, after POLICIES exists).
from repro.policies import builtin as _builtin  # noqa: E402,F401

__all__ = [
    "POLICIES",
    "ParamInfo",
    "PolicyEntry",
    "PolicyRegistry",
    "PolicySpec",
    "register",
]
