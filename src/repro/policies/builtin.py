"""Registry entries for the repo's built-in scheduling policies.

The paper's six governors (Sec. 7.1's bake-off set plus the ablation
references) move onto the registry here, each with its parameter schema
introspected from the implementing class so spec strings like
``interactive(go_hispeed_load=0.8)`` or ``greenweb(ewma_alpha=0.25)``
validate against the real constructor.  The ``oracle`` post-hoc policy
(:mod:`repro.policies.oracle`) registers alongside them as the
minimum-energy-meeting-QoS lower bound.

Imported for its side effects by :mod:`repro.policies`.
"""

from __future__ import annotations

from repro.core.ebs import EbsGovernor
from repro.core.governors import (
    InteractiveGovernor,
    OndemandGovernor,
    PerfGovernor,
    PowersaveGovernor,
)
from repro.core.runtime import GreenWebRuntime
from repro.policies.oracle import run_oracle
from repro.policies.registry import POLICIES


@POLICIES.register("perf", description="peak performance, always (paper baseline)")
def _build_perf(platform, registry, scenario):
    return PerfGovernor(platform)


@POLICIES.register(
    "interactive",
    description="Android's interactive cpufreq governor (paper baseline)",
    params_from=InteractiveGovernor,
)
def _build_interactive(platform, registry, scenario, **params):
    return InteractiveGovernor(platform, **params)


@POLICIES.register(
    "powersave", description="slowest little configuration, always (energy floor)"
)
def _build_powersave(platform, registry, scenario):
    return PowersaveGovernor(platform)


@POLICIES.register(
    "ondemand",
    description="classic ondemand governor: max above threshold, step down when low",
    params_from=OndemandGovernor,
)
def _build_ondemand(platform, registry, scenario, **params):
    return OndemandGovernor(platform, **params)


@POLICIES.register(
    "greenweb",
    description="the Sec. 6 QoS-annotation-driven runtime",
    params_from=GreenWebRuntime,
    aliases={"ewma": "ewma_alpha", "headroom": "target_headroom"},
)
def _build_greenweb(platform, registry, scenario, **params):
    return GreenWebRuntime(platform, registry, scenario, **params)


@POLICIES.register(
    "ebs",
    description="annotation-free event-based scheduling (Sec. 9 comparison)",
    params_from=EbsGovernor,
)
def _build_ebs(platform, registry, scenario, **params):
    return EbsGovernor(platform, **params)


def _oracle_schema():
    """The oracle takes no parameters (its search is exhaustive)."""


POLICIES.register(
    "oracle",
    description="post-hoc per-key config search: minimum energy meeting QoS",
    params_from=_oracle_schema,
    posthoc=True,
)(run_oracle)
