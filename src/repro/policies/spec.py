"""Policy specs: scheduling policies as *data*.

A :class:`PolicySpec` is the parsed, canonical form of strings like::

    greenweb
    greenweb(ewma_alpha=0.25)
    interactive(go_hispeed_load=0.8,input_boost=false)

Grammar (whitespace-insensitive)::

    spec   := NAME | NAME "(" params ")"
    params := param ("," param)*
    param  := KEY "=" VALUE

``NAME`` and ``KEY`` are identifiers; ``VALUE`` is a bool
(``true``/``false``), an int, a float, or a bare string drawn from
``[A-Za-z0-9_@.+-]`` (enough for ``big@1800MHz``-style configuration
values).  Parsing is total and reversible for primitive values:
``parse(canonical(parse(text)))`` is the identity, which is what lets
fleet checkpoints fingerprint a population by its canonical spec
strings and refuse to resume across parameter changes.

Canonical form: parameters sorted by key, no spaces, floats rendered
with ``repr`` (shortest round-tripping form), bools as ``true``/
``false``.  A spec with no parameters canonicalises to the bare name,
so pre-existing plumbing that compares governor *names* keeps working
byte-for-byte.

The grammar is shared: :class:`repro.scenarios.spec.ScenarioSpec`
subclasses :class:`PolicySpec` with ``KIND = "scenario"``, so scenario
specs parse, canonicalise, and validate identically while error
messages name the right kind of spec.

String parameter values may never contain ``|`` or ``:`` — those are
the fleet cell-key and mix-entry delimiters
(:data:`repro.fleet.aggregate.CELL_SEP` and the mix grammar), and a
spec that smuggled one in would mis-parse every downstream cell table.
The parser's bare-string alphabet already excludes them; programmatic
construction enforces the same rule in ``__post_init__``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import EvaluationError

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_-]*$")
_BARE_VALUE_RE = re.compile(r"^[A-Za-z0-9_@.+-]+$")
_INT_RE = re.compile(r"^[+-]?\d+$")

#: Characters no spec string may carry through to fleet plumbing: ``|``
#: separates cell-key fields and ``:`` separates mix-entry fields.
_RESERVED_DELIMITERS = ("|", ":")


def parse_param_value(text: str, kind: str = "policy") -> object:
    """Parse one parameter value: bool, int, float, or bare string."""
    item = text.strip()
    if not item:
        raise EvaluationError(f"empty {kind} parameter value")
    lowered = item.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if _INT_RE.match(item):
        return int(item)
    try:
        return float(item)
    except ValueError:
        pass
    if not _BARE_VALUE_RE.match(item):
        raise EvaluationError(
            f"bad {kind} parameter value {text!r}: expected a bool, number, "
            "or bare string ([A-Za-z0-9_@.+-])"
        )
    return item


def format_param_value(value: object, kind: str = "policy") -> str:
    """Serialise one parameter value into the spec grammar.

    Raises :class:`EvaluationError` for values the grammar cannot
    express (use :func:`format_param_value_lossy` for display labels).
    """
    text = format_param_value_lossy(value)
    if isinstance(value, (bool, int, float)):
        return text
    if not isinstance(value, str) or not _BARE_VALUE_RE.match(text):
        raise EvaluationError(
            f"{kind} parameter value {value!r} cannot be expressed in a "
            "spec string (allowed: bool, int, float, bare string)"
        )
    return text


def format_param_value_lossy(value: object) -> str:
    """Best-effort serialisation: never raises, used for display labels."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class PolicySpec:
    """One scheduling policy plus its parameters, as a value type.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so specs are
    hashable and order-insensitive: ``greenweb(a=1,b=2)`` equals
    ``greenweb(b=2,a=1)``.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    #: What this spec describes; subclasses (scenario specs) override it
    #: so shared grammar errors name the right kind.
    KIND = "policy"

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise EvaluationError(f"bad {self.KIND} name {self.name!r}")
        seen = set()
        for key, value in self.params:
            if not _NAME_RE.match(key):
                raise EvaluationError(
                    f"bad parameter name {key!r} in {self.KIND} {self.name!r}"
                )
            if key in seen:
                raise EvaluationError(
                    f"duplicate parameter {key!r} in {self.KIND} {self.name!r}"
                )
            seen.add(key)
            if isinstance(value, str) and any(
                delim in value for delim in _RESERVED_DELIMITERS
            ):
                raise EvaluationError(
                    f"bad parameter value {value!r} for {key!r} in "
                    f"{self.KIND} {self.name!r}: '|' and ':' are reserved "
                    "fleet delimiters (cell keys and mix entries)"
                )
        ordered = tuple(sorted(self.params, key=lambda kv: kv[0]))
        object.__setattr__(self, "params", ordered)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "PolicySpec":
        """Parse a spec string (see the module docstring's grammar)."""
        item = text.strip()
        if not item:
            raise EvaluationError(f"empty {cls.KIND} spec")
        if "(" not in item:
            if not _NAME_RE.match(item):
                raise EvaluationError(
                    f"bad {cls.KIND} spec {text!r}: expected NAME or NAME(k=v,...)"
                )
            return cls(name=item)
        if not item.endswith(")"):
            raise EvaluationError(f"bad {cls.KIND} spec {text!r}: missing ')'")
        name, _, body = item[:-1].partition("(")
        name = name.strip()
        if not _NAME_RE.match(name):
            raise EvaluationError(
                f"bad {cls.KIND} name {name!r} in spec {text!r}"
            )
        params: list[tuple[str, object]] = []
        body = body.strip()
        if body:
            for piece in body.split(","):
                key, eq, value_text = piece.partition("=")
                if not eq:
                    raise EvaluationError(
                        f"bad {cls.KIND} parameter {piece.strip()!r} in spec "
                        f"{text!r}: expected KEY=VALUE"
                    )
                params.append(
                    (key.strip(), parse_param_value(value_text, cls.KIND))
                )
        return cls(name=name, params=tuple(params))

    @classmethod
    def coerce(cls, value: "PolicySpec | str") -> "PolicySpec":
        """A spec of this class from a spec (pass-through) or a string."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        raise EvaluationError(
            f"expected a {cls.KIND} spec string or {cls.__name__}, "
            f"got {type(value).__name__}"
        )

    def with_params(self, **params: object) -> "PolicySpec":
        """A copy with ``params`` merged in (new keys win over old)."""
        merged = dict(self.params)
        merged.update(params)
        return type(self)(self.name, tuple(merged.items()))

    # ------------------------------------------------------------------
    # Introspection / serialisation
    # ------------------------------------------------------------------
    @property
    def params_dict(self) -> dict[str, object]:
        return dict(self.params)

    def canonical(self) -> str:
        """The canonical spec string; ``parse`` of it round-trips.

        Raises :class:`EvaluationError` if a parameter value cannot be
        expressed in the grammar (non-primitive programmatic values).
        """
        return self._render(lambda value: format_param_value(value, self.KIND))

    def label(self) -> str:
        """Display form: like :meth:`canonical` but never raises —
        non-primitive values render via ``str`` (not re-parseable)."""
        return self._render(format_param_value_lossy)

    def _render(self, fmt) -> str:
        if not self.params:
            return self.name
        body = ",".join(f"{key}={fmt(value)}" for key, value in self.params)
        return f"{self.name}({body})"

    def __str__(self) -> str:
        return self.label()
