"""The ``oracle`` post-hoc policy: a lower-bound baseline.

No online policy can beat a scheduler that already knows the workload.
The oracle exploits the simulator's determinism: it replays the same
(app, seed, trace) repeatedly, pinning each annotated event key to each
of the platform's configurations in turn, and keeps the cheapest
assignment whose QoS is no worse than running that key flat-out.  The
final replay under the winning assignment is the reported run — the
minimum energy *this* per-key-constant configuration family can reach
while meeting QoS, which bounds what GreenWeb's online
profile-predict-react loop could hope to achieve (compare the paper's
Fig. 10 "big/little oracle" discussion).

The search is greedy per key (keys in first-appearance order, earlier
winners pinned while later keys sweep), so its cost is
``O(keys x configs)`` replays rather than ``configs ** keys``.
"""

from __future__ import annotations

from typing import Optional

from repro.browser.engine import BrowserPolicy
from repro.browser.frame_tracker import InputRecord
from repro.browser.messages import InputMsg
from repro.hardware.dvfs import CpuConfig
from repro.web.events import Event

#: slack when comparing violation percentages between replays — the
#: simulator is deterministic, but feasibility thresholds come through
#: float accumulation.
_VIOLATION_EPS = 1e-9


class KeyPinnedPolicy(BrowserPolicy):
    """Replay policy: every event key runs at a pre-assigned config.

    Keys missing from ``assignments`` run at ``default`` (the fastest
    configuration during the oracle's sweep, so unswept keys never
    cause spurious violations).  Between inputs the platform parks on
    ``idle_config`` immediately — the oracle has perfect knowledge, so
    it needs no idle-grace hysteresis.
    """

    def __init__(
        self,
        platform,
        assignments: dict[str, CpuConfig],
        default: CpuConfig,
        idle_config: CpuConfig,
    ) -> None:
        self.platform = platform
        self.assignments = dict(assignments)
        self.default = default
        self.idle_config = idle_config
        self._uid_keys: dict[int, str] = {}
        self._demanding: set[int] = set()

    def _config_for(self, key: str) -> CpuConfig:
        return self.assignments.get(key, self.default)

    def bind(self, browser) -> None:
        super().bind(browser)
        self.platform.set_config(self.idle_config)

    def on_input(self, msg: InputMsg, event: Event) -> None:
        key = f"{msg.target_key}@{event.type}"
        self._uid_keys[msg.uid] = key
        self._demanding.add(msg.uid)
        self.platform.set_config(self._config_for(key))

    def on_frame_scheduled(self, vsync_us: int, msgs: list[InputMsg]) -> None:
        for msg in msgs:
            key = self._uid_keys.get(msg.uid)
            if key is not None:
                self.platform.set_config(self._config_for(key))
                return

    def on_input_complete(self, record: InputRecord) -> None:
        self._demanding.discard(record.uid)
        if not self._demanding:
            self.platform.set_config(self.idle_config)


def _key_feasible(
    keys: list[str],
    violations: list[Optional[float]],
    allowances: list[float],
    key: str,
) -> bool:
    """Did every annotated event of ``key`` stay within its allowance?

    The allowance for each event is the violation observed at the
    fastest configuration — normally 0, but if a target is infeasible
    even flat-out, the oracle must merely not make it worse."""
    for event_key, violation, allowance in zip(keys, violations, allowances):
        if event_key != key or violation is None:
            continue
        if violation > allowance + _VIOLATION_EPS:
            return False
    return True


def run_oracle(spec, *, app, scenario, trace_kind, seed, settle_s, trace_level):
    """Post-hoc runner for the ``oracle`` policy (registry entry point).

    Returns the :class:`~repro.evaluation.runner.RunResult` of the
    final replay under the minimum-energy feasible assignment; the
    chosen per-key configurations are reported in ``runtime_stats``.

    ``scenario`` is a scenario spec, not a live object: every replay
    goes through :func:`~repro.evaluation.runner.execute_run`, which
    builds a *fresh* bound scenario instance per replay — the sweep
    therefore experiences the same time-varying targets and frequency
    caps as a live policy (over-cap pins clamp through the DVFS
    controller), and thermal state never leaks between replays.
    """
    # Imported lazily: the runner imports repro.policies for the
    # registry, so a module-level import here would be circular.
    from repro.evaluation.runner import execute_run, trace_event_keys
    from repro.hardware.platform import odroid_xu_e
    from repro.sim.tracing import TraceLog

    configs = odroid_xu_e(
        record_power_intervals=False, trace=TraceLog.for_level("off")
    ).all_configs()  # performance order
    fastest, idle = configs[-1], configs[0]
    keys = trace_event_keys(app, seed, trace_kind)

    def replay(assignments: dict[str, CpuConfig]):
        return execute_run(
            app,
            spec.label(),
            scenario,
            trace_kind,
            seed,
            settle_s,
            trace_level,
            lambda platform, registry, live_scenario: KeyPinnedPolicy(
                platform, assignments, fastest, idle
            ),
        )

    baseline = replay({})
    # Per-event allowance: what the fastest configuration achieves.
    allowances = [
        0.0 if violation is None else max(0.0, violation)
        for violation in baseline.event_violations_pct
    ]

    assignments: dict[str, CpuConfig] = {}
    unique_keys = list(dict.fromkeys(keys))  # first-appearance order
    for key in unique_keys:
        best_config: Optional[CpuConfig] = None
        best_energy = baseline.energy_j
        for config in configs:
            trial = replay({**assignments, key: config})
            if not _key_feasible(keys, trial.event_violations_pct, allowances, key):
                continue
            if best_config is None or trial.energy_j < best_energy:
                best_config, best_energy = config, trial.energy_j
        if best_config is not None:
            assignments[key] = best_config

    result = replay(assignments)
    result.runtime_stats = {
        "oracle_assignments": {
            key: str(config) for key, config in assignments.items()
        },
        "oracle_replays": 1 + len(unique_keys) * len(configs) + 1,
    }
    return result
