"""Scenario specs: the environment as *data*.

A :class:`ScenarioSpec` is the parsed, canonical form of strings like::

    imperceptible
    thermal(cap_mhz=1100,trip_ms=2000)
    battery(start_pct=80,drain_pct_per_min=2,relax_at_pct=30)

It shares the policy spec grammar byte-for-byte (see
:mod:`repro.policies.spec`): ``NAME`` or ``NAME(k=v,...)``, parameters
sorted in the canonical form, ``parse(canonical(parse(x)))`` the
identity, and the reserved fleet delimiters ``|``/``:`` rejected in
string parameter values.  A bare name canonicalises to itself, which is
what keeps ``imperceptible``/``usable`` strings — and therefore every
pre-existing fleet fingerprint — unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.policies.spec import PolicySpec


@dataclass(frozen=True)
class ScenarioSpec(PolicySpec):
    """One usage scenario plus its parameters, as a value type."""

    KIND = "scenario"
