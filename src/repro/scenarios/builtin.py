"""The built-in usage scenarios.

Static (the paper's Sec. 7.1 pair, byte-identical to the old enum):

* ``imperceptible`` — battery plentiful, target TI.
* ``usable`` — battery tight, target TU.

Dynamic (the ROADMAP's "scenario axes": environment changes that move
the optimal policy *mid-session*):

* ``thermal(cap_mhz=,trip_ms=,hysteresis_ms=)`` — sustained load trips
  a frequency ceiling on the fastest cluster; cooling lifts it.
* ``battery(start_pct=,drain_pct_per_min=,relax_at_pct=)`` — the QoS
  target relaxes TI -> TU when the battery level crosses a threshold.
* ``netdelay(mean_ms=,burst=,work_ms=)`` — delayed resource arrivals
  inject bursty work into the renderer main thread.
* ``bgload(duty=,period_ms=)`` — a background tab periodically burns
  cycles on its own context (power draw + governor-visible load).

All dynamics are driven off virtual time and the session's forked
``"scenario"`` RNG lane, so runs are deterministic and identical
between the scalar and batched engines (see :mod:`repro.scenarios.base`
for the contract).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import EvaluationError
from repro.hardware.core import WorkUnit
from repro.scenarios.base import Scenario
from repro.scenarios.registry import SCENARIOS

#: Thermal model sampling period.  A few vsyncs long: coarse enough to
#: stay cheap, fine enough that trip/hysteresis windows of hundreds of
#: milliseconds resolve crisply.
THERMAL_TICK_US = 25_000

#: Default fraction of a sampling window with >= 1 busy context for the
#: window to count as "hot" (override per-spec via ``hot_load=``).
THERMAL_HOT_LOAD = 0.5


def _cluster_perf(spec) -> float:
    return spec.ipc_factor * spec.opps.max.freq_mhz


class StaticScenario(Scenario):
    """A constant-relaxation scenario (the paper's static pair)."""

    _RELAX = 0.0

    def relax_at(self, now_us: int) -> float:
        return self._RELAX


@SCENARIOS.register(
    "imperceptible",
    description="battery plentiful: every target at TI (paper Sec. 7.1)",
)
class ImperceptibleScenario(StaticScenario):
    _RELAX = 0.0


@SCENARIOS.register(
    "usable",
    description="battery tight: every target at TU (paper Sec. 7.1)",
)
class UsableScenario(StaticScenario):
    _RELAX = 1.0


@SCENARIOS.register(
    "thermal",
    description="sustained load trips an f_max cap on the fastest cluster",
)
class ThermalScenario(Scenario):
    """Thermal throttling: heat accrues while the platform is loaded.

    Every :data:`THERMAL_TICK_US` the scenario diffs the platform's
    utilization integral; a window whose busy fraction reaches
    ``hot_load`` is "hot".  ``trip_ms`` of consecutive hot
    time engages a frequency cap of ``cap_mhz`` on the fastest cluster
    (enforced by the DVFS controller, so over-cap policy requests clamp
    to the fastest allowed OPP); ``hysteresis_ms`` of consecutive cool
    time lifts it.
    """

    def __init__(
        self,
        cap_mhz: int = 1100,
        trip_ms: float = 2000.0,
        hysteresis_ms: float = 1000.0,
        hot_load: float = THERMAL_HOT_LOAD,
    ) -> None:
        super().__init__()
        if cap_mhz <= 0:
            raise EvaluationError(f"thermal cap_mhz must be positive, got {cap_mhz}")
        if trip_ms < 0 or hysteresis_ms < 0:
            raise EvaluationError(
                "thermal trip_ms and hysteresis_ms must be non-negative"
            )
        if not 0.0 <= hot_load <= 1.0:
            raise EvaluationError(
                f"thermal hot_load must be in [0, 1], got {hot_load}"
            )
        self.cap_mhz = int(cap_mhz)
        self.trip_ms = float(trip_ms)
        self.hysteresis_ms = float(hysteresis_ms)
        self.hot_load = float(hot_load)
        self.engaged = False
        #: closed/open [engage_us, disengage_us|None] throttle windows
        self.engagements: list[tuple[int, Optional[int]]] = []
        self._cap_cluster: Optional[str] = None
        self._hot_us = 0
        self._cool_us = 0
        self._last_us = 0
        self._last_any_busy = 0.0

    def on_bind(self) -> None:
        platform = self.platform
        self._cap_cluster = max(
            platform.cluster_names,
            key=lambda name: _cluster_perf(platform.cluster(name).spec),
        )
        _busy_ctx, any_busy = platform.utilization_snapshot()
        self._last_us = platform.kernel.now_us
        self._last_any_busy = any_busy
        platform.kernel.schedule_in(
            THERMAL_TICK_US, self._tick, label="scenario/thermal"
        )

    def _tick(self) -> None:
        platform = self.platform
        now = platform.kernel.now_us
        _busy_ctx, any_busy = platform.utilization_snapshot()
        dt = now - self._last_us
        load = (any_busy - self._last_any_busy) / dt if dt > 0 else 0.0
        self._last_us = now
        self._last_any_busy = any_busy
        hot = load >= self.hot_load
        if self.engaged:
            if hot:
                self._cool_us = 0
            else:
                self._cool_us += dt
                if self._cool_us >= self.hysteresis_ms * 1_000.0:
                    self._set_engaged(False, now)
        else:
            if hot:
                self._hot_us += dt
                if self._hot_us >= self.trip_ms * 1_000.0:
                    self._set_engaged(True, now)
            else:
                self._hot_us = 0
        platform.kernel.schedule_in(
            THERMAL_TICK_US, self._tick, label="scenario/thermal"
        )

    def _set_engaged(self, engaged: bool, now_us: int) -> None:
        self.engaged = engaged
        self._hot_us = 0
        self._cool_us = 0
        if engaged:
            self.engagements.append((now_us, None))
        else:
            start, _open = self.engagements[-1]
            self.engagements[-1] = (start, now_us)
        if self.platform.trace.wants("scenario"):
            self.platform.trace.emit(
                now_us,
                "scenario",
                "thermal_cap",
                cluster=self._cap_cluster,
                cap_mhz=self.cap_mhz,
                engaged=engaged,
            )
        self.platform.set_frequency_cap(
            self._cap_cluster, self.cap_mhz if engaged else None
        )

    def caps_at(self, now_us: int) -> Optional[Mapping[str, int]]:
        if self.engaged and self._cap_cluster is not None:
            return {self._cap_cluster: self.cap_mhz}
        return None


@SCENARIOS.register(
    "battery",
    description="target relaxes TI -> TU when the battery runs low",
)
class BatteryScenario(Scenario):
    """Battery-aware QoS relaxation: a pure function of virtual time.

    The battery starts at ``start_pct`` and drains linearly at
    ``drain_pct_per_min``; once the level reaches ``relax_at_pct`` the
    operative target jumps from TI to TU (the paper's motivation for
    the *usable* scenario, made dynamic).
    """

    def __init__(
        self,
        start_pct: float = 100.0,
        drain_pct_per_min: float = 1.0,
        relax_at_pct: float = 20.0,
    ) -> None:
        super().__init__()
        if not 0.0 < start_pct <= 100.0:
            raise EvaluationError(
                f"battery start_pct must be in (0, 100], got {start_pct}"
            )
        if drain_pct_per_min <= 0:
            raise EvaluationError(
                f"battery drain_pct_per_min must be positive, got {drain_pct_per_min}"
            )
        if not 0.0 <= relax_at_pct <= 100.0:
            raise EvaluationError(
                f"battery relax_at_pct must be in [0, 100], got {relax_at_pct}"
            )
        self.start_pct = float(start_pct)
        self.drain_pct_per_min = float(drain_pct_per_min)
        self.relax_at_pct = float(relax_at_pct)
        if self.relax_at_pct >= self.start_pct:
            self.relax_after_us = 0
        else:
            self.relax_after_us = int(
                round(
                    (self.start_pct - self.relax_at_pct)
                    / self.drain_pct_per_min
                    * 60e6
                )
            )

    def level_pct(self, now_us: int) -> float:
        """The battery level at virtual time ``now_us``."""
        return max(
            0.0, self.start_pct - self.drain_pct_per_min * now_us / 60e6
        )

    def relax_at(self, now_us: int) -> float:
        return 1.0 if now_us >= self.relax_after_us else 0.0


@SCENARIOS.register(
    "netdelay",
    description="bursty delayed-resource work lands on the renderer thread",
)
class NetDelayScenario(Scenario):
    """Network-delayed resource arrivals.

    Arrivals follow an exponential inter-arrival distribution with mean
    ``mean_ms`` (drawn from the scenario RNG lane); each arrival queues
    ``burst`` chunks of ``work_ms`` nominal work on the renderer main
    thread, head-of-line blocking whatever frames follow — exactly the
    contention a slow network inflicts on a real page.
    """

    def __init__(
        self, mean_ms: float = 400.0, burst: int = 3, work_ms: float = 2.0
    ) -> None:
        super().__init__()
        if mean_ms <= 0:
            raise EvaluationError(f"netdelay mean_ms must be positive, got {mean_ms}")
        if burst < 1:
            raise EvaluationError(f"netdelay burst must be >= 1, got {burst}")
        if work_ms <= 0:
            raise EvaluationError(f"netdelay work_ms must be positive, got {work_ms}")
        self.mean_ms = float(mean_ms)
        self.burst = int(burst)
        self.work_ms = float(work_ms)
        self.arrivals = 0
        self._extra_work_us = 0.0
        self._target_context = None
        self._chunk: Optional[WorkUnit] = None
        self._stream = None

    def on_bind(self) -> None:
        platform = self.platform
        # Size one chunk in cycles so it runs for work_ms on the fastest
        # configuration (longer when throttled/parked — intentionally).
        spec = max(
            (platform.cluster(name).spec for name in platform.cluster_names),
            key=_cluster_perf,
        )
        self._chunk = WorkUnit(
            self.work_ms * 1_000.0 * spec.ipc_factor * spec.opps.max.freq_mhz
        )
        self._stream = self.rng.stream("netdelay/arrivals")
        self._schedule_next()

    def attach(self, browser) -> None:
        self._target_context = browser.main

    def _context(self):
        # Hand-assembled stacks may never attach a browser; fall back to
        # a dedicated context so the scenario still injects load.
        if self._target_context is None:
            self._target_context = self.platform.create_context("scenario-net")
        return self._target_context

    def _schedule_next(self) -> None:
        delay_us = max(1, int(round(self._stream.exponential(self.mean_ms * 1_000.0))))
        self.platform.kernel.schedule_in(
            delay_us, self._arrive, label="scenario/netdelay"
        )

    def _arrive(self) -> None:
        context = self._context()
        for _ in range(self.burst):
            context.submit(self._chunk, label="netdelay")
        self.arrivals += 1
        self._extra_work_us += self.burst * self.work_ms * 1_000.0
        if self.platform.trace.wants("scenario"):
            self.platform.trace.emit(
                self.platform.kernel.now_us,
                "scenario",
                "net_burst",
                burst=self.burst,
                work_ms=self.work_ms,
            )
        self._schedule_next()

    def extra_work_done_us(self) -> float:
        return self._extra_work_us


@SCENARIOS.register(
    "bgload",
    description="a background tab burns a duty cycle on its own context",
)
class BgLoadScenario(Scenario):
    """Background contention: every ``period_ms`` a chunk sized to busy
    a little core for ``duty`` of the period is submitted to a dedicated
    context.  The work never blocks the renderer directly, but it draws
    power and inflates the utilization the ``interactive`` governor
    samples — the classic background-tab tax.
    """

    def __init__(self, duty: float = 0.25, period_ms: float = 250.0) -> None:
        super().__init__()
        if not 0.0 < duty <= 1.0:
            raise EvaluationError(f"bgload duty must be in (0, 1], got {duty}")
        if period_ms <= 0:
            raise EvaluationError(
                f"bgload period_ms must be positive, got {period_ms}"
            )
        self.duty = float(duty)
        self.period_ms = float(period_ms)
        self.periods = 0
        self._extra_work_us = 0.0
        self._context = None
        self._chunk: Optional[WorkUnit] = None
        self._period_us = 0

    def on_bind(self) -> None:
        platform = self.platform
        self._context = platform.create_context("scenario-bg")
        # Background work is sized against the *littlest* cluster: a
        # duty of 0.25 busies a little core flat-out for a quarter of
        # each period (longer per chunk when parked even slower).
        spec = min(
            (platform.cluster(name).spec for name in platform.cluster_names),
            key=_cluster_perf,
        )
        busy_us = self.duty * self.period_ms * 1_000.0
        self._chunk = WorkUnit(busy_us * spec.ipc_factor * spec.opps.max.freq_mhz)
        self._period_us = max(1, int(round(self.period_ms * 1_000.0)))
        platform.kernel.schedule_in(
            self._period_us, self._tick, label="scenario/bgload"
        )

    def _tick(self) -> None:
        self._context.submit(self._chunk, label="bgload")
        self.periods += 1
        self._extra_work_us += self.duty * self.period_ms * 1_000.0
        self.platform.kernel.schedule_in(
            self._period_us, self._tick, label="scenario/bgload"
        )

    def extra_work_done_us(self) -> float:
        return self._extra_work_us
