"""Usage scenarios as first-class, parameterizable simulation actors.

Public surface::

    from repro.scenarios import SCENARIOS, Scenario, ScenarioSpec, register

    SCENARIOS.names()                       # registered vocabulary
    spec = SCENARIOS.normalize("thermal(cap_mhz=1100)")
    live = SCENARIOS.build(spec).bind(platform, rng)   # one per session

See :mod:`repro.scenarios.base` for the determinism contract and
:mod:`repro.scenarios.builtin` for the shipped scenarios.
"""

from repro.scenarios.base import Scenario, ScenarioView, interpolate_target_ms
from repro.scenarios.registry import SCENARIOS, ScenarioEntry, ScenarioRegistry
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios import builtin as _builtin  # noqa: F401  registers builtins
from repro.sim.random import RngStreams

#: Register a third-party scenario on the default registry.
register = SCENARIOS.register


def build_live_scenario(spec, platform, seed: int = 0) -> Scenario:
    """Build and bind a fresh scenario for a hand-assembled session.

    Convenience for code that wires platform/browser/policy manually
    (the CLI's trace export, :meth:`repro.session.Session.for_page`);
    the measurement runner does the equivalent internally.  Remember to
    call ``scenario.attach(browser)`` once the browser exists.
    """
    return SCENARIOS.build(spec).bind(platform, RngStreams(seed).fork("scenario"))


__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioEntry",
    "ScenarioRegistry",
    "ScenarioSpec",
    "ScenarioView",
    "build_live_scenario",
    "interpolate_target_ms",
    "register",
]
