"""Scenario objects: the environment as a simulation actor.

The paper evaluates under two *static* usage scenarios — battery
plentiful (target TI) or tight (target TU), Sec. 7.1 — which the
original code modelled as a two-value enum.  A :class:`Scenario`
generalises that label into an object that lives inside the session's
simulation: it binds to the platform, may schedule kernel events and
submit background work, and exposes a per-instant view of the
environment:

* ``operative_target_ms`` — where between TI and TU the QoS target
  currently sits (``relax`` in [0, 1]);
* ``f_max_cap_mhz`` — per-cluster frequency ceilings currently imposed
  (thermal throttling), enforced by the DVFS controller;
* ``extra_work_us`` — cumulative environment-injected work (network
  bursts, background load).

Determinism contract
--------------------
Everything a scenario does is a function of **virtual time** and its
forked RNG lane (``RngStreams(seed).fork("scenario")``): no wall-clock,
no global state.  The scalar and lockstep-batched engines advance the
same kernel events in the same order, so a dynamic scenario is
byte-identical between the two — the differential suite pins this.
Per-event QoS violations sample the operative target at the event's
*dispatch* time (see :func:`repro.evaluation.metrics.event_violation_pct`),
so accounting is insensitive to how long the frame itself took.

Scenario instances are mutable (a thermal model carries heat state) and
therefore **single-use**: everything that re-runs sessions — including
the oracle's many replays — plumbs the :class:`ScenarioSpec` and builds
a fresh instance per session via ``SCENARIOS.build(spec)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.core.qos import QoSTarget
from repro.errors import EvaluationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.browser.engine import Browser
    from repro.hardware.platform import MobilePlatform
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.random import RngStreams


def interpolate_target_ms(target: QoSTarget, relax: float) -> float:
    """The operative target for a relaxation factor in [0, 1].

    ``relax <= 0`` returns TI and ``relax >= 1`` returns TU *exactly*
    (no arithmetic): the static builtin scenarios must reproduce the
    enum path byte-for-byte, and ``TI + 1.0 * (TU - TI)`` is not always
    ``TU`` in floats.
    """
    if relax <= 0.0:
        return target.imperceptible_ms
    if relax >= 1.0:
        return target.usable_ms
    return target.imperceptible_ms + relax * (
        target.usable_ms - target.imperceptible_ms
    )


@dataclass(frozen=True)
class ScenarioView:
    """The environment at one instant, as seen by a frame."""

    #: where the operative target sits between TI (0.0) and TU (1.0)
    relax: float
    #: cluster name -> f_max ceiling in MHz, or None when uncapped
    f_max_cap_mhz: Optional[Mapping[str, int]]
    #: cumulative environment-injected work so far, in nominal us
    extra_work_us: float

    def operative_target_ms(self, target: QoSTarget) -> float:
        """The frame-latency target (ms) this view imposes."""
        return interpolate_target_ms(target, self.relax)


class Scenario:
    """Base class for usage scenarios (see the module docstring).

    Subclasses override the three state hooks (:meth:`relax_at`,
    :meth:`caps_at`, :meth:`extra_work_done_us`) and, when they act on
    the simulation, :meth:`on_bind` (schedule kernel events, create
    contexts, install caps) and :meth:`attach` (grab browser handles).
    """

    #: the canonical spec this instance was built from; set by
    #: :meth:`repro.scenarios.registry.ScenarioRegistry.build`.
    spec: "ScenarioSpec"

    def __init__(self) -> None:
        self.platform: Optional["MobilePlatform"] = None
        self.rng: Optional["RngStreams"] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def canonical(self) -> str:
        """The canonical spec string (round-trips through the grammar)."""
        return self.spec.canonical()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, platform: "MobilePlatform", rng: "RngStreams") -> "Scenario":
        """Attach this scenario to a session's platform (single use).

        ``rng`` is the session's forked ``"scenario"`` RNG lane, so
        scenario randomness never perturbs workload streams (and vice
        versa).  Returns ``self`` for chaining.
        """
        if self.platform is not None:
            raise EvaluationError(
                f"scenario {self.canonical()!r} is already bound; scenario "
                "instances carry run state — build a fresh one per session"
            )
        self.platform = platform
        self.rng = rng
        self.on_bind()
        return self

    def on_bind(self) -> None:
        """Hook: schedule actor events / create contexts.  Default no-op."""

    def attach(self, browser: "Browser") -> None:
        """Hook: called once the session's browser exists (after
        :meth:`bind`), for scenarios that inject work into browser
        threads.  Default no-op."""

    # ------------------------------------------------------------------
    # Environment state (the per-frame view)
    # ------------------------------------------------------------------
    def relax_at(self, now_us: int) -> float:
        """Target relaxation in [0, 1] at virtual time ``now_us``."""
        return 0.0

    def caps_at(self, now_us: int) -> Optional[Mapping[str, int]]:
        """Frequency ceilings in force at ``now_us`` (None = uncapped)."""
        return None

    def extra_work_done_us(self) -> float:
        """Cumulative nominal injected work so far."""
        return 0.0

    def _resolve_now(self, at_us: Optional[int]) -> int:
        if at_us is not None:
            return at_us
        if self.platform is not None:
            return self.platform.kernel.now_us
        return 0

    def view(self, at_us: Optional[int] = None) -> ScenarioView:
        """The :class:`ScenarioView` at ``at_us`` (default: now)."""
        now = self._resolve_now(at_us)
        return ScenarioView(
            relax=self.relax_at(now),
            f_max_cap_mhz=self.caps_at(now),
            extra_work_us=self.extra_work_done_us(),
        )

    def operative_target_ms(
        self, target: QoSTarget, at_us: Optional[int] = None
    ) -> float:
        """The operative frame-latency target (ms) at ``at_us``.

        This is what :meth:`repro.core.qos.QoSTarget.for_scenario`
        dispatches to for live scenario objects.
        """
        return interpolate_target_ms(target, self.relax_at(self._resolve_now(at_us)))

    def __str__(self) -> str:
        spec = getattr(self, "spec", None)
        return spec.label() if spec is not None else type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = "bound" if self.platform is not None else "unbound"
        return f"<Scenario {self} {bound}>"
