"""The scenario registry: one authoritative name -> scenario mapping.

Mirrors :class:`repro.policies.registry.PolicyRegistry`: every usage
scenario — the paper's two static ones, the dynamic builtins, and
third-party extensions — registers here once, and every layer that used
to hard-code the two enum values (the CLI's ``--scenario``, fleet mix
validation, the session facade) validates and builds through the
registry instead, so they can never disagree about the vocabulary.

Registering a scenario::

    from repro.scenarios import Scenario, register

    @register("tidal", description="target oscillates with the tide")
    class TidalScenario(Scenario):
        def __init__(self, period_s: float = 60.0):
            ...

The class ``__init__`` keyword parameters (after ``self``) define the
scenario's typed parameter schema, exactly as policy factories do:
names are validated, string values are coerced to the annotated type,
and anything unknown raises :class:`~repro.errors.EvaluationError`
with the valid parameter list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.core.qos import UsageScenario
from repro.errors import EvaluationError
from repro.policies.registry import (
    ParamInfo,
    _coerce_param,
    _introspect_params,
)
from repro.scenarios.base import Scenario
from repro.scenarios.spec import ScenarioSpec


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario: factory, parameter schema, metadata."""

    name: str
    factory: Callable[..., Scenario]
    params: tuple[ParamInfo, ...]
    description: str = ""
    aliases: Mapping[str, str] = field(default_factory=dict)

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    def param(self, name: str) -> ParamInfo:
        for info in self.params:
            if info.name == name:
                return info
        raise KeyError(name)


class ScenarioRegistry:
    """A mutable name -> :class:`ScenarioEntry` mapping with validation."""

    def __init__(self) -> None:
        self._entries: dict[str, ScenarioEntry] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        description: str = "",
        params_from: Optional[Callable] = None,
        aliases: Optional[Mapping[str, str]] = None,
        replace: bool = False,
    ) -> Callable:
        """Decorator registering a :class:`Scenario` factory (usually
        the subclass itself).

        Args:
            name: the scenario's spec name.
            description: one-line summary for listings.
            params_from: introspect this callable's signature for the
                parameter schema instead of the decorated factory's.
            aliases: short parameter spellings (e.g. ``{"cap":
                "cap_mhz"}``), resolved during normalisation so
                canonical specs always use full names.
            replace: allow re-registering an existing name (tests,
                interactive reloads); otherwise duplicates raise.
        """
        if not replace and name in self._entries:
            raise EvaluationError(f"scenario {name!r} is already registered")

        def decorator(fn: Callable) -> Callable:
            params = _introspect_params(params_from if params_from is not None else fn)
            alias_map = dict(aliases or {})
            known = {p.name for p in params}
            for short, full in alias_map.items():
                if full not in known:
                    raise EvaluationError(
                        f"alias {short!r} of scenario {name!r} targets unknown "
                        f"parameter {full!r}"
                    )
            self._entries[name] = ScenarioEntry(
                name=name,
                factory=fn,
                params=params,
                description=description,
                aliases=alias_map,
            )
            return fn

        return decorator

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """All registered scenario names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> ScenarioEntry:
        """The entry for ``name``; the one unknown-scenario error
        message every layer (runner, session, fleet mix, CLI) reports."""
        try:
            return self._entries[name]
        except KeyError:
            raise EvaluationError(
                f"unknown scenario {name!r}; known scenarios: {list(self.names())}"
            ) from None

    def describe(self) -> dict[str, str]:
        """name -> one-line description, for CLI/docs listings."""
        return {name: self._entries[name].description for name in self.names()}

    # ------------------------------------------------------------------
    # Validation / construction
    # ------------------------------------------------------------------
    def normalize(
        self, spec: "ScenarioSpec | str | UsageScenario"
    ) -> ScenarioSpec:
        """Validate a spec against its scenario's schema and return the
        canonical form: aliases resolved, values type-coerced, params
        sorted.  Accepts the legacy :class:`UsageScenario` enum values
        for back-compat.  Raises :class:`EvaluationError` on unknown
        scenario names, unknown parameters, or type mismatches."""
        if isinstance(spec, UsageScenario):
            spec = spec.value
        spec = ScenarioSpec.coerce(spec)
        entry = self.get(spec.name)
        resolved: dict[str, object] = {}
        for key, value in spec.params:
            full = entry.aliases.get(key, key)
            if full not in {p.name for p in entry.params}:
                if not entry.params:
                    raise EvaluationError(
                        f"scenario {spec.name!r} accepts no parameters "
                        f"(got {key!r})"
                    )
                raise EvaluationError(
                    f"unknown parameter {key!r} for scenario {spec.name!r}; "
                    f"valid parameters: {entry.param_names}"
                )
            if full in resolved:
                raise EvaluationError(
                    f"duplicate parameter {full!r} in scenario {spec.name!r} "
                    "(alias and full name both given)"
                )
            resolved[full] = _coerce_param(
                spec.name, entry.param(full), value, kind="scenario"
            )
        return ScenarioSpec(spec.name, tuple(resolved.items()))

    def build(self, spec: "ScenarioSpec | str | UsageScenario") -> Scenario:
        """Instantiate the (unbound) live scenario a spec describes.

        The caller binds it to a session with
        ``scenario.bind(platform, rng)``; instances are single-use.
        """
        spec = self.normalize(spec)
        entry = self.get(spec.name)
        scenario = entry.factory(**spec.params_dict)
        if not isinstance(scenario, Scenario):
            raise EvaluationError(
                f"scenario factory {spec.name!r} returned "
                f"{type(scenario).__name__}, not a Scenario"
            )
        scenario.spec = spec
        return scenario


#: The process-wide default registry.  ``repro.scenarios`` registers the
#: built-in scenarios on import; third parties add theirs via
#: :func:`repro.scenarios.register`.
SCENARIOS = ScenarioRegistry()
