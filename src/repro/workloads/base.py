"""Workload base types and work-distribution helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.browser.page import Page
from repro.core.qos import QoSType
from repro.web.events import InteractionKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.interactions import InteractionTrace

MCYCLES = 1_000_000.0


@dataclass(frozen=True)
class ApplicationSpec:
    """Table 3 metadata for one application.

    ``full_*`` fields describe the *full interaction* trace; the
    ``micro_*`` fields describe the micro-benchmark interaction.
    """

    name: str
    display_name: str
    domain: str
    micro_interaction: InteractionKind
    micro_qos_type: QoSType
    micro_target_label: str  # e.g. "(16.6, 33.3) ms"
    full_duration_s: int
    full_events: int
    annotation_pct: float
    annotated_manually: bool = False  # the paper's '*' rows

    def __str__(self) -> str:
        return self.display_name


@dataclass
class AppBundle:
    """Everything needed to run one application in an experiment."""

    spec: ApplicationSpec
    page: Page
    #: Developer-written GreenWeb annotations (CSS text), including the
    #: manual QoS-target corrections of Sec. 7.3.
    manual_annotation_css: str
    micro_trace: "InteractionTrace"
    full_trace: "InteractionTrace"

    def apply_manual_annotations(self) -> None:
        """Merge the manual annotation CSS into the page stylesheet."""
        from repro.web.css.parser import parse_stylesheet

        if self.manual_annotation_css.strip():
            self.page.stylesheet.extend(parse_stylesheet(self.manual_annotation_css))


def lognormal_mcycles(
    rng: np.random.Generator, mean_mcycles: float, sigma: float = 0.25
) -> float:
    """Draw a work amount (reference cycles) from a lognormal centred
    on ``mean_mcycles`` — callback costs on real pages are right-skewed."""
    mu = np.log(mean_mcycles) - sigma**2 / 2.0
    return float(rng.lognormal(mu, sigma)) * MCYCLES


def bimodal_mcycles(
    rng: np.random.Generator,
    light_mcycles: float,
    heavy_mcycles: float,
    heavy_probability: float,
    sigma: float = 0.15,
) -> float:
    """Light/heavy mixture (e.g. LZMA-JS compressing small vs. large
    buffers)."""
    mean = heavy_mcycles if rng.random() < heavy_probability else light_mcycles
    return lognormal_mcycles(rng, mean, sigma)


def surge_complexity(
    rng: np.random.Generator,
    base: float,
    surge_probability: float,
    surge_factor: float,
) -> float:
    """Per-frame render complexity with occasional surges — the frame
    pattern behind W3Schools'/Cnet's usable-mode violations (Sec. 7.2)."""
    value = base * float(rng.uniform(0.9, 1.1))
    if rng.random() < surge_probability:
        value *= surge_factor
    return value
