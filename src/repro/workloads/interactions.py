"""Interaction traces and the replay driver (the Mosaic substitute).

A trace is a deterministic, timestamped list of user inputs (the paper
replays recorded interactions with Mosaic to eliminate human noise,
Sec. 7.1).  Trace builders compose the LTM primitives:

* ``load_interaction`` — one ``load`` on the document root,
* ``tap`` — a ``click`` (optionally with the ``touchstart``/
  ``touchend`` envelope real touch screens deliver),
* ``move_burst`` — ``touchstart``, a stream of ``touchmove`` events at
  the touch-sample rate, ``touchend``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import WorkloadError
from repro.sim.clock import ms_to_us
from repro.web.events import EventType

if TYPE_CHECKING:  # pragma: no cover
    from repro.browser.engine import Browser

#: Touch-sample interval for Moving interactions (~60 Hz digitizer).
TOUCH_SAMPLE_US = 16_000


@dataclass(frozen=True)
class ScriptedEvent:
    """One input in a trace: what fires, where, and when."""

    at_us: int
    event_type: EventType
    target_id: str  # element id; "" targets the document root

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise WorkloadError(f"negative event time {self.at_us}")


@dataclass
class InteractionTrace:
    """A deterministic sequence of user inputs."""

    name: str
    events: list[ScriptedEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration_us(self) -> int:
        """Time of the last input (the run itself settles afterwards)."""
        return max((e.at_us for e in self.events), default=0)

    @property
    def duration_s(self) -> float:
        return self.duration_us / 1_000_000

    def extend(self, events: list[ScriptedEvent]) -> None:
        self.events.extend(events)

    def sorted_events(self) -> list[ScriptedEvent]:
        return sorted(self.events, key=lambda e: e.at_us)


# ----------------------------------------------------------------------
# Trace builders
# ----------------------------------------------------------------------
def load_interaction(at_us: int = 0) -> list[ScriptedEvent]:
    """The Loading (L) primitive: a page-load event on the root."""
    return [ScriptedEvent(at_us, EventType.LOAD, "")]


def tap(at_us: int, target_id: str, with_touch_envelope: bool = False) -> list[ScriptedEvent]:
    """The Tapping (T) primitive.

    With ``with_touch_envelope`` the tap delivers the real event triple
    ``touchstart``/``touchend``/``click`` (80 ms apart, as fingers do);
    otherwise just the ``click``.
    """
    if not with_touch_envelope:
        return [ScriptedEvent(at_us, EventType.CLICK, target_id)]
    return [
        ScriptedEvent(at_us, EventType.TOUCHSTART, target_id),
        ScriptedEvent(at_us + 80_000, EventType.TOUCHEND, target_id),
        ScriptedEvent(at_us + 85_000, EventType.CLICK, target_id),
    ]


def move_burst(
    at_us: int,
    target_id: str,
    move_count: int,
    sample_us: int = TOUCH_SAMPLE_US,
    as_scroll: bool = False,
) -> list[ScriptedEvent]:
    """The Moving (M) primitive: a finger drag/scroll gesture."""
    if move_count < 0:
        raise WorkloadError("move_count must be non-negative")
    move_type = EventType.SCROLL if as_scroll else EventType.TOUCHMOVE
    events = [ScriptedEvent(at_us, EventType.TOUCHSTART, target_id)]
    t = at_us
    for _ in range(move_count):
        t += sample_us
        events.append(ScriptedEvent(t, move_type, target_id))
    events.append(ScriptedEvent(t + sample_us, EventType.TOUCHEND, target_id))
    return events


def repeat_interaction(
    builder, repetitions: int, spacing_us: int, name: str
) -> InteractionTrace:
    """Repeat a single-interaction builder (``builder(at_us) -> events``)
    ``repetitions`` times at a fixed spacing — the micro-benchmark shape
    (Sec. 7.2 exercises one interaction repeatedly)."""
    trace = InteractionTrace(name)
    for index in range(repetitions):
        trace.extend(builder(index * spacing_us))
    return trace


# ----------------------------------------------------------------------
# Replay driver
# ----------------------------------------------------------------------
class InteractionDriver:
    """Replays a trace into a browser (the Mosaic substitute)."""

    def __init__(self, browser: "Browser") -> None:
        self.browser = browser
        self.dispatched: list[ScriptedEvent] = []

    def schedule(self, trace: InteractionTrace) -> None:
        """Schedule every trace event at its absolute timestamp
        (relative to the current simulated time)."""
        base = self.browser.kernel.now_us
        for scripted in trace.sorted_events():
            self.browser.kernel.schedule_at(
                base + scripted.at_us,
                lambda s=scripted: self._fire(s),
                label=f"trace:{scripted.event_type}",
            )

    def _fire(self, scripted: ScriptedEvent) -> None:
        if scripted.target_id:
            target = self.browser.page.document.get_element_by_id(scripted.target_id)
            if target is None:
                raise WorkloadError(
                    f"trace targets missing element #{scripted.target_id} "
                    f"in page {self.browser.page.name!r}"
                )
        else:
            target = self.browser.page.document.root
        self.browser.dispatch_event(scripted.event_type, target)
        self.dispatched.append(scripted)

    def run(self, trace: InteractionTrace, settle_us: int = 3_000_000) -> None:
        """Schedule the trace, run past its end, then settle until all
        inputs complete (bounded)."""
        self.schedule(trace)
        self.browser.run_for(trace.duration_us + ms_to_us(100))
        self.browser.run_until_quiescent(max_extra_us=settle_us)
