"""HTML documents for the twelve applications.

Each application's DOM is built from markup (through the library's own
HTML parser) rather than assembled programmatically: the structure,
class vocabulary, and stylesheet of each page resemble its real
counterpart, and the CSS exercises the engine's full selector surface
(attribute selectors, ``:not()``, sibling combinators, media queries).

The *interactive* elements — the ones the traces target and the
callbacks attach to — keep the stable ids the rest of the workload
layer uses (``#story-link``, ``#feed``, ...).  Render costs are not
derived from DOM size (they are calibrated per app in ``apps.py``), so
this content shapes behaviourally relevant structure (selector
matching, bubbling paths, AutoGreen discovery) without perturbing the
calibration.
"""

from __future__ import annotations

_BASE_CSS = """
  body { margin: 0; font-family: sans; }
  header { height: 56px; }
  nav > a { padding: 8px; }
  a[href^='https'] { color: green; }
  @media (max-width: 600px) { aside { display: none; } }
"""


def bbc_markup() -> str:
    stories = "\n".join(
        f"<article class='story' data-section='{section}'>"
        f"<h2 class='headline'></h2><p class='summary'></p></article>"
        for section in ("world", "uk", "business", "tech", "science", "health")
    )
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      article.story {{ margin: 12px; }}
      article.story:not(.promoted) h2 {{ font-weight: bold; }}
      .ticker + .story {{ border-top: 1px solid; }}
    </style>
    <body>
      <header><nav id="top-nav">
        <a href="https://bbc.co.uk/news">News</a>
        <a href="https://bbc.co.uk/sport">Sport</a>
        <a href="https://bbc.co.uk/weather">Weather</a>
      </nav></header>
      <main>
        <div class="ticker"></div>
        <div id="story-link" class="headline promoted"></div>
        {stories}
        <div id="misc-area"><div class="ad-slot"></div><div class="ad-slot"></div></div>
      </main>
      <footer><a href="https://bbc.co.uk/about">About</a></footer>
    </body>
    </html>
    """


def google_markup() -> str:
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      #search-box {{ width: 400px; }}
      .suggestion:not(.sponsored) {{ padding: 4px; }}
      input[type=text] {{ border: 1px; }}
    </style>
    <body>
      <div class="logo"></div>
      <form role="search">
        <input type="text" name="q">
        <div id="search-box" class="searchbar"></div>
        <div class="suggestions">
          <div class="suggestion"></div>
          <div class="suggestion"></div>
          <div class="suggestion sponsored"></div>
        </div>
      </form>
      <div id="footer" class="links">
        <a href="https://about.google">About</a>
        <a href="https://policies.google.com">Privacy</a>
        <a href="https://google.com/settings">Settings</a>
      </div>
      <div class="doodle-banner"><img src="/doodle.png"></div>
      <footer class="country"><span class="region"></span></footer>
    </body>
    </html>
    """


def camanjs_markup() -> str:
    filters = "\n".join(
        f"<button class='filter' data-filter='{name}'></button>"
        for name in ("vintage", "lomo", "clarity", "sincity", "sunrise")
    )
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      canvas {{ width: 800px; height: 600px; }}
      button.filter {{ margin: 4px; }}
      button.filter + button.filter {{ margin-left: 0; }}
    </style>
    <body>
      <canvas id="editor-canvas"></canvas>
      <div class="toolbar">
        <div id="filter-btn" class="button primary"></div>
        {filters}
      </div>
      <div class="histogram"><span class="r"></span><span class="g"></span><span class="b"></span></div>
      <footer class="credits"><a href="http://camanjs.com">CamanJS</a></footer>
    </body>
    </html>
    """


def lzma_js_markup() -> str:
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      textarea {{ width: 100%; height: 200px; }}
      .progress[data-state=busy] {{ opacity: 0.5; }}
    </style>
    <body>
      <textarea id="input-text"></textarea>
      <div class="controls">
        <div id="compress-btn" class="button"></div>
        <select id="level"><option value="1"></option><option value="9"></option></select>
      </div>
      <div class="progress" data-state="idle"></div>
      <pre id="output"></pre>
      <div class="stats"><span class="ratio"></span><span class="elapsed"></span></div>
      <footer class="about"><a href="https://github.com/LZMA-JS">Source</a>
        <p class="license"></p></footer>
    </body>
    </html>
    """


def msn_markup() -> str:
    cards = "\n".join(
        f"<div class='card' data-topic='{topic}'><img src='/{topic}.jpg'>"
        f"<h3></h3></div>"
        for topic in ("news", "money", "sports", "lifestyle", "weather",
                      "entertainment", "autos", "health")
    )
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      .card {{ width: 300px; }}
      .card:not([data-topic=news]) img {{ height: 160px; }}
      nav .nav {{ display: inline; }}
    </style>
    <body>
      <header><nav id="main-nav">
        <div id="nav-item" class="nav"></div>
        <a href="https://msn.com/money">Money</a>
        <a href="https://msn.com/sports">Sports</a>
      </nav></header>
      <main>
        <div id="teaser" class="hero"></div>
        {cards}
      </main>
    </body>
    </html>
    """


def todo_markup() -> str:
    items = "\n".join(
        f"<li class='todo-item{' done' if i % 3 == 0 else ''}'></li>" for i in range(8)
    )
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      li.todo-item.done {{ text-decoration: line-through; }}
      li.todo-item + li.todo-item {{ border-top: 1px dotted; }}
    </style>
    <body>
      <section class="todoapp">
        <input id="new-todo" type="text">
        <div id="add-btn" class="button add"></div>
        <ul class="todo-list">
          <li id="item-toggle" class="todo-item"></li>
          {items}
        </ul>
        <footer class="filters">
          <a href="#all">All</a><a href="#active">Active</a>
        </footer>
      </section>
    </body>
    </html>
    """


def amazon_markup() -> str:
    tiles = "\n".join(
        f"<div class='product' data-asin='B{i:07d}'><img src='/p{i}.jpg'>"
        f"<span class='price'></span></div>"
        for i in range(10)
    )
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      .product {{ width: 180px; }}
      .product[data-asin^='B00'] .price {{ color: red; }}
      .scrollable {{ overflow: scroll; }}
    </style>
    <body>
      <header><div class="searchbar"></div></header>
      <div id="feed" class="scrollable main-feed">{tiles}</div>
      <div id="sidebar" class="scrollable related"></div>
      <div id="reviews" class="scrollable reviews">
        <div class="review"></div><div class="review"></div>
      </div>
      <div id="buy-btn" class="button buy-now"></div>
    </body>
    </html>
    """


def craigslist_markup() -> str:
    rows = "\n".join(
        f"<li class='result-row' data-id='{7000 + i}'><a href='https://x/{i}'></a>"
        f"<span class='result-price'></span></li>"
        for i in range(15)
    )
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      .result-row {{ padding: 6px; }}
      .result-row:not(:first-child) {{ border-top: 1px; }}
    </style>
    <body>
      <header class="bchead"></header>
      <ul id="list" class="rows">{rows}</ul>
      <div id="post-link" class="button post"></div>
    </body>
    </html>
    """


def paperjs_markup() -> str:
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      #canvas {{ width: 100%; height: 500px; }}
      .tool[data-active=true] {{ outline: 2px solid; }}
    </style>
    <body>
      <div class="toolbar">
        <div class="tool" data-active="true"></div>
        <div class="tool"></div>
        <div class="tool"></div>
      </div>
      <div id="canvas" class="drawing"></div>
      <div class="layers"><div class="layer" data-z="0"></div>
        <div class="layer" data-z="1"></div><div class="layer" data-z="2"></div></div>
      <div class="statusbar"><span class="coords"></span><span class="zoom"></span></div>
      <footer><a href="https://paperjs.org/reference">Reference</a></footer>
    </body>
    </html>
    """


def cnet_markup() -> str:
    stories = "\n".join(
        "<article class='river-item'><img><h3></h3></article>" for _ in range(6)
    )
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      #menu {{ height: 0; }}
      .river-item ~ .river-item {{ margin-top: 8px; }}
      article img {{ width: 220px; }}
    </style>
    <body>
      <header>
        <div id="menu" class="expandable mega-menu">
          <a href="https://cnet.com/reviews">Reviews</a>
          <a href="https://cnet.com/news">News</a>
        </div>
      </header>
      <main class="river">{stories}</main>
      <div id="other" class="load-more"></div>
    </body>
    </html>
    """


def goo_ne_jp_markup() -> str:
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      #panel {{ width: 100px; transition: width 0.5s; }}
      .portal-link[href$='.jp'] {{ font-size: 12px; }}
    </style>
    <body>
      <header class="portal-head"></header>
      <div id="panel" class="nav expandable">
        <a class="portal-link" href="https://mail.goo.ne.jp">Mail</a>
        <a class="portal-link" href="https://news.goo.ne.jp">News</a>
        <a class="portal-link" href="https://dict.goo.ne.jp">Dict</a>
      </div>
      <div id="link" class="topics"></div>
      <div class="ranking"><ol><li></li><li></li><li></li><li></li><li></li></ol></div>
      <div class="weather" data-region="tokyo"></div>
      <footer class="portal-foot"><a href="https://help.goo.ne.jp">Help</a></footer>
    </body>
    </html>
    """


def w3schools_markup() -> str:
    chapters = "\n".join(
        f"<a class='chapter' href='/css/{name}.asp'></a>"
        for name in ("intro", "syntax", "selectors", "colors", "boxmodel")
    )
    return f"""
    <html>
    <style>
      {_BASE_CSS}
      #tryit {{ height: 0; }}
      .chapter:not(.active) {{ color: gray; }}
      .w3-sidebar a + a {{ border-top: 1px; }}
    </style>
    <body>
      <div class="w3-sidebar">{chapters}</div>
      <main>
        <div id="tryit" class="editor tryit-pane"></div>
        <div id="nav" class="next-prev"></div>
        <div class="example"><pre></pre></div>
        <div class="example"><pre></pre></div>
        <table class="reference"><tr><td></td><td></td></tr>
          <tr><td></td><td></td></tr></table>
      </main>
      <footer class="w3-foot"><a href="https://w3schools.com/about">About</a></footer>
    </body>
    </html>
    """


#: app name -> markup builder
APP_MARKUP = {
    "bbc": bbc_markup,
    "google": google_markup,
    "camanjs": camanjs_markup,
    "lzma_js": lzma_js_markup,
    "msn": msn_markup,
    "todo": todo_markup,
    "amazon": amazon_markup,
    "craigslist": craigslist_markup,
    "paperjs": paperjs_markup,
    "cnet": cnet_markup,
    "goo_ne_jp": goo_ne_jp_markup,
    "w3schools": w3schools_markup,
}
