"""Workloads: the paper's twelve applications and interaction traces.

The paper evaluates on twelve real web applications (Table 3) crawled
with HTTrack and replayed with Mosaic.  The reproduction substitutes
synthetic application models that preserve what the evaluation actually
exercises:

* the **interaction class** (Loading / Tapping / Moving) and QoS
  category of each app's micro-benchmark interaction,
* callback CPU cost distributions shaped to each app's role in the
  results (light Todo taps, heavy LZMA-JS compression, MSN's
  peak-performance requirement, W3Schools' frame-complexity surges…),
* per-app DOMs, CSS (transitions where animations are CSS-driven) and
  GreenWeb annotations with roughly Table 3's annotation coverage, and
* deterministic (seeded) micro and full interaction traces matching
  Table 3's event counts and durations.
"""

from repro.workloads.base import AppBundle, ApplicationSpec
from repro.workloads.interactions import (
    InteractionDriver,
    InteractionTrace,
    ScriptedEvent,
)
from repro.workloads.registry import APP_NAMES, build_app, table3_specs

__all__ = [
    "ApplicationSpec",
    "AppBundle",
    "ScriptedEvent",
    "InteractionTrace",
    "InteractionDriver",
    "APP_NAMES",
    "build_app",
    "table3_specs",
]
