"""The twelve applications of the paper's Table 3.

Each builder returns an :class:`~repro.workloads.base.AppBundle`:
a page (DOM + CSS + callbacks), the developer's manual GreenWeb
annotation CSS (including the Sec. 7.3 long-latency corrections), and
the micro / full interaction traces sized to Table 3.

Work magnitudes (reference big-core Mcycles) are calibrated so each
application plays the role the paper reports for it — see the comments
on every builder and DESIGN.md Sec. 2 for the substitution argument.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.browser.page import Page
from repro.browser.stages import RenderCostModel
from repro.core.qos import QoSType
from repro.sim.clock import s_to_us
from repro.sim.random import RngStreams
from repro.web.css.parser import parse_stylesheet
from repro.web.html import parse_html
from repro.workloads.markup import APP_MARKUP
from repro.web.events import EventType, InteractionKind
from repro.web.script import Callback
from repro.workloads.base import (
    AppBundle,
    ApplicationSpec,
    bimodal_mcycles,
    lognormal_mcycles,
    surge_complexity,
)
from repro.workloads.interactions import (
    InteractionTrace,
    ScriptedEvent,
    load_interaction,
    move_burst,
    repeat_interaction,
    tap,
)


def _page(
    name: str,
    seed: int,
    css: str = "",
    render_cost: Optional[RenderCostModel] = None,
    native_scroll_complexity: float = 0.0,
) -> Page:
    """Build an application page: its DOM and base stylesheet come from
    the app's HTML document (:mod:`repro.workloads.markup`), parsed by
    the library's own HTML/CSS engines."""
    document, sheet = parse_html(APP_MARKUP[name]())
    rng = RngStreams(seed).fork(name).stream("page")
    page = Page(
        name=name,
        document=document,
        render_cost=render_cost or RenderCostModel(),
        rng=rng,
        native_scroll_complexity=native_scroll_complexity,
    )
    page.stylesheet.extend(sheet)
    if css:
        page.stylesheet.extend(parse_stylesheet(css))
    return page


def _spread(
    trace: InteractionTrace,
    count: int,
    start_s: float,
    end_s: float,
    builder: Callable[[int], list[ScriptedEvent]],
) -> None:
    """Append ``count`` interactions evenly spread over [start, end]."""
    if count <= 0:
        return
    span = s_to_us(end_s) - s_to_us(start_s)
    step = span // max(1, count - 1) if count > 1 else 0
    for index in range(count):
        trace.extend(builder(s_to_us(start_s) + index * step))


# ======================================================================
# Loading applications (single, long)
# ======================================================================
def build_bbc(seed: int = 0) -> AppBundle:
    """BBC: news front page.  Heavy load (~2.5 s at peak) whose first
    meaningful frame is the QoS frame; the minimum-frequency profiling
    run blows the 1 s imperceptible target — the paper's Fig. 9b BBC
    violation.  Post-load ad/analytics timers are pure post-frame work."""
    spec = ApplicationSpec(
        name="bbc", display_name="BBC", domain="news",
        micro_interaction=InteractionKind.LOADING,
        micro_qos_type=QoSType.SINGLE, micro_target_label="(1, 10) s",
        full_duration_s=86, full_events=60, annotation_pct=20.0,
        annotated_manually=True,
    )
    page = _page("bbc", seed, render_cost=RenderCostModel(
        style_cycles=1_200_000, layout_cycles=2_500_000,
        paint_cycles=3_000_000, composite_cycles=800_000,
        composite_fixed_us=2_500,
    ))
    doc = page.document

    def on_load(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 820.0, sigma=0.06), fixed_us=120_000)
        ctx.mark_dirty(3.0)  # first meaningful frame
        ctx.set_timeout(lambda c: c.do_work(lognormal_mcycles(c.rng, 250.0)), 600)
        ctx.set_timeout(lambda c: c.do_work(lognormal_mcycles(c.rng, 120.0)), 1500)

    def on_story(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 35.0))
        ctx.mark_dirty(1.2)

    def on_misc(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 12.0))
        ctx.mark_dirty(0.6)

    doc.root.add_event_listener("load", Callback(on_load, "bbcLoad"))
    doc.get_element_by_id("story-link").add_event_listener("click", Callback(on_story, "openStory"))
    doc.get_element_by_id("misc-area").add_event_listener("click", Callback(on_misc, "misc"))

    manual_css = """
    html:QoS { onload-qos: single, long; }
    div#story-link:QoS { onclick-qos: single, short; }
    """
    micro = repeat_interaction(load_interaction, repetitions=3,
                               spacing_us=s_to_us(28), name="bbc-micro-loading")
    full = InteractionTrace("bbc-full")
    full.extend(load_interaction(0))
    _spread(full, 11, 6.0, 82.0, lambda t: tap(t, "story-link"))
    _spread(full, 48, 7.0, 86.0, lambda t: tap(t, "misc-area"))
    return AppBundle(spec, page, manual_css, micro, full)


def build_google(seed: int = 0) -> AppBundle:
    """Google: search page.  Lighter load than BBC (fits the 1 s target
    even at modest configurations) plus instant-search suggestion taps."""
    spec = ApplicationSpec(
        name="google", display_name="Google", domain="search",
        micro_interaction=InteractionKind.LOADING,
        micro_qos_type=QoSType.SINGLE, micro_target_label="(1, 10) s",
        full_duration_s=31, full_events=26, annotation_pct=87.5,
    )
    page = _page("google", seed)
    doc = page.document

    def on_load(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 600.0, sigma=0.08), fixed_us=60_000)
        ctx.mark_dirty(1.5)

    def on_suggest(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 18.0))
        ctx.mark_dirty(0.5)

    def on_footer(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 6.0))
        ctx.mark_dirty(0.3)

    doc.root.add_event_listener("load", Callback(on_load, "googleLoad"))
    doc.get_element_by_id("search-box").add_event_listener("click", Callback(on_suggest, "suggest"))
    doc.get_element_by_id("footer").add_event_listener("click", Callback(on_footer, "footer"))

    manual_css = """
    html:QoS { onload-qos: single, long; }
    div#search-box:QoS { onclick-qos: single, short; }
    """
    micro = repeat_interaction(load_interaction, repetitions=3,
                               spacing_us=s_to_us(12), name="google-micro-loading")
    full = InteractionTrace("google-full")
    full.extend(load_interaction(0))
    _spread(full, 22, 3.0, 30.6, lambda t: tap(t, "search-box"))
    _spread(full, 3, 5.0, 29.0, lambda t: tap(t, "footer"))
    return AppBundle(spec, page, manual_css, micro, full)


# ======================================================================
# Tapping applications, single QoS type
# ======================================================================
def build_camanjs(seed: int = 0) -> AppBundle:
    """CamanJS: client-side image editing.  A filter tap is a heavy but
    little-core-feasible job against the (1, 10) s target — one of the
    three apps whose imperceptible-mode savings come from little-core
    configurations (Fig. 9a discussion)."""
    spec = ApplicationSpec(
        name="camanjs", display_name="CamanJS", domain="image editing",
        micro_interaction=InteractionKind.TAPPING,
        micro_qos_type=QoSType.SINGLE, micro_target_label="(1, 10) s",
        full_duration_s=49, full_events=24, annotation_pct=100.0,
    )
    page = _page("camanjs", seed)
    doc = page.document

    def on_filter(ctx):
        # ~200 Mcycles: 0.11 s at big-max, ~0.8 s on little@600 —
        # inside TI=1 s either way, so the predictor picks little.
        ctx.do_work(lognormal_mcycles(ctx.rng, 200.0, sigma=0.12), fixed_us=8_000)
        ctx.mark_dirty(2.0)

    doc.get_element_by_id("filter-btn").add_event_listener("click", Callback(on_filter, "applyFilter"))

    manual_css = "div#filter-btn:QoS { onclick-qos: single, long; }\n"
    micro = repeat_interaction(lambda t: tap(t, "filter-btn"), repetitions=5,
                               spacing_us=s_to_us(8), name="camanjs-micro-tapping")
    full = InteractionTrace("camanjs-full")
    _spread(full, 24, 1.0, 48.5, lambda t: tap(t, "filter-btn"))
    return AppBundle(spec, page, manual_css, micro, full)


def build_lzma_js(seed: int = 0) -> AppBundle:
    """LZMA-JS: in-browser compression.  Bimodal job sizes: most taps
    compress small buffers (little-core friendly) but occasional large
    buffers overshoot the 1 s imperceptible target at low frequencies —
    together with profiling runs, the Fig. 9b LZMA-JS violations."""
    spec = ApplicationSpec(
        name="lzma_js", display_name="LZMA-JS", domain="utility",
        micro_interaction=InteractionKind.TAPPING,
        micro_qos_type=QoSType.SINGLE, micro_target_label="(1, 10) s",
        full_duration_s=53, full_events=39, annotation_pct=100.0,
    )
    page = _page("lzma_js", seed)
    doc = page.document

    def on_compress(ctx):
        ctx.do_work(bimodal_mcycles(ctx.rng, 240.0, 400.0, heavy_probability=0.10, sigma=0.08),
                    fixed_us=5_000)
        ctx.mark_dirty(0.8)

    doc.get_element_by_id("compress-btn").add_event_listener(
        "click", Callback(on_compress, "compress"))

    manual_css = "div#compress-btn:QoS { onclick-qos: single, long; }\n"
    micro = repeat_interaction(lambda t: tap(t, "compress-btn"), repetitions=5,
                               spacing_us=s_to_us(8), name="lzma-micro-tapping")
    full = InteractionTrace("lzma-full")
    _spread(full, 39, 1.0, 52.5, lambda t: tap(t, "compress-btn"))
    return AppBundle(spec, page, manual_css, micro, full)


def build_msn(seed: int = 0) -> AppBundle:
    """MSN: news portal.  Nav taps need near-peak performance to stay
    inside the 100 ms imperceptible target, so the minimum-frequency
    profiling run causes significant violations (Sec. 7.2)."""
    spec = ApplicationSpec(
        name="msn", display_name="MSN", domain="news portal",
        micro_interaction=InteractionKind.TAPPING,
        micro_qos_type=QoSType.SINGLE, micro_target_label="(100, 300) ms",
        full_duration_s=59, full_events=126, annotation_pct=51.2,
    )
    page = _page("msn", seed, render_cost=RenderCostModel(
        style_cycles=1_000_000, layout_cycles=2_000_000,
        paint_cycles=2_500_000, composite_cycles=700_000,
        composite_fixed_us=2_500,
    ))
    doc = page.document

    def on_nav(ctx):
        # ~100 Mcycles: ~60 ms at big-max (inside TI=100 ms), ~130 ms
        # at big-min (a violation during the second profiling run).
        ctx.do_work(lognormal_mcycles(ctx.rng, 90.0, sigma=0.05), fixed_us=4_000)
        ctx.mark_dirty(2.2)

    def on_teaser(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 25.0))
        ctx.mark_dirty(1.0)

    doc.get_element_by_id("nav-item").add_event_listener("click", Callback(on_nav, "navTap"))
    doc.get_element_by_id("teaser").add_event_listener("click", Callback(on_teaser, "teaser"))

    manual_css = """
    div#nav-item:QoS {
      onclick-qos: single, short;
      ontouchstart-qos: single, short;
      ontouchend-qos: single, short;
    }
    """
    micro = repeat_interaction(lambda t: tap(t, "nav-item"), repetitions=6,
                               spacing_us=s_to_us(3), name="msn-micro-tapping")
    full = InteractionTrace("msn-full")
    _spread(full, 21, 1.0, 56.0, lambda t: tap(t, "nav-item", with_touch_envelope=True))
    _spread(full, 21, 2.0, 58.0, lambda t: tap(t, "teaser", with_touch_envelope=True))
    return AppBundle(spec, page, manual_css, micro, full)


def build_todo(seed: int = 0) -> AppBundle:
    """Todo: the classic TodoMVC app.  Very light taps against a 100 ms
    target — the poster child for little-core-only operation and the
    largest imperceptible-mode savings (Fig. 9a discussion)."""
    spec = ApplicationSpec(
        name="todo", display_name="Todo", domain="productivity",
        micro_interaction=InteractionKind.TAPPING,
        micro_qos_type=QoSType.SINGLE, micro_target_label="(100, 300) ms",
        full_duration_s=26, full_events=26, annotation_pct=38.3,
    )
    page = _page("todo", seed, render_cost=RenderCostModel(
        style_cycles=200_000, layout_cycles=400_000,
        paint_cycles=600_000, composite_cycles=250_000,
        composite_fixed_us=1_500,
    ))
    doc = page.document

    def on_add(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 8.0))
        ctx.mark_dirty(0.5)

    def on_toggle(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 4.0))
        ctx.mark_dirty(0.3)

    doc.get_element_by_id("add-btn").add_event_listener("click", Callback(on_add, "addTodo"))
    doc.get_element_by_id("item-toggle").add_event_listener("click", Callback(on_toggle, "toggle"))

    manual_css = "div#add-btn:QoS { onclick-qos: single, short; }\n"
    micro = repeat_interaction(lambda t: tap(t, "add-btn"), repetitions=6,
                               spacing_us=s_to_us(2), name="todo-micro-tapping")
    full = InteractionTrace("todo-full")
    _spread(full, 10, 0.5, 25.0, lambda t: tap(t, "add-btn"))
    _spread(full, 16, 1.0, 26.0, lambda t: tap(t, "item-toggle"))
    return AppBundle(spec, page, manual_css, micro, full)


# ======================================================================
# Moving applications (continuous)
# ======================================================================
def build_amazon(seed: int = 0) -> AppBundle:
    """Amazon: product-feed scrolling.  Scroll frames carry moderate
    render complexity with occasional surges as product tiles land."""
    spec = ApplicationSpec(
        name="amazon", display_name="Amazon", domain="e-commerce",
        micro_interaction=InteractionKind.MOVING,
        micro_qos_type=QoSType.CONTINUOUS, micro_target_label="(16.6, 33.3) ms",
        full_duration_s=36, full_events=101, annotation_pct=33.0,
        annotated_manually=True,
    )
    page = _page("amazon", seed, native_scroll_complexity=0.4,
                 render_cost=RenderCostModel(
                     style_cycles=700_000, layout_cycles=1_400_000,
                     paint_cycles=1_800_000, composite_cycles=600_000,
                     composite_fixed_us=2_200,
                 ))
    doc = page.document

    def scroll_handler(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 1.6, sigma=0.2))
        ctx.mark_dirty(surge_complexity(ctx.rng, 1.1, surge_probability=0.05,
                                        surge_factor=2.0))

    for element_id in ("feed", "sidebar", "reviews"):
        doc.get_element_by_id(element_id).add_event_listener(
            "touchmove", Callback(scroll_handler, f"scroll-{element_id}"))

    def on_buy(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 30.0))
        ctx.mark_dirty(1.5)

    doc.get_element_by_id("buy-btn").add_event_listener("click", Callback(on_buy, "buy"))

    manual_css = """
    div#feed:QoS {
      ontouchmove-qos: continuous;
      ontouchstart-qos: continuous;
      ontouchend-qos: continuous;
    }
    """
    micro = repeat_interaction(
        lambda t: move_burst(t, "feed", move_count=60),
        repetitions=3, spacing_us=s_to_us(4), name="amazon-micro-moving")
    full = InteractionTrace("amazon-full")
    full.extend(move_burst(s_to_us(2), "feed", move_count=31))
    full.extend(move_burst(s_to_us(14), "sidebar", move_count=31))
    full.extend(move_burst(s_to_us(34.8), "reviews", move_count=31))
    full.extend(tap(s_to_us(10), "buy-btn"))
    full.extend(tap(s_to_us(30), "buy-btn"))
    return AppBundle(spec, page, manual_css, micro, full)


def build_craigslist(seed: int = 0) -> AppBundle:
    """Craigslist: text-heavy listing scroll — light frames, so even
    tight continuous targets fit cheap configurations."""
    spec = ApplicationSpec(
        name="craigslist", display_name="Craigslist", domain="classifieds",
        micro_interaction=InteractionKind.MOVING,
        micro_qos_type=QoSType.CONTINUOUS, micro_target_label="(16.6, 33.3) ms",
        full_duration_s=25, full_events=22, annotation_pct=84.6,
    )
    page = _page("craigslist", seed, native_scroll_complexity=0.3,
                 render_cost=RenderCostModel(
                     style_cycles=300_000, layout_cycles=600_000,
                     paint_cycles=800_000, composite_cycles=300_000,
                     composite_fixed_us=1_800,
                 ))
    doc = page.document

    def scroll_handler(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 0.9, sigma=0.2))
        ctx.mark_dirty(0.8)

    doc.get_element_by_id("list").add_event_listener(
        "touchmove", Callback(scroll_handler, "listScroll"))

    def on_post(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 15.0))
        ctx.mark_dirty(1.0)

    doc.get_element_by_id("post-link").add_event_listener("click", Callback(on_post, "openPost"))

    manual_css = """
    ul#list:QoS {
      ontouchmove-qos: continuous;
      ontouchstart-qos: continuous;
      ontouchend-qos: continuous;
    }
    """
    micro = repeat_interaction(
        lambda t: move_burst(t, "list", move_count=60),
        repetitions=3, spacing_us=s_to_us(4), name="craigslist-micro-moving")
    full = InteractionTrace("craigslist-full")
    full.extend(move_burst(s_to_us(2), "list", move_count=18))
    full.extend(tap(s_to_us(15), "post-link"))
    full.extend(tap(s_to_us(24), "post-link"))
    return AppBundle(spec, page, manual_css, micro, full)


def build_paperjs(seed: int = 0) -> AppBundle:
    """Paper.js: canvas drawing.  The paper's Fig. 5 idiom: touchmove
    handlers drive a rAF drawing loop; every frame pays real script
    work (path tessellation) plus canvas repaint."""
    spec = ApplicationSpec(
        name="paperjs", display_name="Paper.js", domain="drawing",
        micro_interaction=InteractionKind.MOVING,
        micro_qos_type=QoSType.CONTINUOUS, micro_target_label="(16.6, 33.3) ms",
        full_duration_s=16, full_events=560, annotation_pct=100.0,
    )
    page = _page("paperjs", seed, render_cost=RenderCostModel(
        style_cycles=200_000, layout_cycles=300_000,
        paint_cycles=2_200_000, composite_cycles=500_000,
        composite_fixed_us=2_000,
    ))
    doc = page.document

    def draw_tick(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 3.0, sigma=0.15))
        ctx.mark_dirty(1.2)
        if ctx.now_ms - ctx.state.get("last_move_ms", -1e12) < 60.0:
            ctx.request_animation_frame(draw_tick)
        else:
            ctx.state["ticking"] = False

    def on_move(ctx):
        ctx.state["last_move_ms"] = ctx.now_ms
        ctx.do_work(lognormal_mcycles(ctx.rng, 0.3, sigma=0.2))
        if not ctx.state.get("ticking", False):
            ctx.state["ticking"] = True
            ctx.request_animation_frame(draw_tick)

    doc.get_element_by_id("canvas").add_event_listener(
        "touchmove", Callback(on_move, "onMove"))

    manual_css = """
    div#canvas:QoS {
      ontouchmove-qos: continuous;
      ontouchstart-qos: continuous;
      ontouchend-qos: continuous;
    }
    """
    micro = repeat_interaction(
        lambda t: move_burst(t, "canvas", move_count=120),
        repetitions=2, spacing_us=s_to_us(5), name="paperjs-micro-moving")
    full = InteractionTrace("paperjs-full")
    full.extend(move_burst(s_to_us(1), "canvas", move_count=278))
    full.extend(move_burst(s_to_us(10.9), "canvas", move_count=278))
    return AppBundle(spec, page, manual_css, micro, full)


# ======================================================================
# Tapping applications, continuous QoS type
# ======================================================================
def build_cnet(seed: int = 0) -> AppBundle:
    """Cnet: tapping expands a media-heavy panel with a library-driven
    animation whose frames occasionally surge in complexity — the
    usable-mode violation case of Sec. 7.2."""
    spec = ApplicationSpec(
        name="cnet", display_name="Cnet", domain="tech news",
        micro_interaction=InteractionKind.TAPPING,
        micro_qos_type=QoSType.CONTINUOUS, micro_target_label="(16.6, 33.3) ms",
        full_duration_s=46, full_events=60, annotation_pct=55.3,
    )
    page = _page("cnet", seed)
    doc = page.document

    def on_menu(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 10.0))
        rng = ctx.rng
        ctx.animate(
            ctx.document.get_element_by_id("menu"), "height", duration_ms=600,
            frame_complexity=lambda: surge_complexity(
                rng, 1.2, surge_probability=0.15, surge_factor=3.0),
            frame_script_cycles=400_000,
        )

    def on_other(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 8.0))
        ctx.mark_dirty(0.8)

    doc.get_element_by_id("menu").add_event_listener("click", Callback(on_menu, "expandMenu"))
    doc.get_element_by_id("other").add_event_listener("click", Callback(on_other, "other"))

    manual_css = """
    div#menu:QoS {
      onclick-qos: continuous;
      ontouchstart-qos: continuous;
      ontouchend-qos: continuous;
    }
    """
    micro = repeat_interaction(lambda t: tap(t, "menu"), repetitions=6,
                               spacing_us=s_to_us(3), name="cnet-micro-tapping")
    full = InteractionTrace("cnet-full")
    _spread(full, 11, 1.0, 42.0, lambda t: tap(t, "menu", with_touch_envelope=True))
    _spread(full, 9, 3.0, 45.0, lambda t: tap(t, "other", with_touch_envelope=True))
    return AppBundle(spec, page, manual_css, micro, full)


def build_goo_ne_jp(seed: int = 0) -> AppBundle:
    """Goo.ne.jp: portal whose nav panels expand via a CSS transition —
    the paper's Fig. 4 annotation pattern verbatim."""
    spec = ApplicationSpec(
        name="goo_ne_jp", display_name="Goo.ne.jp", domain="portal",
        micro_interaction=InteractionKind.TAPPING,
        micro_qos_type=QoSType.CONTINUOUS, micro_target_label="(16.6, 33.3) ms",
        full_duration_s=16, full_events=23, annotation_pct=51.8,
    )
    page = _page("goo_ne_jp", seed)
    doc = page.document

    def on_panel(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 8.0))
        panel = ctx.document.get_element_by_id("panel")
        current = panel.style.get("width", "100px")
        ctx.set_style(panel, "width", "500px" if current == "100px" else "100px",
                      complexity=1.5)

    def on_link(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 10.0))
        ctx.mark_dirty(0.8)

    doc.get_element_by_id("panel").add_event_listener("touchstart", Callback(on_panel, "expandPanel"))
    doc.get_element_by_id("link").add_event_listener("click", Callback(on_link, "openLink"))

    manual_css = """
    div#panel:QoS {
      ontouchstart-qos: continuous;
      ontouchend-qos: continuous;
      onclick-qos: continuous;
    }
    """
    micro = repeat_interaction(
        lambda t: [ScriptedEvent(t, EventType.TOUCHSTART, "panel")],
        repetitions=6, spacing_us=s_to_us(2), name="goo-micro-tapping")
    full = InteractionTrace("goo-full")
    _spread(full, 4, 1.0, 13.0, lambda t: tap(t, "panel", with_touch_envelope=True))
    _spread(full, 3, 2.5, 14.0, lambda t: tap(t, "link", with_touch_envelope=True))
    _spread(full, 2, 6.0, 15.0, lambda t: tap(t, "link"))
    return AppBundle(spec, page, manual_css, micro, full)


def build_w3schools(seed: int = 0) -> AppBundle:
    """W3Schools: try-it editor panes animate open; frame complexity
    surges (code highlighting batches) drive the usable-mode violations
    the paper singles out (Sec. 7.2)."""
    spec = ApplicationSpec(
        name="w3schools", display_name="W3Schools", domain="education",
        micro_interaction=InteractionKind.TAPPING,
        micro_qos_type=QoSType.CONTINUOUS, micro_target_label="(16.6, 33.3) ms",
        full_duration_s=64, full_events=59, annotation_pct=100.0,
    )
    page = _page("w3schools", seed)
    doc = page.document

    def on_tryit(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 12.0))
        rng = ctx.rng
        ctx.animate(
            ctx.document.get_element_by_id("tryit"), "height", duration_ms=800,
            frame_complexity=lambda: surge_complexity(
                rng, 1.1, surge_probability=0.20, surge_factor=3.5),
            frame_script_cycles=500_000,
        )

    def on_nav(ctx):
        ctx.do_work(lognormal_mcycles(ctx.rng, 10.0))
        ctx.mark_dirty(0.7)

    doc.get_element_by_id("tryit").add_event_listener("click", Callback(on_tryit, "openTryit"))
    doc.get_element_by_id("nav").add_event_listener("click", Callback(on_nav, "nav"))

    manual_css = """
    div#tryit:QoS {
      onclick-qos: continuous;
      ontouchstart-qos: continuous;
      ontouchend-qos: continuous;
    }
    div#nav:QoS { onclick-qos: single, short; }
    """
    micro = repeat_interaction(lambda t: tap(t, "tryit"), repetitions=6,
                               spacing_us=s_to_us(3), name="w3schools-micro-tapping")
    full = InteractionTrace("w3schools-full")
    _spread(full, 19, 1.0, 63.5, lambda t: tap(t, "tryit", with_touch_envelope=True))
    _spread(full, 2, 20.0, 50.0, lambda t: tap(t, "nav"))
    return AppBundle(spec, page, manual_css, micro, full)


#: name -> builder, in the paper's Table 3 order.
APP_BUILDERS: dict[str, Callable[[int], AppBundle]] = {
    "bbc": build_bbc,
    "google": build_google,
    "camanjs": build_camanjs,
    "lzma_js": build_lzma_js,
    "msn": build_msn,
    "todo": build_todo,
    "amazon": build_amazon,
    "craigslist": build_craigslist,
    "paperjs": build_paperjs,
    "cnet": build_cnet,
    "goo_ne_jp": build_goo_ne_jp,
    "w3schools": build_w3schools,
}
