"""Background application load (paper Sec. 8's multi-app discussion).

"We believe that this ACMP-based runtime design is also applicable when
multiple mobile applications are concurrently consuming CPU resources
... today's ACMP systems have ample CPU resources ... the GreenWeb
runtime system will still have a large trade-off space to schedule,
although with fewer resources."

:class:`BackgroundApplication` occupies one spare execution context
with periodic work bursts (music decode, sync services, a background
tab).  It shares the cluster's DVFS configuration with the foreground
browser — whatever the foreground policy picks, the background work
rides along, consuming a core and energy.
"""

from __future__ import annotations


from repro.errors import WorkloadError
from repro.hardware.core import WorkUnit
from repro.hardware.platform import MobilePlatform
from repro.sim.clock import ms_to_us


class BackgroundApplication:
    """Periodic CPU bursts on a dedicated context."""

    def __init__(
        self,
        platform: MobilePlatform,
        period_ms: float = 50.0,
        burst_mcycles: float = 2.0,
        name: str = "background-app",
    ) -> None:
        if period_ms <= 0:
            raise WorkloadError(f"non-positive period: {period_ms}")
        if burst_mcycles < 0:
            raise WorkloadError(f"negative burst size: {burst_mcycles}")
        self.platform = platform
        self.period_us = ms_to_us(period_ms)
        self.burst_cycles = burst_mcycles * 1e6
        self.name = name
        self.bursts_run = 0
        self._context = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Claim a context and begin the periodic bursts."""
        if self._running:
            return
        if self._context is None:
            self._context = self.platform.create_context(self.name)
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Stop issuing new bursts (an in-flight burst completes)."""
        self._running = False

    def _arm(self) -> None:
        self.platform.kernel.schedule_in(self.period_us, self._burst, label=self.name)

    def _burst(self) -> None:
        if not self._running:
            return
        self._context.submit(WorkUnit(self.burst_cycles), label=f"{self.name}-burst")
        self.bursts_run += 1
        self._arm()
