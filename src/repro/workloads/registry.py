"""Workload registry: build applications by name, Table 3 metadata."""

from __future__ import annotations


from repro.errors import WorkloadError
from repro.workloads.apps import APP_BUILDERS
from repro.workloads.base import AppBundle, ApplicationSpec

#: All application names, Table 3 order.
APP_NAMES: tuple[str, ...] = tuple(APP_BUILDERS)


def build_app(name: str, seed: int = 0, with_manual_annotations: bool = True) -> AppBundle:
    """Build a fresh application bundle.

    Args:
        name: one of :data:`APP_NAMES`.
        seed: workload RNG seed (deterministic per (name, seed)).
        with_manual_annotations: merge the developer's GreenWeb
            annotations into the page stylesheet (the paper's manual or
            AutoGreen-plus-corrections annotation state).  Pass False
            to get the *unannotated* application, e.g. to run AutoGreen
            on it from scratch.

    Raises:
        WorkloadError: for an unknown application name.
    """
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        raise WorkloadError(f"unknown application {name!r}; known: {list(APP_NAMES)}") from None
    bundle = builder(seed)
    if with_manual_annotations:
        bundle.apply_manual_annotations()
    return bundle


def table3_specs() -> list[ApplicationSpec]:
    """The Table 3 metadata rows for all twelve applications."""
    return [APP_BUILDERS[name](0).spec for name in APP_NAMES]


def app_spec(name: str) -> ApplicationSpec:
    """Metadata for one application without building its page twice."""
    if name not in APP_BUILDERS:
        raise WorkloadError(f"unknown application {name!r}")
    return APP_BUILDERS[name](0).spec
