"""A miniature of the paper's Sec. 7.3 full-interaction study.

Runs the full (~43 s, ~94 event) interaction traces for a subset of
applications under all four policies and renders the Fig. 10-style
table plus the Fig. 11 configuration distribution.

Usage::

    python examples/full_interaction_study.py [app ...]

Default subset: todo (light taps), msn (heavy taps), w3schools
(animation with surges) — one representative per interaction regime.
Pass application names to study others, or ``all`` for every app
(takes a few seconds).
"""

import sys

from repro.evaluation.experiments import (
    run_fig10_full_interactions,
    run_fig11_distribution,
    run_fig12_switching,
)
from repro.evaluation.report import render_fig10, render_fig11, render_fig12
from repro.workloads import APP_NAMES


def main() -> None:
    args = sys.argv[1:]
    if args == ["all"]:
        apps = list(APP_NAMES)
    elif args:
        unknown = [a for a in args if a not in APP_NAMES]
        if unknown:
            raise SystemExit(f"unknown apps: {unknown}; choose from {', '.join(APP_NAMES)}")
        apps = args
    else:
        apps = ["todo", "msn", "w3schools"]

    print(f"running full interactions for: {', '.join(apps)}\n")
    rows = run_fig10_full_interactions(apps=apps)
    print(render_fig10(rows))
    print()
    print(render_fig11(run_fig11_distribution(fig10_rows=rows)))
    print()
    print(render_fig12(run_fig12_switching(fig10_rows=rows)))


if __name__ == "__main__":
    main()
