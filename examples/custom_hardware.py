"""Running GreenWeb on custom hardware.

The paper's runtime is one design point ("GreenWeb language extensions
do not pose constraints on specific runtime implementations", Sec. 10),
and this library's platform layer is equally parameterisable.  This
example builds a next-generation SoC — wider big cores, a faster
little cluster, on-chip voltage regulators — and compares GreenWeb's
behaviour on it against the paper's Exynos-5410-class platform.
"""

from repro.browser.engine import Browser
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import UsageScenario
from repro.core.runtime import GreenWebRuntime
from repro.hardware.core import ClusterSpec
from repro.hardware.frequency import OperatingPoint, OppTable
from repro.hardware.platform import MobilePlatform, odroid_xu_e
from repro.workloads import InteractionDriver, build_app


def next_gen_platform() -> MobilePlatform:
    """A hypothetical 2020s-class SoC: A76-like big, A55-like little."""
    big = ClusterSpec(
        name="big",
        microarchitecture="Cortex-A76-like",
        core_count=4,
        ipc_factor=1.8,  # much wider than an A15
        ceff_nf=0.75,
        leakage_w_per_v=0.30,
        opps=OppTable(
            [OperatingPoint(f, 0.75 + (f - 1000) / 1600 * 0.35)
             for f in range(1000, 2601, 200)]
        ),
    )
    little = ClusterSpec(
        name="little",
        microarchitecture="Cortex-A55-like",
        core_count=4,
        ipc_factor=0.9,
        ceff_nf=0.12,
        leakage_w_per_v=0.04,
        opps=OppTable(
            [OperatingPoint(f, 0.70 + (f - 500) / 1300 * 0.25)
             for f in range(500, 1801, 260)]
        ),
    )
    return MobilePlatform(
        cluster_specs=[big, little],
        record_power_intervals=False,
        freq_switch_overhead_us=5,  # integrated voltage regulators
        migration_overhead_us=10,
    )


def run_on(platform, label):
    bundle = build_app("w3schools")
    registry = AnnotationRegistry.from_stylesheet(bundle.page.stylesheet)
    runtime = GreenWebRuntime(platform, registry, UsageScenario.IMPERCEPTIBLE)
    browser = Browser(platform, bundle.page, policy=runtime)
    driver = InteractionDriver(browser)
    driver.schedule(bundle.micro_trace)
    platform.run_for(bundle.micro_trace.duration_us + 4_000_000)

    latencies = browser.tracker.all_frame_latencies_us()
    mean_latency = sum(latencies) / len(latencies) / 1000 if latencies else 0
    little_time = sum(
        1 for r in platform.trace.filter(category="config", name="applied")
        if r["cluster"] == "little"
    )
    print(f"{label:28s} energy={platform.meter.total_j*1000:8.1f} mJ "
          f"frames={browser.stats.frames:4d} mean-frame={mean_latency:5.1f} ms "
          f"configs-applied={platform.dvfs.switch_count}")
    return platform.meter.total_j


def main() -> None:
    print("GreenWeb (imperceptible) on two platforms, W3Schools micro trace:\n")
    baseline = run_on(odroid_xu_e(record_power_intervals=False),
                      "Exynos-5410 class (paper)")
    modern = run_on(next_gen_platform(), "next-gen SoC (A76/A55-like)")
    print(f"\nThe faster little cluster absorbs frames the 5410's A7 could not,")
    print(f"so the same annotations yield "
          f"{100*(1-modern/baseline):.0f}% less energy with no code changes —")
    print("the portability argument of the paper's Sec. 10.")


if __name__ == "__main__":
    main()
