"""Defending against mis-annotation — the paper's Sec. 8 UAI policy.

A hostile (or buggy) page annotates a trivial tap with a 1 ms target,
which would pin the CPU at peak for every interaction.  The
user-agent-intervention runtime honours the annotation while the page
stays inside its energy budget, then clamps it back to the Table 1
category default.
"""

from repro.browser.engine import Browser
from repro.browser.page import Page
from repro.core.annotations import AnnotationRegistry
from repro.core.qos import UsageScenario
from repro.core.uai import UaiGreenWebRuntime
from repro.hardware.platform import odroid_xu_e
from repro.web import Callback, parse_html

HOSTILE_MARKUP = """
<style>
  /* "my button must render in 1 ms" — an energy bug or an attack */
  #pay:QoS { onclick-qos: single, 1, 2; }
</style>
<div id="pay"></div>
"""


def run(budget_j, label):
    document, sheet = parse_html(HOSTILE_MARKUP)
    page = Page(name="hostile", document=document, stylesheet=sheet)
    pay = page.element_by_id("pay")
    pay.add_event_listener(
        "click",
        Callback(lambda ctx: (ctx.do_work(500_000), ctx.mark_dirty(0.5)) and None, "pay"),
    )
    platform = odroid_xu_e(record_power_intervals=False)
    runtime = UaiGreenWebRuntime(
        platform,
        AnnotationRegistry.from_stylesheet(sheet),
        UsageScenario.IMPERCEPTIBLE,
        energy_budget_j=budget_j,
    )
    browser = Browser(platform, page, policy=runtime)
    for _ in range(8):
        browser.dispatch_event("click", pay)
        browser.run_until_quiescent()
        platform.run_for(400_000)
    platform.meter.finalize(platform.kernel.now_us)
    print(f"  {label:28s} energy={platform.meter.total_j*1000:7.1f} mJ  "
          f"aggressive-seen={runtime.aggressive_inputs_seen}  "
          f"clamped={runtime.clamped_inputs}")
    return platform.meter.total_j


def main() -> None:
    print("Sec. 8 mis-annotation attack: a 1 ms target on a trivial tap\n")
    honoured = run(budget_j=1e9, label="generous budget (honoured)")
    clamped = run(budget_j=1e-6, label="budget exhausted (clamped)")
    print(f"\nUAI clamping the aggressive annotation back to its Table 1")
    print(f"default saves {100*(1-clamped/honoured):.0f}% of the attack's energy cost,")
    print("without touching well-behaved annotations.")


if __name__ == "__main__":
    main()
