"""Quickstart: run a paper workload under GreenWeb vs. the baselines.

Usage::

    python examples/quickstart.py [app]

Runs the chosen application's micro-benchmark interaction (default:
``cnet``) under the Perf baseline, Android's Interactive governor, and
GreenWeb in both usage scenarios, then prints the energy/QoS scorecard
— a one-app slice of the paper's Fig. 9/10.
"""

import sys

from repro import Session
from repro.workloads import APP_NAMES


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "cnet"
    if app not in APP_NAMES:
        raise SystemExit(f"unknown app {app!r}; choose from {', '.join(APP_NAMES)}")

    print(f"Application: {app}")
    print(f"{'policy':24s} {'energy (mJ)':>12s} {'violations':>11s} {'frames':>7s}")
    print("-" * 58)

    runs = [
        ("perf", "imperceptible", "Perf"),
        ("interactive", "imperceptible", "Interactive"),
        ("greenweb", "imperceptible", "GreenWeb-I"),
        ("greenweb", "usable", "GreenWeb-U"),
    ]
    baseline_mj = None
    for governor, scenario, label in runs:
        session = Session.for_application(app, governor=governor, scenario=scenario)
        result = session.run_micro_interaction()
        energy_mj = result.active_energy_j * 1000
        if baseline_mj is None:
            baseline_mj = energy_mj
        saving = 100 * (1 - energy_mj / baseline_mj)
        print(
            f"{label:24s} {energy_mj:12.1f} {result.mean_violation_pct:10.2f}% "
            f"{result.frames:7d}   ({saving:+.1f}% vs Perf)"
        )

    print()
    print("GreenWeb trades a few percent of QoS headroom for large energy")
    print("savings; the usable scenario (tight battery) saves the most.")


if __name__ == "__main__":
    main()
