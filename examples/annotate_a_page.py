"""Annotating a page with GreenWeb, end to end — the paper's Fig. 4.

Builds the paper's CSS-transition example verbatim: a ``div#ex`` whose
``width`` animates over 2 s when tapped, annotated with::

    div#ex:QoS { ontouchstart-qos: continuous; }

then runs it under GreenWeb and shows (a) the annotation the runtime
resolved, (b) the continuous frame sequence it tracked, and (c) the
configurations it chose frame by frame.
"""

from repro import Session
from repro.web import Callback, parse_html

FIG4_MARKUP = """
<style>
  #ex { width: 100px; transition: width 2s; }
  div#ex:QoS { ontouchstart-qos: continuous; }
</style>
<div id="ex"></div>
"""


def main() -> None:
    from repro.browser.page import Page
    from repro.core.annotations import AnnotationRegistry

    document, stylesheet = parse_html(FIG4_MARKUP)
    page = Page(name="fig4", document=document, stylesheet=stylesheet)
    ex = page.element_by_id("ex")

    # The JavaScript of Fig. 4: the touchstart callback re-writes the
    # width, which triggers the CSS transition.
    def animate_expanding(ctx):
        ctx.do_work(300_000)  # callback's own script work
        ctx.set_style(ex, "width", "500px", complexity=1.3)

    ex.add_event_listener("touchstart", Callback(animate_expanding, "animateExpanding"))

    # What does the language layer see?
    registry = AnnotationRegistry.from_stylesheet(stylesheet)
    spec = registry.lookup(ex, "touchstart")
    print(f"annotation resolved for (div#ex, touchstart): {spec}")

    # Run it under the GreenWeb runtime (imperceptible scenario).
    platform, browser, runtime = Session.for_page(
        page, governor="greenweb", scenario="imperceptible"
    )
    msg = browser.dispatch_event("touchstart", ex)
    browser.run_for(2_600_000)  # the 2 s transition plus slack
    configs = [
        f"{record.time_us/1000:8.1f} ms  ->  {record['cluster']}@{record['freq_mhz']}MHz"
        for record in platform.trace.filter(category="config", name="applied")
    ]

    record = browser.tracker.record(msg.uid)
    print(f"\nframes associated with the touchstart: {record.frame_count}")
    latencies = record.frame_latencies_us
    print(f"frame latency (ms): first={latencies[0]/1000:.1f} "
          f"median={sorted(latencies)[len(latencies)//2]/1000:.1f} "
          f"max={max(latencies)/1000:.1f} (target: 16.6 imperceptible)")
    print(f"energy consumed: {platform.meter.total_j*1000:.1f} mJ")
    print("\nconfiguration decisions:")
    for line in configs[:10]:
        print("  " + line)
    if len(configs) > 10:
        print(f"  ... {len(configs) - 10} more")


if __name__ == "__main__":
    main()
