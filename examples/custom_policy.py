"""Register and run a third-party scheduling policy.

Usage::

    python examples/custom_policy.py [app]

Everything the evaluation harness accepts as a "governor" is a policy
spec resolved through ``repro.policies.POLICIES``, so plugging in your
own scheduler is three steps: write a ``BrowserPolicy``, register a
factory for it, and name it (with parameters) anywhere a spec string
goes — ``run_workload``, ``Session``, sweeps, or a fleet ``--mix``.

The example policy is a deliberately simple "two-gear" scheduler: big
cluster while any input is in flight, the slowest config otherwise.
No annotations, no prediction — it bounds what input-gating alone buys
compared to the paper's annotation-driven runtime.
"""

import sys

from repro.browser.engine import BrowserPolicy
from repro.core.qos import UsageScenario
from repro.evaluation.runner import run_workload
from repro.policies import POLICIES, register
from repro.workloads import APP_NAMES


class TwoGearPolicy(BrowserPolicy):
    """Big cluster while inputs are in flight, idle config otherwise."""

    def __init__(self, platform, registry, scenario, busy_mhz=1800):
        configs = platform.all_configs()
        self.platform = platform
        self.idle_config = configs[0]
        candidates = [c for c in configs if c.cluster == "big" and c.freq_mhz == busy_mhz]
        if not candidates:
            raise ValueError(f"no big@{busy_mhz}MHz config on this platform")
        self.busy_config = candidates[0]
        self._in_flight = 0

    def on_input(self, msg, event):
        self._in_flight += 1
        self.platform.set_config(self.busy_config)

    def on_input_complete(self, record):
        self._in_flight = max(0, self._in_flight - 1)
        if self._in_flight == 0:
            self.platform.set_config(self.idle_config)


def _two_gear_schema(busy_mhz: int = 1800):
    """Parameter schema for the registry (names, types, defaults)."""


@register(
    "two_gear",
    description="big cluster while inputs are in flight, idle otherwise",
    params_from=_two_gear_schema,
)
def build_two_gear(platform, registry, scenario, busy_mhz=1800):
    return TwoGearPolicy(platform, registry, scenario, busy_mhz=busy_mhz)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "cnet"
    if app not in APP_NAMES:
        raise SystemExit(f"unknown app {app!r}; choose from {', '.join(APP_NAMES)}")

    print("Registered policies:")
    for name, description in POLICIES.describe().items():
        print(f"  {name:12s} {description}")
    print()

    print(f"Application: {app} (micro trace, imperceptible)")
    print(f"{'policy':28s} {'energy (mJ)':>12s} {'violations':>11s}")
    print("-" * 54)
    for spec in ("perf", "two_gear", "two_gear(busy_mhz=1600)", "greenweb"):
        result = run_workload(app, spec, UsageScenario.IMPERCEPTIBLE, "micro", 0)
        print(
            f"{result.governor:28s} {result.active_energy_j * 1000:12.1f} "
            f"{result.mean_violation_pct:10.2f}%"
        )

    print()
    print("Input-gating alone saves energy over Perf, but without the")
    print("annotations GreenWeb exploits it cannot slow busy frames down")
    print("to the QoS target — that gap is the paper's contribution.")


if __name__ == "__main__":
    main()
