"""AutoGreen: automatic annotation without developer intervention.

Takes the LZMA-JS workload *without* its manual annotations, runs the
three AutoGreen phases (discover -> profile -> generate), prints the
generated GreenWeb CSS, then applies the paper's Sec. 7.3 manual
correction step (AutoGreen conservatively assumes ``short`` for single
events; compression taps deserve ``long``) and compares the energy of
the two annotation states under the GreenWeb runtime.
"""

from repro.autogreen import AutoGreen, generate_annotations
from repro.autogreen.generate import annotate_page, registry_for_page
from repro.browser.engine import Browser
from repro.core.qos import UsageScenario
from repro.core.runtime import GreenWebRuntime
from repro.hardware.platform import odroid_xu_e
from repro.workloads import InteractionDriver, build_app


def run_annotated(bundle, label):
    platform = odroid_xu_e(record_power_intervals=False)
    runtime = GreenWebRuntime(
        platform, registry_for_page(bundle.page), UsageScenario.IMPERCEPTIBLE
    )
    browser = Browser(platform, bundle.page, policy=runtime)
    driver = InteractionDriver(browser)
    driver.run(bundle.micro_trace)
    platform.meter.finalize(platform.kernel.now_us)
    print(f"  {label:30s} energy={platform.meter.total_j*1000:8.1f} mJ "
          f"frames={browser.stats.frames}")
    return platform.meter.total_j


def main() -> None:
    # Phase-by-phase view on the unannotated application.
    bundle = build_app("lzma_js", with_manual_annotations=False)
    autogreen = AutoGreen(bundle.page)
    targets = autogreen.discover()
    print(f"discovered {len(targets)} annotation target(s):")
    for element, event_type in targets:
        print(f"  <{element.tag} id={element.id!r}> on {event_type}")

    results = autogreen.run()
    for result in results:
        signals = ", ".join(str(s) for s in result.signals) or "none"
        print(f"profiled {result.event_type} -> QoS type {result.qos_type} "
              f"(signals: {signals})")

    report = generate_annotations(results)
    print("\ngenerated GreenWeb CSS:")
    for line in report.css_text.splitlines():
        print("  " + line)

    print("\nenergy comparison (imperceptible scenario):")
    # (a) AutoGreen only: conservative single/short targets.
    auto_bundle = build_app("lzma_js", with_manual_annotations=False)
    annotate_page(auto_bundle.page)
    auto_j = run_annotated(auto_bundle, "AutoGreen (conservative)")

    # (b) AutoGreen + the Sec. 7.3 manual correction (single, long).
    corrected = build_app("lzma_js", with_manual_annotations=True)
    corrected_j = run_annotated(corrected, "AutoGreen + manual correction")

    saving = 100 * (1 - corrected_j / auto_j)
    print(f"\ncorrecting the QoS target to 'long' saves a further {saving:.1f}%")
    print("(AutoGreen favours QoS over energy when it cannot know event")
    print(" semantics — exactly the paper's Sec. 5 design decision.)")


if __name__ == "__main__":
    main()
