"""Tests for the report renderers (figure-shaped text tables)."""

import pytest

from repro.cli import main
from repro.core.qos import QoSType
from repro.evaluation.experiments import (
    DistributionRow,
    FullInteractionRow,
    MicrobenchRow,
    SwitchingRow,
    Table3Row,
)
from repro.evaluation.report import (
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_table1,
    render_table3,
)
from repro.hardware.dvfs import CpuConfig


def micro_row(app="todo", i=40.0, u=30.0, vi=0.5, vu=0.2):
    return MicrobenchRow(
        app=app,
        qos_type=QoSType.SINGLE,
        perf_energy_j=1.0,
        greenweb_i_energy_norm_pct=i,
        greenweb_u_energy_norm_pct=u,
        greenweb_i_added_violation_pct=vi,
        greenweb_u_added_violation_pct=vu,
    )


def full_row(app="todo", interactive=98.0, i=50.0, u=30.0):
    return FullInteractionRow(
        app=app,
        perf_energy_j=5.0,
        interactive_energy_norm_pct=interactive,
        greenweb_i_energy_norm_pct=i,
        greenweb_u_energy_norm_pct=u,
        interactive_added_violation_i_pct=0.0,
        interactive_added_violation_u_pct=0.0,
        greenweb_i_added_violation_pct=1.0,
        greenweb_u_added_violation_pct=0.5,
    )


class TestRenderers:
    def test_table1_contains_all_categories(self):
        text = render_table1()
        # two 'single' rows (plus mentions inside descriptions)
        assert text.count("single") >= 2
        assert "continuous" in text
        assert "(16.6, 33.3) ms" in text
        assert "(1, 10) s" in text

    def test_fig9_summary_lines(self):
        text = render_fig9([micro_row(), micro_row(app="msn", i=80, u=70)])
        assert "paper: 31.9%" in text
        assert "msn" in text
        # mean saving = 100 - (40+80)/2 = 40
        assert "GreenWeb-I 40.0%" in text

    def test_fig10_sorted_ascending_by_greenweb_i(self):
        text = render_fig10([full_row(app="zzz", i=80), full_row(app="aaa", i=20)])
        assert text.index("aaa") < text.index("zzz")  # paper sorts ascending
        assert "paper: 29.2%" in text

    def test_fig10_saving_properties(self):
        row = full_row(interactive=100.0, i=50.0, u=25.0)
        assert row.greenweb_i_saving_vs_interactive_pct == pytest.approx(50.0)
        assert row.greenweb_u_saving_vs_interactive_pct == pytest.approx(75.0)

    def test_fig10_zero_interactive_guard(self):
        row = full_row(interactive=0.0)
        assert row.greenweb_i_saving_vs_interactive_pct == 0.0

    def test_fig11_cluster_shares(self):
        row = DistributionRow(
            app="x",
            residency_i={CpuConfig("big", 1800): 0.7, CpuConfig("little", 350): 0.3},
            residency_u={CpuConfig("little", 350): 1.0},
        )
        text = render_fig11([row])
        assert "70.0" in text and "30.0" in text and "100.0" in text
        assert row.big_fraction_i == pytest.approx(0.7)
        assert row.big_fraction_u == 0.0

    def test_fig12_totals(self):
        row = SwitchingRow("x", 10.0, 5.0, 8.0, 2.0)
        assert row.total_i == 15.0
        assert row.total_u == 10.0
        text = render_fig12([row])
        assert "paper: ~20%" in text

    def test_table3_paper_vs_measured_format(self):
        row = Table3Row(
            app="todo", interaction="Tapping", qos_type="Single",
            qos_target="(100, 300) ms", paper_duration_s=26,
            measured_duration_s=26.0, paper_events=26, measured_events=26,
            paper_annotation_pct=38.3, measured_annotation_pct=38.5,
        )
        text = render_table3([row])
        assert "26/26" in text
        assert "38.3" in text and "38.5" in text


class TestAnalyzeCommand:
    def test_analyze_runs(self, capsys):
        assert main(["analyze", "todo", "--governor", "perf"]) == 0
        out = capsys.readouterr().out
        assert "frame timeline" in out
        assert "p50=" in out
        assert "jank" in out
