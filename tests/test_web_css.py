"""Tests for the CSS tokenizer, parser, selectors, cascade, transitions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CssSyntaxError, SelectorError
from repro.web import Document
from repro.web.css import (
    CssTokenType,
    parse_selector,
    parse_stylesheet,
    tokenize,
)
from repro.web.css.transitions import (
    animation_for,
    parse_animation_value,
    parse_transition_value,
    transition_for,
)


def value_tokens(css_value: str):
    return tuple(t for t in tokenize(css_value) if t.type is not CssTokenType.EOF)


class TestTokenizer:
    def test_idents_and_punct(self):
        types = [t.type for t in tokenize("div { width: 100px; }")]
        assert types == [
            CssTokenType.IDENT,
            CssTokenType.LBRACE,
            CssTokenType.IDENT,
            CssTokenType.COLON,
            CssTokenType.DIMENSION,
            CssTokenType.SEMICOLON,
            CssTokenType.RBRACE,
            CssTokenType.EOF,
        ]

    def test_hash(self):
        token = tokenize("#intro")[0]
        assert token.type is CssTokenType.HASH
        assert token.value == "intro"

    def test_dimension_units_and_numeric(self):
        token = tokenize("16.6ms")[0]
        assert token.type is CssTokenType.DIMENSION
        assert token.numeric == pytest.approx(16.6)
        assert token.unit == "ms"

    def test_number(self):
        token = tokenize("33.3")[0]
        assert token.type is CssTokenType.NUMBER
        assert token.numeric == pytest.approx(33.3)

    def test_percentage(self):
        token = tokenize("50%")[0]
        assert token.type is CssTokenType.PERCENTAGE
        assert token.numeric == 50

    def test_string(self):
        token = tokenize("'hello world'")[0]
        assert token.type is CssTokenType.STRING
        assert token.value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(CssSyntaxError):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("/* hi */ div /* there */")
        assert [t.type for t in tokens] == [CssTokenType.IDENT, CssTokenType.EOF]

    def test_unterminated_comment(self):
        with pytest.raises(CssSyntaxError):
            tokenize("/* never closed")

    def test_line_and_column_tracking(self):
        tokens = tokenize("div\n{ width: 1px }")
        brace = tokens[1]
        assert (brace.line, brace.column) == (2, 1)

    def test_stray_character(self):
        with pytest.raises(CssSyntaxError):
            tokenize("div @ {}")

    def test_whitespace_kept_when_requested(self):
        tokens = tokenize("a b", keep_whitespace=True)
        assert tokens[1].type is CssTokenType.WHITESPACE


class TestSelectors:
    def test_type_selector(self):
        doc = Document()
        div = doc.create_element("div")
        assert parse_selector("div").matches(div)
        assert not parse_selector("span").matches(div)

    def test_compound_selector(self):
        doc = Document()
        element = doc.create_element("div", element_id="intro", classes={"a", "b"})
        assert parse_selector("div#intro.a.b").matches(element)
        assert not parse_selector("div#intro.c").matches(element)

    def test_universal(self):
        doc = Document()
        assert parse_selector("*").matches(doc.create_element("p"))

    def test_qos_pseudo_class_detection(self):
        selector = parse_selector("div#intro:QoS")
        assert selector.has_qos
        assert not parse_selector("div#intro").has_qos

    def test_qos_case_insensitive(self):
        assert parse_selector("div:qos").has_qos
        assert parse_selector("div:QOS").has_qos

    def test_descendant_combinator(self):
        doc = Document()
        outer = doc.create_element("div", classes={"nav"})
        mid = doc.create_element("ul", parent=outer)
        leaf = doc.create_element("li", parent=mid)
        assert parse_selector(".nav li").matches(leaf)
        assert not parse_selector(".other li").matches(leaf)

    def test_child_combinator(self):
        doc = Document()
        outer = doc.create_element("div", classes={"nav"})
        mid = doc.create_element("ul", parent=outer)
        leaf = doc.create_element("li", parent=mid)
        assert parse_selector("ul > li").matches(leaf)
        assert not parse_selector(".nav > li").matches(leaf)

    def test_specificity(self):
        assert parse_selector("div").specificity() == (0, 0, 1)
        assert parse_selector("#a").specificity() == (1, 0, 0)
        assert parse_selector("div.x:QoS").specificity() == (0, 2, 1)
        assert parse_selector("div#a .b span").specificity() == (1, 1, 2)

    def test_malformed_selectors(self):
        for bad in ("", "> div", "div >", "..a", "div:"):
            with pytest.raises((SelectorError, CssSyntaxError)):
                parse_selector(bad)

    def test_roundtrip_str(self):
        selector = parse_selector("div#intro.fancy:QoS")
        assert parse_selector(str(selector)).specificity() == selector.specificity()


class TestParser:
    def test_simple_rule(self):
        sheet = parse_stylesheet("h1 { font-weight: bold }")
        assert len(sheet) == 1
        rule = sheet.rules[0]
        assert str(rule.selectors[0]) == "h1"
        assert rule.declaration("font-weight").value == "bold"

    def test_multiple_rules_and_selectors(self):
        sheet = parse_stylesheet("a, b { x: 1 } c { y: 2; z: 3 }")
        assert len(sheet) == 2
        assert len(sheet.rules[0].selectors) == 2
        assert len(sheet.rules[1].declarations) == 2

    def test_greenweb_rule_from_paper_fig4(self):
        css = """
        div#ex:QoS {
            ontouchstart-qos: continuous;
        }
        """
        sheet = parse_stylesheet(css)
        assert sheet.rules[0].is_greenweb
        assert sheet.greenweb_rules() == [sheet.rules[0]]
        declaration = sheet.rules[0].declaration("ontouchstart-qos")
        assert declaration.value == "continuous"

    def test_greenweb_rule_with_targets_fig5(self):
        css = "div#box:QoS { ontouchmove-qos: continuous, 20, 100; }"
        sheet = parse_stylesheet(css)
        declaration = sheet.rules[0].declaration("ontouchmove-qos")
        numbers = [t.numeric for t in declaration.tokens if t.type is CssTokenType.NUMBER]
        assert numbers == [20, 100]

    def test_last_declaration_wins_within_block(self):
        sheet = parse_stylesheet("a { x: 1; x: 2 }")
        assert sheet.rules[0].declaration("x").value == "2"

    def test_missing_brace_raises(self):
        with pytest.raises(CssSyntaxError):
            parse_stylesheet("div { width: 1px")

    def test_missing_value_raises(self):
        with pytest.raises(CssSyntaxError):
            parse_stylesheet("div { width: ; }")

    def test_missing_colon_raises(self):
        with pytest.raises(CssSyntaxError):
            parse_stylesheet("div { width 1px; }")

    def test_empty_sheet(self):
        assert len(parse_stylesheet("   /* nothing */  ")) == 0


class TestCascade:
    def test_specificity_beats_order(self):
        doc = Document()
        element = doc.create_element("div", element_id="x")
        sheet = parse_stylesheet("#x { color: red } div { color: blue }")
        assert sheet.resolve(element, "color").value == "red"

    def test_order_breaks_ties(self):
        doc = Document()
        element = doc.create_element("div")
        sheet = parse_stylesheet("div { color: red } div { color: blue }")
        assert sheet.resolve(element, "color").value == "blue"

    def test_inline_style_wins(self):
        doc = Document()
        element = doc.create_element("div", element_id="x")
        element.style["color"] = "green"
        sheet = parse_stylesheet("#x { color: red }")
        assert sheet.resolve(element, "color").value == "green"

    def test_no_match_returns_none(self):
        doc = Document()
        element = doc.create_element("p")
        sheet = parse_stylesheet("div { color: red }")
        assert sheet.resolve(element, "color") is None


class TestTransitions:
    def test_parse_simple_transition(self):
        specs = parse_transition_value(value_tokens("width 2s"))
        assert len(specs) == 1
        assert specs[0].property == "width"
        assert specs[0].duration_ms == 2000

    def test_parse_ms_and_delay(self):
        specs = parse_transition_value(value_tokens("opacity 300ms 100ms"))
        assert specs[0].duration_ms == 300
        assert specs[0].delay_ms == 100

    def test_parse_list(self):
        specs = parse_transition_value(value_tokens("width 2s, opacity 1s"))
        assert [s.property for s in specs] == ["width", "opacity"]

    def test_timing_function_ignored(self):
        specs = parse_transition_value(value_tokens("width 2s ease-in"))
        assert specs[0].duration_ms == 2000

    def test_transition_for_resolves_cascade(self):
        doc = Document()
        element = doc.create_element("div", element_id="ex")
        sheet = parse_stylesheet("div#ex { transition: width 2s; }")
        spec = transition_for(sheet, element, "width")
        assert spec is not None and spec.duration_ms == 2000
        assert transition_for(sheet, element, "color") is None

    def test_transition_all(self):
        doc = Document()
        element = doc.create_element("div", element_id="ex")
        sheet = parse_stylesheet("div#ex { transition: all 500ms; }")
        assert transition_for(sheet, element, "anything").duration_ms == 500

    def test_animation_parse(self):
        specs = parse_animation_value(value_tokens("slidein 3s 2"))
        assert specs[0].name == "slidein"
        assert specs[0].duration_ms == 3000
        assert specs[0].iterations == 2
        assert specs[0].total_ms == 6000

    def test_animation_infinite(self):
        specs = parse_animation_value(value_tokens("spin 1s infinite"))
        assert specs[0].iterations == float("inf")

    def test_animation_for(self):
        doc = Document()
        element = doc.create_element("div", classes={"spinner"})
        sheet = parse_stylesheet(".spinner { animation: spin 2s; }")
        assert animation_for(sheet, element).name == "spin"

    def test_transition_missing_duration_raises(self):
        with pytest.raises(CssSyntaxError):
            parse_transition_value(value_tokens("width"))


@given(
    tag=st.sampled_from(["div", "span", "p", "ul"]),
    element_id=st.text(alphabet="abcxyz", min_size=1, max_size=6),
    classes=st.sets(st.sampled_from(["a", "b", "nav", "item"]), max_size=3),
)
def test_property_generated_compound_selectors_match_their_element(tag, element_id, classes):
    doc = Document()
    element = doc.create_element(tag, element_id=element_id, classes=classes)
    selector = tag + f"#{element_id}" + "".join(f".{c}" for c in sorted(classes))
    assert parse_selector(selector).matches(element)
    assert parse_selector(selector + ":QoS").matches(element)


class TestComputedStyle:
    def test_cascade_merge(self):
        doc = Document()
        element = doc.create_element("div", element_id="x", classes={"card"})
        sheet = parse_stylesheet(
            "div { color: blue; margin: 4px } "
            ".card { color: green } "
            "#x { padding: 2px }"
        )
        style = sheet.computed_style(element)
        assert style == {"color": "green", "margin": "4px", "padding": "2px"}

    def test_inline_overrides(self):
        doc = Document()
        element = doc.create_element("div")
        element.style["color"] = "red"
        sheet = parse_stylesheet("div { color: blue }")
        assert sheet.computed_style(element)["color"] == "red"

    def test_unmatched_element_gets_inline_only(self):
        doc = Document()
        element = doc.create_element("p")
        element.style["width"] = "1px"
        sheet = parse_stylesheet("div { color: blue }")
        assert sheet.computed_style(element) == {"width": "1px"}

    def test_agrees_with_resolve(self):
        doc = Document()
        element = doc.create_element("div", classes={"a", "b"})
        sheet = parse_stylesheet(
            ".a { x: 1; y: 1 } .b { x: 2 } div.a.b { z: 3 }"
        )
        computed = sheet.computed_style(element)
        for prop in ("x", "y", "z"):
            assert computed[prop] == sheet.resolve(element, prop).value
