"""Unit tests for GreenWebRuntime internals: governing-spec selection,
boost clamping, frameless detection, idle grace, EWMA math, headroom,
and the decision trace."""

import pytest

from repro.browser import Browser, Page
from repro.browser.messages import InputMsg
from repro.core import AnnotationRegistry, GreenWebRuntime, UsageScenario
from repro.core.perf_model import PerfModelCoefficients
from repro.core.qos import QoSSpec, ResponseExpectation
from repro.core.runtime import _KeyState, _Phase
from repro.hardware import CpuConfig, odroid_xu_e
from repro.web import Callback, parse_html
from repro.web.events import EventType

I = UsageScenario.IMPERCEPTIBLE


def make_runtime(css="", **kwargs):
    platform = odroid_xu_e()
    registry = (
        AnnotationRegistry.from_stylesheet(
            __import__("repro.web.css.parser", fromlist=["parse_stylesheet"]).parse_stylesheet(css)
        )
        if css
        else AnnotationRegistry()
    )
    return GreenWebRuntime(platform, registry, I, **kwargs), platform


class TestGoverningSpec:
    def test_tightest_target_wins(self):
        runtime, _ = make_runtime()
        tight = QoSSpec.continuous()            # 16.6 ms
        loose = QoSSpec.single(ResponseExpectation.LONG)  # 1000 ms
        runtime.input_specs[1] = (loose, "k-loose")
        runtime.input_specs[2] = (tight, "k-tight")
        msgs = [InputMsg(1, 0, EventType.CLICK), InputMsg(2, 0, EventType.TOUCHMOVE)]
        spec, key = runtime._governing_spec(msgs)
        assert key == "k-tight"

    def test_unknown_uids_skipped(self):
        runtime, _ = make_runtime()
        runtime.input_specs[5] = (QoSSpec.single(), "k")
        msgs = [InputMsg(9, 0, EventType.CLICK), InputMsg(5, 0, EventType.CLICK)]
        spec, key = runtime._governing_spec(msgs)
        assert key == "k"

    def test_all_unknown_returns_none(self):
        runtime, _ = make_runtime()
        assert runtime._governing_spec([InputMsg(9, 0, EventType.CLICK)]) is None


class TestBoostClamping:
    def fitted_state(self, runtime):
        state = _KeyState()
        big = PerfModelCoefficients(2_000.0, 8_000_000.0)
        state.models.set("big", big)
        state.models.set("little", big.scaled_cycles(2.0))
        state.phase = _Phase.STABLE
        return state

    def test_boost_clamps_at_top(self):
        runtime, _ = make_runtime()
        top = runtime._configs[-1]
        assert runtime._apply_boost(top, boost=5) == top

    def test_boost_clamps_at_bottom(self):
        runtime, _ = make_runtime()
        bottom = runtime._configs[0]
        assert runtime._apply_boost(bottom, boost=-5) == bottom

    def test_positive_boost_steps_up(self):
        runtime, _ = make_runtime()
        base = CpuConfig("little", 600)
        boosted = runtime._apply_boost(base, boost=1)
        assert boosted == CpuConfig("big", 800)  # cluster edge crossing

    def test_feedback_violation_bumps_boost(self):
        runtime, _ = make_runtime()
        state = self.fitted_state(runtime)
        state.last_requested = (CpuConfig("big", 800), 10_000.0)
        runtime._feedback(state, observed_us=25_000.0, target_us=16_600.0)
        assert state.boost == 1

    def test_overprediction_needs_two_in_a_row(self):
        runtime, _ = make_runtime()
        state = self.fitted_state(runtime)
        state.last_requested = (CpuConfig("big", 800), 10_000.0)
        runtime._feedback(state, observed_us=1_000.0, target_us=16_600.0)
        assert state.boost == 0  # debounced
        state.last_requested = (CpuConfig("big", 800), 10_000.0)
        runtime._feedback(state, observed_us=1_000.0, target_us=16_600.0)
        assert state.boost == -1

    def test_accurate_prediction_resets_streaks(self):
        runtime, _ = make_runtime()
        state = self.fitted_state(runtime)
        state.last_requested = (CpuConfig("big", 800), 10_000.0)
        runtime._feedback(state, observed_us=1_000.0, target_us=16_600.0)
        state.last_requested = (CpuConfig("big", 800), 10_000.0)
        runtime._feedback(state, observed_us=10_100.0, target_us=16_600.0)
        assert state.overpredict_streak == 0
        assert state.consecutive_mispredictions == 0

    def test_recalibration_after_threshold(self):
        runtime, _ = make_runtime(recalibration_threshold=2, ewma_model_update=False)
        state = self.fitted_state(runtime)
        for _ in range(3):
            state.last_requested = (CpuConfig("big", 800), 10_000.0)
            runtime._feedback(state, observed_us=16_000.0, target_us=100_000.0)
        assert state.phase is _Phase.PROFILE_MAX
        assert state.recalibrations == 1
        assert state.boost == 0


class TestEwmaUpdate:
    def test_blend_moves_toward_observation(self):
        runtime, _ = make_runtime(ewma_alpha=0.5)
        state = _KeyState()
        state.models.set("big", PerfModelCoefficients(1_000.0, 8_000_000.0))
        state.models.set("little", PerfModelCoefficients(1_000.0, 16_000_000.0))
        # Observed at big@800: latency 21ms -> residual 20ms -> 16M cycles.
        runtime._ewma_update(state, CpuConfig("big", 800), observed_us=21_000.0)
        updated = state.models.get("big").n_cycles
        assert updated == pytest.approx(0.5 * 8_000_000 + 0.5 * 16_000_000)
        # Little model re-derived via the IPC factor (2x at ipc 0.5).
        assert state.models.get("little").n_cycles == pytest.approx(2 * updated)

    def test_observation_below_t_independent_ignored(self):
        runtime, _ = make_runtime()
        state = _KeyState()
        state.models.set("big", PerfModelCoefficients(5_000.0, 8_000_000.0))
        runtime._ewma_update(state, CpuConfig("big", 800), observed_us=3_000.0)
        assert state.models.get("big").n_cycles == 8_000_000.0


class TestFramelessDetection:
    def test_direct_detection_path(self):
        runtime, platform = make_runtime(
            css="#x:QoS { ontouchstart-qos: single, short; }"
        )
        from repro.browser.frame_tracker import InputRecord

        for uid in (1, 2):
            msg = InputMsg(uid, 0, EventType.TOUCHSTART, target_key="#x")
            runtime.input_specs[uid] = (QoSSpec.single(), "#x@touchstart")
            runtime._key_state("#x@touchstart")
            record = InputRecord(msg=msg)  # zero frames
            runtime.on_input_complete(record)
        assert runtime._key_state("#x@touchstart").frameless

    def test_frame_resets_counter(self):
        runtime, _ = make_runtime()
        from repro.browser.frame_tracker import InputRecord

        key = "#x@click"
        runtime._key_state(key)
        msg1 = InputMsg(1, 0, EventType.CLICK)
        runtime.input_specs[1] = (QoSSpec.single(), key)
        runtime.on_input_complete(InputRecord(msg=msg1))
        msg2 = InputMsg(2, 0, EventType.CLICK)
        runtime.input_specs[2] = (QoSSpec.single(), key)
        runtime.on_input_complete(InputRecord(msg=msg2, frame_latencies_us=[5_000]))
        assert not runtime._key_state(key).frameless
        assert runtime._key_state(key).frameless_inputs == 0


class TestDecisionTrace:
    def test_predict_and_observe_records_emitted(self):
        markup = "<style>#b:QoS { onclick-qos: single, short; }</style><div id='b'></div>"
        platform = odroid_xu_e()
        document, sheet = parse_html(markup)
        page = Page(name="t", document=document, stylesheet=sheet)
        runtime = GreenWebRuntime(
            platform, AnnotationRegistry.from_stylesheet(sheet), I
        )
        browser = Browser(platform, page, policy=runtime)
        b = document.get_element_by_id("b")
        b.add_event_listener("click", Callback(lambda ctx: (ctx.do_work(500_000), ctx.mark_dirty(0.5)) and None))
        for _ in range(3):
            browser.dispatch_event("click", b)
            browser.run_until_quiescent()
        observes = platform.trace.filter(category="greenweb", name="observe")
        predicts = platform.trace.filter(category="greenweb", name="predict")
        assert len(observes) == 3
        assert len(predicts) >= 1  # third event is post-profiling
        assert predicts[0]["target_ms"] == 100
        assert "big@" in predicts[0]["config"] or "little@" in predicts[0]["config"]

    def test_headroom_scales_prediction_target(self):
        """With TI=100 ms and a 30M-cycle model, little@600 (eff 300 MHz,
        100 ms) meets the raw target but not the halved one, so 0.5
        headroom must pick a faster configuration."""

        def choose(headroom):
            runtime, _ = make_runtime(target_headroom=headroom)
            state = runtime._key_state("k")
            big = PerfModelCoefficients(0.0, 30_000_000.0)
            state.models.set("big", big)
            state.models.set("little", big.scaled_cycles(2.0))
            state.phase = _Phase.STABLE
            return runtime._config_for("k", QoSSpec.single())

        relaxed = choose(1.0)
        tight = choose(0.5)
        assert relaxed.cluster == "little"
        assert tight.cluster == "big"


class TestFourRunProfiling:
    def test_little_model_fitted_independently(self):
        from repro.evaluation.runner import run_workload

        result = run_workload(
            "craigslist", "greenweb", I, "micro",
            runtime_kwargs={"profile_both_clusters": True},
        )
        # 4 phases x 3 frames (continuous key) = 12 profiling frames
        # for the scroll key, plus the touchstart key's bookkeeping.
        assert result.runtime_stats["profiling_frames"] >= 12
        assert result.frames > 50

    def test_phase_progression(self):
        runtime, platform = make_runtime(profile_both_clusters=True)
        state = runtime._key_state("k")
        spec = QoSSpec.single()
        # Phase 1: big fmax profiling config.
        assert runtime._config_for("k", spec) == CpuConfig("big", 1800)
        # After the big fit, 4-run mode continues on the little cluster.
        state.profile_sample = (1800, 10_000.0)
        state.phase = _Phase.PROFILE_MIN
        runtime._finish_big_profiling(state, 20_000.0)
        assert state.phase is _Phase.PROFILE_LITTLE_MAX
        assert runtime._config_for("k", spec) == CpuConfig("little", 600)
        # Finish the little fit: stable with both models present.
        state.profile_sample = (600, 40_000.0)
        state.phase = _Phase.PROFILE_LITTLE_MIN
        runtime._finish_little_profiling(state, 70_000.0)
        assert state.phase is _Phase.STABLE
        assert state.models.has("big") and state.models.has("little")

    def test_two_run_mode_default(self):
        runtime, _ = make_runtime()
        assert runtime.profile_both_clusters is False


class TestSurgeAwarePrediction:
    def test_validation(self):
        from repro.errors import RuntimeModelError

        with pytest.raises(RuntimeModelError):
            make_runtime(surge_percentile=0.3)
        with pytest.raises(RuntimeModelError):
            make_runtime(surge_window=1)

    def test_percentile_floor_applied(self):
        runtime, _ = make_runtime(surge_aware=True, ewma_alpha=0.1)
        state = runtime._key_state("k")
        state.models.set("big", PerfModelCoefficients(0.0, 1_000_000.0))
        state.models.set("little", PerfModelCoefficients(0.0, 2_000_000.0))
        # Nine light frames and one surge at big@1000.
        for observed_ms in [2.0] * 9 + [10.0]:
            runtime._ewma_update(state, CpuConfig("big", 1000), observed_ms * 1000)
        # The model must remember the surge (p90 of recent history),
        # not average it away: 10 ms at 1000 MHz = 10M cycles.
        assert state.models.get("big").n_cycles >= 9_000_000

    def test_mean_mode_forgets_surges(self):
        runtime, _ = make_runtime(surge_aware=False, ewma_alpha=0.1)
        state = runtime._key_state("k")
        state.models.set("big", PerfModelCoefficients(0.0, 1_000_000.0))
        state.models.set("little", PerfModelCoefficients(0.0, 2_000_000.0))
        for observed_ms in [10.0] + [2.0] * 9:
            runtime._ewma_update(state, CpuConfig("big", 1000), observed_ms * 1000)
        assert state.models.get("big").n_cycles < 5_000_000
