"""Tests for OPP tables and the paper's frequency ranges."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FrequencyError
from repro.hardware import OperatingPoint, OppTable, cortex_a15_opps, cortex_a7_opps


class TestOperatingPoint:
    def test_ordering_by_frequency(self):
        slow = OperatingPoint(800, 1.0)
        fast = OperatingPoint(1800, 0.9)
        assert slow < fast

    def test_rejects_nonpositive(self):
        with pytest.raises(FrequencyError):
            OperatingPoint(0, 1.0)
        with pytest.raises(FrequencyError):
            OperatingPoint(100, -0.1)

    def test_str(self):
        assert str(OperatingPoint(800, 0.9)) == "800MHz@0.900V"


class TestOppTable:
    def make(self):
        return OppTable(
            [OperatingPoint(400, 0.9), OperatingPoint(200, 0.8), OperatingPoint(600, 1.0)]
        )

    def test_sorted_on_construction(self):
        assert self.make().frequencies == (200, 400, 600)

    def test_empty_rejected(self):
        with pytest.raises(FrequencyError):
            OppTable([])

    def test_duplicates_rejected(self):
        with pytest.raises(FrequencyError):
            OppTable([OperatingPoint(200, 0.8), OperatingPoint(200, 0.9)])

    def test_min_max(self):
        table = self.make()
        assert table.min.freq_mhz == 200
        assert table.max.freq_mhz == 600

    def test_exact_lookup(self):
        assert self.make().at(400).voltage_v == 0.9

    def test_missing_lookup_raises(self):
        with pytest.raises(FrequencyError):
            self.make().at(500)

    def test_contains(self):
        table = self.make()
        assert 400 in table
        assert 500 not in table

    def test_at_least(self):
        table = self.make()
        assert table.at_least(300).freq_mhz == 400
        assert table.at_least(400).freq_mhz == 400
        with pytest.raises(FrequencyError):
            table.at_least(601)

    def test_at_most(self):
        table = self.make()
        assert table.at_most(500).freq_mhz == 400
        with pytest.raises(FrequencyError):
            table.at_most(100)

    def test_step_up_down_and_clamping(self):
        table = self.make()
        assert table.step_up(200).freq_mhz == 400
        assert table.step_up(600).freq_mhz == 600
        assert table.step_down(400).freq_mhz == 200
        assert table.step_down(200).freq_mhz == 200


class TestPaperTables:
    """The paper's Sec. 7.1 hardware description."""

    def test_a15_range_and_granularity(self):
        table = cortex_a15_opps()
        assert table.min.freq_mhz == 800
        assert table.max.freq_mhz == 1800
        steps = {b - a for a, b in zip(table.frequencies, table.frequencies[1:])}
        assert steps == {100}
        assert len(table) == 11

    def test_a7_range_and_granularity(self):
        table = cortex_a7_opps()
        assert table.min.freq_mhz == 350
        assert table.max.freq_mhz == 600
        steps = {b - a for a, b in zip(table.frequencies, table.frequencies[1:])}
        assert steps == {50}
        assert len(table) == 6

    def test_voltage_monotonic_in_frequency(self):
        for table in (cortex_a15_opps(), cortex_a7_opps()):
            voltages = [p.voltage_v for p in table]
            assert voltages == sorted(voltages)

    @given(st.sampled_from(list(range(800, 1801, 100))))
    def test_property_every_a15_step_is_an_opp(self, freq):
        assert freq in cortex_a15_opps()
