"""Tests for the HTML parser, events module, and the script model."""

import pytest

from repro.errors import BrowserError, DomError
from repro.web import (
    Callback,
    Document,
    EventType,
    InteractionKind,
    MOBILE_EVENT_TYPES,
    ScriptContext,
    parse_html,
)
from repro.web.events import (
    DESKTOP_EVENT_TYPES,
    Event,
    INTERACTION_EVENTS,
    coerce_event_type,
    dispatch_order,
)


class TestHtmlParser:
    def test_basic_structure(self):
        doc, _ = parse_html("<div id='main'><span class='x y'></span></div>")
        main = doc.get_element_by_id("main")
        assert main is not None
        assert main.children[0].classes == {"x", "y"}

    def test_style_block_collected(self):
        doc, sheet = parse_html(
            "<style>div#a { transition: width 2s; }</style><div id='a'></div>"
        )
        assert len(sheet) == 1
        assert doc.get_element_by_id("a") is not None

    def test_void_and_self_closing_tags(self):
        doc, _ = parse_html("<div><img src='x'><br/><p id='after'></p></div>")
        assert doc.get_element_by_id("after").parent.tag == "div"

    def test_inline_style_attribute(self):
        doc, _ = parse_html("<div id='a' style='width: 100px; color: red'></div>")
        element = doc.get_element_by_id("a")
        assert element.style == {"width": "100px", "color": "red"}

    def test_mismatched_end_tags_tolerated(self):
        doc, _ = parse_html("<div><span></div>")
        assert doc.root.children[0].tag == "div"

    def test_html_tag_merged_into_root(self):
        doc, _ = parse_html("<html class='page'><body><div id='x'></div></body></html>")
        assert "page" in doc.root.classes
        assert doc.get_element_by_id("x") is not None

    def test_paper_fig4_markup(self):
        markup = """
        <style>
          #ex { width: 100px; transition: width 2s; }
          div#ex:QoS { ontouchstart-qos: continuous; }
        </style>
        <div id="ex"></div>
        """
        doc, sheet = parse_html(markup)
        assert len(sheet.greenweb_rules()) == 1
        assert doc.get_element_by_id("ex") is not None


class TestEvents:
    def test_mobile_event_set_matches_paper(self):
        names = {e.value for e in MOBILE_EVENT_TYPES}
        assert {"click", "scroll", "touchstart", "touchend", "touchmove", "load"} == names

    def test_desktop_events_excluded(self):
        assert "drag" in DESKTOP_EVENT_TYPES
        assert not any(e.value in DESKTOP_EVENT_TYPES for e in MOBILE_EVENT_TYPES)

    def test_coerce(self):
        assert coerce_event_type("click") is EventType.CLICK
        assert coerce_event_type(EventType.SCROLL) is EventType.SCROLL
        with pytest.raises(DomError):
            coerce_event_type("mouseover")

    def test_ltm_interaction_events(self):
        assert INTERACTION_EVENTS[InteractionKind.LOADING] == (EventType.LOAD,)
        assert EventType.CLICK in INTERACTION_EVENTS[InteractionKind.TAPPING]
        assert EventType.TOUCHMOVE in INTERACTION_EVENTS[InteractionKind.MOVING]

    def test_propagation_path(self):
        doc = Document()
        outer = doc.create_element("div")
        inner = doc.create_element("button", parent=outer)
        event = Event(EventType.CLICK, inner)
        assert [e.tag for e in event.propagation_path] == ["button", "div", "html"]

    def test_dispatch_order_bubbles(self):
        doc = Document()
        outer = doc.create_element("div")
        inner = doc.create_element("button", parent=outer)
        inner_cb = Callback(lambda ctx: None, "inner")
        outer_cb = Callback(lambda ctx: None, "outer")
        outer.add_event_listener("click", outer_cb)
        inner.add_event_listener("click", inner_cb)
        pairs = dispatch_order(Event(EventType.CLICK, inner))
        assert [cb.name for _, cb in pairs] == ["inner", "outer"]


class TestScriptModel:
    def make_ctx(self):
        return ScriptContext(Document())

    def test_do_work_accumulates(self):
        ctx = self.make_ctx()
        ctx.do_work(1000)
        ctx.do_work(500, fixed_us=10)
        assert ctx.effects.work.cycles == 1500
        assert ctx.effects.work.fixed_us == 10

    def test_negative_work_rejected(self):
        with pytest.raises(BrowserError):
            self.make_ctx().do_work(-1)

    def test_style_write_marks_needs_frame(self):
        ctx = self.make_ctx()
        element = ctx.document.create_element("div")
        assert not ctx.effects.needs_frame
        ctx.set_style(element, "WIDTH", "500px", complexity=2.0)
        assert ctx.effects.needs_frame
        assert ctx.effects.style_writes[0].property == "width"
        assert ctx.effects.frame_complexity == 2.0

    def test_mark_dirty_complexity_takes_max(self):
        ctx = self.make_ctx()
        ctx.mark_dirty(1.0)
        ctx.mark_dirty(3.0)
        ctx.mark_dirty(2.0)
        assert ctx.effects.frame_complexity == 3.0

    def test_raf_detection(self):
        ctx = self.make_ctx()
        assert not ctx.effects.uses_raf
        ctx.request_animation_frame(lambda c: None)
        assert ctx.effects.uses_raf

    def test_animate_detection(self):
        ctx = self.make_ctx()
        element = ctx.document.create_element("div")
        ctx.animate(element, "left", duration_ms=400)
        assert ctx.effects.uses_animate
        assert ctx.effects.animate_calls[0].duration_ms == 400

    def test_animate_rejects_nonpositive_duration(self):
        ctx = self.make_ctx()
        with pytest.raises(BrowserError):
            ctx.animate(ctx.document.create_element("div"), "x", 0)

    def test_timeout(self):
        ctx = self.make_ctx()
        ctx.set_timeout(lambda c: None, 250)
        assert ctx.effects.timeouts[0].delay_ms == 250
        with pytest.raises(BrowserError):
            ctx.set_timeout(lambda c: None, -1)

    def test_callback_invoke_returns_effects(self):
        def body(ctx):
            ctx.do_work(42)

        effects = Callback(body).invoke(self.make_ctx())
        assert effects.work.cycles == 42

    def test_callback_wrap(self):
        cb = Callback(lambda ctx: None, "x")
        assert Callback.wrap(cb) is cb
        assert Callback.wrap(lambda ctx: None).name == "<lambda>"

    def test_state_is_shared_reference(self):
        state = {"count": 0}
        ctx = ScriptContext(Document(), state=state)
        ctx.state["count"] += 1
        assert state["count"] == 1


class TestCapturePhase:
    def fixture(self):
        doc = Document()
        outer = doc.create_element("div")
        inner = doc.create_element("button", parent=outer)
        return doc, outer, inner

    def test_capture_runs_before_bubble(self):
        doc, outer, inner = self.fixture()
        order = []
        outer.add_event_listener("click", Callback(lambda c: order.append("outer-cap"), "oc"),
                                 capture=True)
        inner.add_event_listener("click", Callback(lambda c: order.append("inner"), "i"))
        outer.add_event_listener("click", Callback(lambda c: order.append("outer-bub"), "ob"))
        pairs = dispatch_order(Event(EventType.CLICK, inner))
        names = [cb.name for _e, cb in pairs]
        assert names == ["oc", "i", "ob"]

    def test_capture_order_is_root_first(self):
        doc, outer, inner = self.fixture()
        order = []
        doc.root.add_event_listener("click", Callback(lambda c: None, "root-cap"),
                                    capture=True)
        outer.add_event_listener("click", Callback(lambda c: None, "outer-cap"),
                                 capture=True)
        pairs = dispatch_order(Event(EventType.CLICK, inner))
        names = [cb.name for _e, cb in pairs]
        assert names == ["root-cap", "outer-cap"]

    def test_target_capture_listener_runs_before_target_bubble(self):
        doc, _outer, inner = self.fixture()
        inner.add_event_listener("click", Callback(lambda c: None, "t-bub"))
        inner.add_event_listener("click", Callback(lambda c: None, "t-cap"), capture=True)
        pairs = dispatch_order(Event(EventType.CLICK, inner))
        names = [cb.name for _e, cb in pairs]
        assert names == ["t-cap", "t-bub"]

    def test_remove_capture_listener(self):
        from repro.errors import DomError

        doc, outer, _inner = self.fixture()
        cb = Callback(lambda c: None)
        outer.add_event_listener("click", cb, capture=True)
        outer.remove_event_listener("click", cb, capture=True)
        assert outer.listeners("click", capture=True) == []
        with pytest.raises(DomError):
            outer.remove_event_listener("click", cb, capture=True)

    def test_capture_listener_counts_for_listened_types(self):
        doc, outer, _inner = self.fixture()
        outer.add_event_listener("scroll", Callback(lambda c: None), capture=True)
        assert "scroll" in outer.listened_event_types

    def test_stop_propagation_in_capture_blocks_target(self):
        from repro.browser import Browser, Page
        from repro.hardware import odroid_xu_e

        doc, outer, inner = self.fixture()
        page = Page(name="cap", document=doc)
        platform = odroid_xu_e()
        browser = Browser(platform, page)
        hits = []

        def capture_block(ctx):
            hits.append("capture")
            ctx.stop_propagation()

        outer.add_event_listener("click", Callback(capture_block, "cap"), capture=True)
        inner.add_event_listener("click", Callback(lambda ctx: hits.append("target"), "t"))
        browser.dispatch_event("click", inner)
        browser.run_for(100_000)
        assert hits == ["capture"]
