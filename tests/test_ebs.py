"""Tests for the EBS (event-based scheduling) baseline (Sec. 9)."""

import pytest

from repro.browser import Browser, Page
from repro.core.ebs import EbsGovernor
from repro.core.qos import UsageScenario
from repro.errors import RuntimeModelError
from repro.evaluation.runner import run_workload
from repro.hardware import odroid_xu_e
from repro.web import Callback, parse_html

I = UsageScenario.IMPERCEPTIBLE


def build(markup="<div id='btn'></div>", **kwargs):
    platform = odroid_xu_e()
    document, sheet = parse_html(markup)
    page = Page(name="ebs-test", document=document, stylesheet=sheet)
    governor = EbsGovernor(platform, **kwargs)
    browser = Browser(platform, page, policy=governor)
    return browser, platform, governor


class TestConstruction:
    def test_validation(self):
        platform = odroid_xu_e()
        with pytest.raises(RuntimeModelError):
            EbsGovernor(platform, tolerance_factor=0.5)
        with pytest.raises(RuntimeModelError):
            EbsGovernor(platform, latency_ewma_alpha=0)

    def test_starts_idle(self):
        browser, platform, governor = build()
        platform.run_for(1_000)
        assert platform.config == governor.idle_config


class TestBehaviour:
    def tap(self, cycles=50_000_000):
        def body(ctx):
            ctx.do_work(cycles)
            ctx.mark_dirty(0.5)

        return Callback(body, "tap")

    def test_profiles_then_schedules(self):
        browser, platform, governor = build()
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", self.tap())
        for _ in range(4):
            browser.dispatch_event("click", btn)
            browser.run_until_quiescent()
            platform.run_for(200_000)
        state = next(iter(governor._keys.values()))
        assert state.phase == "stable"
        assert state.observed_latency_us is not None
        assert governor.decisions >= 4

    def test_latency_drift_the_papers_critique(self):
        """Running slower inflates the next measurement: the observed
        latency after several EBS-scheduled events exceeds the latency
        the same events had at peak performance."""
        browser, platform, governor = build()
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", self.tap())
        records = []
        for _ in range(8):
            msg = browser.dispatch_event("click", btn)
            browser.run_until_quiescent()
            platform.run_for(200_000)
            records.append(browser.tracker.record(msg.uid))
        first = records[0].first_frame_latency_us  # measured at peak (profiling)
        last = records[-1].first_frame_latency_us
        assert last > first  # QoS drifted downward, unnoticed by EBS

    def test_conserves_when_idle(self):
        browser, platform, governor = build()
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", self.tap(cycles=500_000))
        browser.dispatch_event("click", btn)
        browser.run_until_quiescent()
        platform.run_for(100_000)
        assert platform.config == governor.idle_config


class TestVsGreenWeb:
    def test_ebs_violates_where_greenweb_does_not(self):
        """Cnet's menu animation: EBS has no idea 16.6 ms matters."""
        ebs = run_workload("cnet", "ebs", I, "micro")
        green = run_workload("cnet", "greenweb", I, "micro")
        assert ebs.mean_violation_pct > green.mean_violation_pct + 5.0

    def test_ebs_wastes_energy_on_latency_tolerant_events(self):
        """LZMA-JS taps: users tolerate 1 s, but EBS only knows the
        measured latency (fast at peak) and keeps performance high."""
        ebs = run_workload("lzma_js", "ebs", I, "micro")
        green = run_workload("lzma_js", "greenweb", I, "micro")
        assert ebs.active_energy_j > green.active_energy_j
