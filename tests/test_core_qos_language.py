"""Tests for the QoS abstractions and the GreenWeb language extension."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AnnotationError, QosError
from repro.core import (
    CONTINUOUS_DEFAULT,
    SINGLE_LONG_DEFAULT,
    SINGLE_SHORT_DEFAULT,
    TABLE1_CATEGORIES,
    AnnotationRegistry,
    QoSSpec,
    QoSTarget,
    QoSType,
    ResponseExpectation,
    UsageScenario,
    extract_annotations,
)
from repro.core.language import (
    annotation_to_css,
    event_type_of_property,
    is_qos_property,
    parse_qos_declaration,
)
from repro.web import Document
from repro.web.css.parser import parse_stylesheet
from repro.web.events import EventType


class TestQoSTarget:
    def test_table1_defaults(self):
        assert CONTINUOUS_DEFAULT == QoSTarget(16.6, 33.3)
        assert SINGLE_SHORT_DEFAULT == QoSTarget(100, 300)
        assert SINGLE_LONG_DEFAULT == QoSTarget(1000, 10_000)

    def test_scenario_selection(self):
        assert CONTINUOUS_DEFAULT.for_scenario(UsageScenario.IMPERCEPTIBLE) == 16.6
        assert CONTINUOUS_DEFAULT.for_scenario(UsageScenario.USABLE) == 33.3

    def test_invalid_targets(self):
        with pytest.raises(QosError):
            QoSTarget(300, 100)  # TI > TU
        with pytest.raises(QosError):
            QoSTarget(0, 100)
        with pytest.raises(QosError):
            QoSTarget(10, -1)

    def test_table1_category_magnitudes_differ(self):
        """Sec. 3.3: the categories' magnitudes differ significantly
        (tens of ms vs hundreds of ms vs seconds)."""
        targets = [c.target.imperceptible_ms for c in TABLE1_CATEGORIES]
        assert targets == sorted(targets)
        for small, large in zip(targets, targets[1:]):
            assert large / small >= 5


class TestQoSSpec:
    def test_continuous_default(self):
        spec = QoSSpec.continuous()
        assert spec.qos_type is QoSType.CONTINUOUS
        assert spec.target == CONTINUOUS_DEFAULT

    def test_single_defaults_from_expectation(self):
        assert QoSSpec.single(ResponseExpectation.SHORT).target == SINGLE_SHORT_DEFAULT
        assert QoSSpec.single(ResponseExpectation.LONG).target == SINGLE_LONG_DEFAULT

    def test_continuous_rejects_expectation(self):
        with pytest.raises(QosError):
            QoSSpec(QoSType.CONTINUOUS, CONTINUOUS_DEFAULT, ResponseExpectation.SHORT)

    def test_target_ms(self):
        spec = QoSSpec.single(ResponseExpectation.LONG)
        assert spec.target_ms(UsageScenario.IMPERCEPTIBLE) == 1000
        assert spec.target_ms(UsageScenario.USABLE) == 10_000


class TestQosProperty:
    def test_is_qos_property(self):
        assert is_qos_property("onclick-qos")
        assert is_qos_property("ontouchmove-qos")
        assert not is_qos_property("onclick")
        assert not is_qos_property("transition")

    def test_event_mapping(self):
        assert event_type_of_property("onclick-qos") is EventType.CLICK
        assert event_type_of_property("ontouchstart-qos") is EventType.TOUCHSTART
        assert event_type_of_property("onload-qos") is EventType.LOAD

    def test_unknown_event_rejected(self):
        with pytest.raises(AnnotationError):
            event_type_of_property("onmouseover-qos")

    def test_non_qos_property_rejected(self):
        with pytest.raises(AnnotationError):
            event_type_of_property("width")


def declaration_of(css_value):
    sheet = parse_stylesheet(f"div:QoS {{ onclick-qos: {css_value}; }}")
    return sheet.rules[0].declarations[0]


class TestDeclarationParsing:
    """Table 2's three forms."""

    def test_continuous_bare(self):
        spec = parse_qos_declaration(declaration_of("continuous"))
        assert spec == QoSSpec.continuous()

    def test_continuous_with_targets(self):
        """The paper's Fig. 5: ontouchmove-qos: continuous, 20, 100."""
        spec = parse_qos_declaration(declaration_of("continuous, 20, 100"))
        assert spec.qos_type is QoSType.CONTINUOUS
        assert spec.target == QoSTarget(20, 100)

    def test_single_short(self):
        spec = parse_qos_declaration(declaration_of("single, short"))
        assert spec.target == SINGLE_SHORT_DEFAULT
        assert spec.expectation is ResponseExpectation.SHORT

    def test_single_long(self):
        spec = parse_qos_declaration(declaration_of("single, long"))
        assert spec.target == SINGLE_LONG_DEFAULT

    def test_single_explicit_targets(self):
        spec = parse_qos_declaration(declaration_of("single, 50, 200"))
        assert spec.qos_type is QoSType.SINGLE
        assert spec.target == QoSTarget(50, 200)
        assert spec.expectation is None

    def test_targets_with_units(self):
        spec = parse_qos_declaration(declaration_of("continuous, 20ms, 0.1s"))
        assert spec.target == QoSTarget(20, 100)

    def test_single_alone_rejected(self):
        with pytest.raises(AnnotationError):
            parse_qos_declaration(declaration_of("single"))

    def test_one_target_value_rejected(self):
        """Table 2: both values must appear or be omitted together."""
        with pytest.raises(AnnotationError):
            parse_qos_declaration(declaration_of("continuous, 20"))

    def test_three_target_values_rejected(self):
        with pytest.raises(AnnotationError):
            parse_qos_declaration(declaration_of("continuous, 20, 100, 200"))

    def test_unknown_type_rejected(self):
        with pytest.raises(AnnotationError):
            parse_qos_declaration(declaration_of("sometimes"))

    def test_inverted_targets_rejected(self):
        with pytest.raises(AnnotationError):
            parse_qos_declaration(declaration_of("continuous, 100, 20"))

    def test_single_bad_keyword_rejected(self):
        with pytest.raises(AnnotationError):
            parse_qos_declaration(declaration_of("single, medium"))

    @given(
        ti=st.floats(min_value=1, max_value=1000),
        ratio=st.floats(min_value=1, max_value=10),
    )
    def test_property_valid_pairs_always_parse(self, ti, ratio):
        ti_text = f"{ti:.3f}"
        tu_text = f"{max(ti * ratio, float(ti_text)):.3f}"
        spec = parse_qos_declaration(declaration_of(f"continuous, {ti_text}, {tu_text}"))
        assert spec.target.imperceptible_ms == pytest.approx(float(ti_text), rel=1e-9)
        assert spec.target.usable_ms == pytest.approx(float(tu_text), rel=1e-9)


class TestExtraction:
    def test_paper_fig4(self):
        sheet = parse_stylesheet("div#ex:QoS { ontouchstart-qos: continuous; }")
        annotations = extract_annotations(sheet)
        assert len(annotations) == 1
        assert annotations[0].event_type is EventType.TOUCHSTART
        assert annotations[0].spec == QoSSpec.continuous()

    def test_qos_declaration_without_qos_selector_rejected(self):
        sheet = parse_stylesheet("div#ex { ontouchstart-qos: continuous; }")
        with pytest.raises(AnnotationError):
            extract_annotations(sheet)

    def test_ordinary_rules_ignored(self):
        sheet = parse_stylesheet("div { width: 10px } p:QoS { onclick-qos: single, short }")
        assert len(extract_annotations(sheet)) == 1

    def test_multiple_declarations_per_rule(self):
        sheet = parse_stylesheet(
            "#x:QoS { onclick-qos: single, short; onscroll-qos: continuous; }"
        )
        events = {a.event_type for a in extract_annotations(sheet)}
        assert events == {EventType.CLICK, EventType.SCROLL}

    def test_roundtrip_to_css(self):
        sheet = parse_stylesheet("div#ex:QoS { ontouchmove-qos: continuous, 20, 100; }")
        annotation = extract_annotations(sheet)[0]
        text = annotation_to_css(annotation)
        reparsed = extract_annotations(parse_stylesheet(text))[0]
        assert reparsed.spec == annotation.spec
        assert reparsed.event_type is annotation.event_type


class TestRegistry:
    def make(self, css):
        return AnnotationRegistry.from_stylesheet(parse_stylesheet(css))

    def test_lookup_hit_and_miss(self):
        registry = self.make("div#ex:QoS { onclick-qos: single, short; }")
        doc = Document()
        ex = doc.create_element("div", element_id="ex")
        other = doc.create_element("div")
        assert registry.lookup(ex, "click") == QoSSpec.single()
        assert registry.lookup(other, "click") is None
        assert registry.lookup(ex, "scroll") is None

    def test_cascade_specificity(self):
        registry = self.make(
            "div:QoS { onclick-qos: single, long; }"
            "div#ex:QoS { onclick-qos: single, short; }"
        )
        doc = Document()
        ex = doc.create_element("div", element_id="ex")
        plain = doc.create_element("div")
        assert registry.lookup(ex, "click").target == SINGLE_SHORT_DEFAULT
        assert registry.lookup(plain, "click").target == SINGLE_LONG_DEFAULT

    def test_cascade_order_ties(self):
        registry = self.make(
            "div:QoS { onclick-qos: single, short; }"
            "div:QoS { onclick-qos: single, long; }"
        )
        doc = Document()
        element = doc.create_element("div")
        assert registry.lookup(element, "click").target == SINGLE_LONG_DEFAULT

    def test_add_invalidates_cache(self):
        registry = self.make("div:QoS { onclick-qos: single, short; }")
        doc = Document()
        element = doc.create_element("div")
        assert registry.lookup(element, "click").target == SINGLE_SHORT_DEFAULT
        extra = extract_annotations(
            parse_stylesheet("div:QoS { onclick-qos: single, long; }")
        )
        registry.extend(extra)
        assert registry.lookup(element, "click").target == SINGLE_LONG_DEFAULT

    def test_modularity_annotation_independent_of_callbacks(self):
        """Sec. 4.2: annotations attach to (element, event), not to how
        the callback is implemented — no listener required to resolve."""
        registry = self.make("#box:QoS { ontouchmove-qos: continuous; }")
        doc = Document()
        box = doc.create_element("div", element_id="box")
        assert registry.lookup(box, "touchmove") is not None
