"""Integration tests: GreenWeb runtime and baseline governors driving
the full browser + platform stack."""


from repro.core import (
    InteractiveGovernor,
    OndemandGovernor,
    PerfGovernor,
    PowersaveGovernor,
    UsageScenario,
)
from repro.hardware import CpuConfig
from repro.web import Callback

from tests.conftest import build, greenweb_factory, light_tap_callback


class TestGreenWebSingleEvents:
    def test_starts_at_idle_config(self):
        browser, platform, runtime = build(greenweb_factory())
        platform.run_for(500)
        assert platform.config == runtime.idle_config

    def test_first_two_events_are_profiling_runs(self):
        browser, platform, runtime = build(greenweb_factory())
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", light_tap_callback())

        browser.dispatch_event("click", btn)
        platform.run_for(2_000)  # past DVFS apply
        assert platform.config == CpuConfig("big", 1800)  # profile at fmax
        browser.run_until_quiescent()

        browser.dispatch_event("click", btn)
        platform.run_for(2_000)
        assert platform.config == CpuConfig("big", 800)  # profile at fmin
        browser.run_until_quiescent()

        assert runtime.key_state_snapshot() == {"#btn@click": "stable"}

    def test_stable_phase_prefers_cheap_config_for_loose_target(self):
        browser, platform, runtime = build(greenweb_factory())
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", light_tap_callback())
        for _ in range(3):
            browser.dispatch_event("click", btn)
            browser.run_until_quiescent()
        # Third event used the fitted model; a light frame against a
        # 100 ms target fits comfortably on the little cluster.
        assert runtime.stats.predictions >= 1
        last = runtime._keys["#btn@click"].last_prediction
        assert last.config.cluster == "little"
        assert last.meets_target

    def test_returns_to_idle_after_single_frame(self):
        browser, platform, runtime = build(greenweb_factory())
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", light_tap_callback())
        browser.dispatch_event("click", btn)
        browser.run_until_quiescent()
        platform.run_for(200_000)  # past the idle-drop grace period
        assert platform.config == runtime.idle_config
        assert runtime.stats.idle_drops >= 1

    def test_unannotated_input_gets_conservative_fallback(self):
        browser, platform, runtime = build(greenweb_factory(), markup="<div id='x'></div>")
        x = browser.page.document.get_element_by_id("x")
        x.add_event_listener("click", light_tap_callback())
        msg = browser.dispatch_event("click", x)
        browser.run_until_quiescent()
        assert runtime.stats.unannotated_inputs == 1
        spec = runtime.spec_for_uid(msg.uid)
        assert spec is not None and spec.target.imperceptible_ms == 100


class TestGreenWebContinuousEvents:
    def drive_animation(self, scenario, frame_cycles=3_000_000, duration_ms=800):
        browser, platform, runtime = build(greenweb_factory(), scenario=scenario)
        anim = browser.page.document.get_element_by_id("anim")

        def start(ctx):
            ctx.do_work(200_000)
            ctx.animate(anim, "left", duration_ms=duration_ms,
                        frame_complexity=1.0, frame_script_cycles=frame_cycles)

        anim.add_event_listener("touchstart", Callback(start, "startAnim"))
        msg = browser.dispatch_event("touchstart", anim)
        browser.run_until_quiescent(max_extra_us=5_000_000)
        return browser, platform, runtime, msg

    def test_animation_frames_get_per_frame_predictions(self):
        browser, platform, runtime, msg = self.drive_animation(UsageScenario.IMPERCEPTIBLE)
        record = browser.tracker.record(msg.uid)
        assert record.frame_count > 20
        # Profiling used 6 frames (3 per phase for continuous events);
        # every subsequent frame was predicted.
        assert runtime.stats.predictions >= record.frame_count - 7

    def test_usable_scenario_uses_lower_performance_than_imperceptible(self):
        _, _, runtime_i, _ = self.drive_animation(UsageScenario.IMPERCEPTIBLE)
        _, _, runtime_u, _ = self.drive_animation(UsageScenario.USABLE)
        pred_i = runtime_i._keys["#anim@touchstart"].last_prediction
        pred_u = runtime_u._keys["#anim@touchstart"].last_prediction
        cap = lambda p: (0 if p.config.cluster == "little" else 1, p.config.freq_mhz)
        assert cap(pred_u) <= cap(pred_i)

    def test_usable_run_consumes_less_energy(self):
        b_i, p_i, _, _ = self.drive_animation(UsageScenario.IMPERCEPTIBLE)
        b_u, p_u, _, _ = self.drive_animation(UsageScenario.USABLE)
        assert p_u.meter.total_j < p_i.meter.total_j

    def test_conserves_after_animation_completes(self):
        browser, platform, runtime, msg = self.drive_animation(UsageScenario.USABLE)
        platform.run_for(200_000)
        # Post-event the runtime conserves: either the idle config, or
        # it parks on the little cluster it already reached (staying
        # avoids a pointless down-switch; leakage gap is negligible).
        assert platform.config.cluster == "little"


class TestFeedback:
    def test_complexity_surge_triggers_boost(self):
        """A sudden frame-complexity increase mid-animation causes a
        violation, which the runtime answers by stepping up (Sec. 6.2)."""
        browser, platform, runtime = build(
            greenweb_factory(), scenario=UsageScenario.USABLE
        )
        anim = browser.page.document.get_element_by_id("anim")

        def raf_tick(ctx):
            ticks = ctx.state.setdefault("ticks", 0)
            ctx.state["ticks"] += 1
            # Surge: frames 20+ are 6x heavier.
            ctx.do_work(2_000_000 if ticks < 20 else 12_000_000)
            ctx.mark_dirty()
            if ticks < 45:
                ctx.request_animation_frame(raf_tick)

        anim.add_event_listener(
            "touchstart", Callback(lambda ctx: ctx.request_animation_frame(raf_tick), "go")
        )
        browser.dispatch_event("touchstart", anim)
        browser.run_until_quiescent(max_extra_us=5_000_000)
        assert runtime.stats.boosts_up >= 1
        assert runtime.stats.violations_fed_back >= 1

    def test_persistent_shift_triggers_recalibration(self):
        browser, platform, runtime = build(
            greenweb_factory(recalibration_threshold=2), scenario=UsageScenario.USABLE
        )
        anim = browser.page.document.get_element_by_id("anim")

        def raf_tick(ctx):
            ticks = ctx.state.setdefault("ticks", 0)
            ctx.state["ticks"] += 1
            ctx.do_work(1_000_000 if ticks < 10 else 9_000_000)
            ctx.mark_dirty()
            if ticks < 60:
                ctx.request_animation_frame(raf_tick)

        anim.add_event_listener(
            "touchstart", Callback(lambda ctx: ctx.request_animation_frame(raf_tick), "go")
        )
        browser.dispatch_event("touchstart", anim)
        browser.run_until_quiescent(max_extra_us=5_000_000)
        assert runtime.stats.recalibrations >= 1


class TestBaselineGovernors:
    def test_perf_pins_big_max(self):
        browser, platform, _ = build(lambda p, s, sc: PerfGovernor(p))
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", light_tap_callback())
        browser.dispatch_event("click", btn)
        browser.run_until_quiescent()
        assert platform.config == CpuConfig("big", 1800)
        assert platform.dvfs.switch_count <= 1  # initial pin only

    def test_powersave_pins_little_min(self):
        browser, platform, _ = build(lambda p, s, sc: PowersaveGovernor(p))
        platform.run_for(1_000)
        assert platform.config == CpuConfig("little", 350)

    def test_interactive_boosts_on_input(self):
        browser, platform, gov = build(lambda p, s, sc: InteractiveGovernor(p))
        platform.run_for(200_000)  # settle to floor
        assert platform.config == CpuConfig("little", 350)
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", light_tap_callback())
        browser.dispatch_event("click", btn)
        platform.run_for(1_000)
        assert platform.config == CpuConfig("big", 1800)

    def test_interactive_parks_at_hispeed_while_idle(self):
        """Deferrable-timer semantics: with no runnable work the
        governor's sampling timer does not re-evaluate, so after a
        boost the configuration parks at hispeed — the paper's
        'Interactive is almost always at peak performance'."""
        browser, platform, gov = build(lambda p, s, sc: InteractiveGovernor(p))
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", light_tap_callback())
        browser.dispatch_event("click", btn)
        browser.run_until_quiescent()
        platform.run_for(500_000)  # long idle: frequency stays parked
        assert platform.config == CpuConfig("big", 1800)

    def test_interactive_stays_high_during_animation(self):
        """The paper's observation: continuous frames keep utilization
        (and hence the interactive governor) near peak."""
        browser, platform, gov = build(lambda p, s, sc: InteractiveGovernor(p))
        anim = browser.page.document.get_element_by_id("anim")
        anim.add_event_listener(
            "touchstart",
            Callback(
                lambda ctx: ctx.animate(anim, "left", duration_ms=600,
                                        frame_script_cycles=4_000_000),
                "go",
            ),
        )
        browser.dispatch_event("touchstart", anim)
        platform.run_for(500_000)
        assert platform.config == CpuConfig("big", 1800)

    def test_ondemand_reacts_to_load(self):
        browser, platform, gov = build(lambda p, s, sc: OndemandGovernor(p))
        anim = browser.page.document.get_element_by_id("anim")
        anim.add_event_listener(
            "touchstart",
            Callback(
                lambda ctx: ctx.animate(anim, "left", duration_ms=400,
                                        frame_script_cycles=12_000_000),
                "go",
            ),
        )
        browser.dispatch_event("touchstart", anim)
        platform.run_for(300_000)
        assert platform.config == CpuConfig("big", 1800)


class TestEnergyComparison:
    def run_with(self, policy_factory, scenario=UsageScenario.IMPERCEPTIBLE):
        browser, platform, _ = build(policy_factory, scenario=scenario)
        btn = browser.page.document.get_element_by_id("btn")
        btn.add_event_listener("click", light_tap_callback())
        for _ in range(5):
            browser.dispatch_event("click", btn)
            browser.run_until_quiescent()
            platform.run_for(400_000)
        platform.meter.finalize(platform.kernel.now_us)
        return platform.meter.total_j

    def test_greenweb_beats_perf_on_light_taps(self):
        """The Fig. 9a 'Todo-like' case: light single frames against a
        loose target make Perf waste most of its energy."""
        perf = self.run_with(lambda p, s, sc: PerfGovernor(p))
        greenweb = self.run_with(greenweb_factory())
        assert greenweb < 0.75 * perf

    def test_greenweb_usable_saves_more_than_imperceptible(self):
        g_i = self.run_with(greenweb_factory(), UsageScenario.IMPERCEPTIBLE)
        g_u = self.run_with(greenweb_factory(), UsageScenario.USABLE)
        assert g_u <= g_i * 1.02
