"""Tests for the fleet simulator: specs, aggregation, driver, CLI."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.errors import EvaluationError
from repro.evaluation.runner import run_workload_job
from repro.fleet import (
    Accumulator,
    Fleet,
    FleetAggregate,
    FleetSpec,
    Histogram,
    MixEntry,
    default_mix,
    parse_mix,
    run_shard_job,
)
from repro.session import Session
from repro.sim.random import derive_seed

from tests.conftest import FAST_MIX


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "fleet-session", 3) == derive_seed(7, "fleet-session", 3)

    def test_distinct_per_key(self):
        seeds = {derive_seed(7, "fleet-session", i) for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_per_root(self):
        assert derive_seed(7, "x", 0) != derive_seed(8, "x", 0)

    def test_range(self):
        for i in range(10):
            assert 0 <= derive_seed(1, i) < 2**63


# ----------------------------------------------------------------------
# Mix parsing and population expansion
# ----------------------------------------------------------------------
class TestMix:
    def test_parse_full_item(self):
        (entry,) = parse_mix("amazon:perf:usable:full=2.5")
        assert entry == MixEntry("amazon", "perf", "usable", "full", 2.5)

    def test_parse_defaults(self):
        (entry,) = parse_mix("todo")
        assert entry == MixEntry("todo", "greenweb", "imperceptible", "micro", 1.0)

    def test_parse_multiple(self):
        entries = parse_mix("todo:greenweb=3, cnet:perf")
        assert [e.app for e in entries] == ["todo", "cnet"]
        assert entries[0].weight == 3.0

    @pytest.mark.parametrize(
        "bad",
        ["", "nosuchapp", "todo:nosuchgov", "todo:perf:nosuchscenario",
         "todo:perf:usable:nosuchtrace", "todo=zero", "todo=-1",
         "todo:perf:usable:full:extra"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(EvaluationError):
            parse_mix(bad)

    def test_default_mix_covers_all_apps(self):
        entries = default_mix()
        assert len({e.app for e in entries}) == 12
        assert {e.governor for e in entries} == {"greenweb", "perf"}


class TestExpansion:
    def test_deterministic(self):
        spec = FleetSpec(sessions=50, seed=7, mix=FAST_MIX)
        assert spec.expand() == spec.expand()

    def test_seed_changes_assignment(self):
        a = FleetSpec(sessions=50, seed=7, mix=FAST_MIX).expand()
        b = FleetSpec(sessions=50, seed=8, mix=FAST_MIX).expand()
        assert a != b

    def test_session_seeds_distinct(self):
        specs = FleetSpec(sessions=50, seed=7, mix=FAST_MIX).expand()
        assert len({s.seed for s in specs}) == 50

    def test_weights_respected(self):
        mix = parse_mix("todo:greenweb=9,cnet:perf=1")
        specs = FleetSpec(sessions=400, seed=0, mix=mix).expand()
        todo = sum(1 for s in specs if s.app == "todo")
        assert todo > 300  # ~90% of 400

    def test_sharding_partitions_population(self):
        spec = FleetSpec(sessions=20, seed=7, mix=FAST_MIX, shard_size=6)
        shards = spec.shards()
        assert [len(s) for s in shards] == [6, 6, 6, 2]
        flat = [session for shard in shards for session in shard.sessions]
        assert flat == spec.expand()

    @pytest.mark.parametrize(
        "kwargs",
        [dict(sessions=0), dict(sessions=4, shard_size=0),
         dict(sessions=4, max_retries=-1), dict(sessions=4, mix=[])],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(EvaluationError):
            FleetSpec(**kwargs)


# ----------------------------------------------------------------------
# Mergeable metrics
# ----------------------------------------------------------------------
class TestAccumulator:
    def test_basic_stats(self):
        acc = Accumulator()
        for value in (3.0, 1.0, 2.0):
            acc.add(value)
        assert (acc.count, acc.sum, acc.min, acc.max, acc.mean) == (3, 6.0, 1.0, 3.0, 2.0)

    def test_merge_matches_bulk(self):
        values = [0.5, 2.5, -1.0, 7.0, 3.25]
        bulk = Accumulator()
        for value in values:
            bulk.add(value)
        left, right = Accumulator(), Accumulator()
        for value in values[:2]:
            left.add(value)
        for value in values[2:]:
            right.add(value)
        left.merge(right)
        assert left == bulk

    def test_merge_empty(self):
        acc = Accumulator()
        acc.add(1.0)
        acc.merge(Accumulator())
        assert (acc.count, acc.min) == (1, 1.0)

    def test_empty_mean(self):
        assert Accumulator().mean == 0.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(lo=0.0, hi=10.0, buckets=5)
        for value in (0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 100.0):
            hist.add(value)
        assert hist.counts == [2, 1, 0, 0, 1]
        assert (hist.underflow, hist.overflow) == (1, 2)
        assert hist.total == 7

    def test_merge_matches_bulk(self):
        values = [0.1, 3.3, 9.9, -5.0, 12.0, 5.0]
        bulk = Histogram(0.0, 10.0, 4)
        for value in values:
            bulk.add(value)
        left, right = Histogram(0.0, 10.0, 4), Histogram(0.0, 10.0, 4)
        for value in values[:3]:
            left.add(value)
        for value in values[3:]:
            right.add(value)
        left.merge(right)
        assert left == bulk

    def test_merge_rejects_layout_mismatch(self):
        with pytest.raises(EvaluationError):
            Histogram(0.0, 10.0, 4).merge(Histogram(0.0, 10.0, 5))

    def test_dict_round_trip(self):
        hist = Histogram(0.0, 10.0, 4)
        hist.add(3.0)
        hist.add(42.0)
        assert Histogram.from_dict(hist.to_dict()) == hist

    def test_rejects_bad_bounds(self):
        with pytest.raises(EvaluationError):
            Histogram(5.0, 5.0, 4)

    def test_value_just_below_hi_lands_in_last_bucket(self):
        # 0.7 + 0.7*...: float multiply-divide used to round values just
        # below hi to index == buckets and silently clamp; the edge-safe
        # index must put math.nextafter(hi, lo) in the last real bucket.
        import math

        hist = Histogram(lo=0.0, hi=0.7, buckets=7)
        hist.add(math.nextafter(0.7, 0.0))
        assert hist.counts[-1] == 1
        assert hist.overflow == 0

    def test_boundary_values_land_on_their_own_edge(self):
        hist = Histogram(lo=0.0, hi=1.0, buckets=10)
        for index in range(10):
            hist.add(hist.edge(index))
        assert hist.counts == [1] * 10

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
        st.integers(min_value=1, max_value=64),
    )
    def test_add_agrees_with_explicit_edge_comparison(self, value, lo, span, buckets):
        hist = Histogram(lo=lo, hi=lo + span, buckets=buckets)
        hist.add(value)
        if value < hist.lo:
            assert (hist.underflow, hist.overflow) == (1, 0)
            assert sum(hist.counts) == 0
        elif value >= hist.hi:
            assert (hist.underflow, hist.overflow) == (0, 1)
            assert sum(hist.counts) == 0
        else:
            assert (hist.underflow, hist.overflow) == (0, 0)
            assert sum(hist.counts) == 1
            index = hist.counts.index(1)
            assert hist.edge(index) <= value
            assert index == buckets - 1 or value < hist.edge(index + 1)


class TestFleetAggregate:
    def _run(self, **overrides):
        run = {
            "app": "todo", "governor": "greenweb", "energy_j": 1.0,
            "active_energy_j": 0.25, "mean_violation_pct": 10.0,
            "active_time_s": 0.5, "frames": 60, "inputs": 10,
        }
        run.update(overrides)
        return run

    def test_add_run(self):
        agg = FleetAggregate()
        agg.add_run(self._run())
        agg.add_run(self._run(app="cnet", governor="perf", energy_j=3.0))
        assert agg.sessions == 2
        assert agg.energy_j.sum == 4.0
        assert set(agg.by_governor) == {"greenweb", "perf"}
        assert set(agg.by_app) == {"todo", "cnet"}
        assert agg.by_governor["greenweb"].sessions == 1

    def test_latency_hist_skips_inputless_runs(self):
        agg = FleetAggregate()
        agg.add_run(self._run(inputs=0))
        assert agg.latency_hist.total == 0

    def test_merge_matches_bulk(self):
        runs = [self._run(energy_j=float(i), mean_violation_pct=5.0 * i)
                for i in range(6)]
        bulk = FleetAggregate()
        for run in runs:
            bulk.add_run(run)
        left, right = FleetAggregate(), FleetAggregate()
        for run in runs[:3]:
            left.add_run(run)
        for run in runs[3:]:
            right.add_run(run)
        left.merge(right)
        assert left.to_dict() == bulk.to_dict()

    def test_json_round_trip(self):
        agg = FleetAggregate()
        agg.add_run(self._run())
        data = json.loads(json.dumps(agg.to_dict()))
        assert FleetAggregate.from_dict(data).to_dict() == agg.to_dict()


# ----------------------------------------------------------------------
# Worker entry points
# ----------------------------------------------------------------------
class TestRunWorkloadJob:
    def test_plain_data_round_trip(self):
        out = run_workload_job(
            {"app": "todo", "governor": "greenweb", "trace_kind": "micro", "seed": 1}
        )
        # JSON round-trip proves there is nothing un-serialisable inside.
        assert json.loads(json.dumps(out))["app"] == "todo"
        assert out["energy_j"] > 0
        assert "@" in next(iter(out["config_residency"]))

    def test_matches_run_workload_defaults(self):
        from repro.core.qos import UsageScenario
        from repro.evaluation.runner import run_workload

        via_job = run_workload_job({"app": "todo", "trace_kind": "micro", "seed": 2})
        direct = run_workload(
            "todo", "greenweb", UsageScenario.IMPERCEPTIBLE, "micro", seed=2
        )
        assert via_job["energy_j"] == direct.energy_j
        assert via_job["mean_violation_pct"] == direct.mean_violation_pct

    def test_session_as_job(self):
        session = Session.for_application("todo", governor="perf", seed=5)
        job = session.as_job(trace_kind="micro")
        out = run_workload_job(job)
        assert out["governor"] == "perf"
        assert out["energy_j"] == session.run_micro_interaction().energy_j


class TestRunShardJob:
    def test_aggregates_sessions(self):
        jobs = [{"app": "todo", "trace_kind": "micro", "seed": s} for s in (0, 1)]
        out = run_shard_job({"shard": 0, "sessions": jobs, "attempt": 0})
        assert out["shard"] == 0
        assert out["sessions"] == 2
        assert out["aggregate"]["sessions"] == 2

    def test_crash_hook_attempt_gated(self):
        payload = {
            "shard": 1, "sessions": [], "attempt": 0,
            "inject_crash": {"shard": 1, "attempts": 1},
        }
        with pytest.raises(RuntimeError):
            run_shard_job(payload)
        payload["attempt"] = 1
        assert run_shard_job(payload)["sessions"] == 0

    def test_crash_hook_targets_one_shard(self):
        payload = {
            "shard": 0, "sessions": [], "attempt": 0,
            "inject_crash": {"shard": 1, "attempts": 1},
        }
        assert run_shard_job(payload)["shard"] == 0


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
class TestFleetDriver:
    SPEC = dict(sessions=8, seed=7, mix=FAST_MIX, shard_size=3)

    def test_jobs_do_not_change_bytes(self):
        serial = Fleet(FleetSpec(**self.SPEC), jobs=1).run()
        pooled = Fleet(FleetSpec(**self.SPEC), jobs=4).run()
        assert serial.to_json() == pooled.to_json()
        assert serial.ok and pooled.ok
        assert pooled.sessions_completed == 8

    def test_aggregate_matches_manual_runs(self):
        result = Fleet(FleetSpec(**self.SPEC), jobs=1).run()
        expected = sum(
            run_workload_job(s.to_job())["energy_j"]
            for s in FleetSpec(**self.SPEC).expand()
        )
        assert result.aggregate.energy_j.sum == pytest.approx(expected)

    def test_transient_crash_retried_and_invisible(self):
        crashing = FleetSpec(
            **self.SPEC, max_retries=1, inject_crash={"shard": 1, "attempts": 1}
        )
        result = Fleet(crashing, jobs=2).run()
        clean = Fleet(FleetSpec(**self.SPEC), jobs=1).run()
        assert result.ok
        assert result.retries == 1
        # The retried shard reruns deterministically: the aggregate is
        # exactly what a crash-free fleet produces.
        assert result.aggregate.to_dict() == clean.aggregate.to_dict()

    def test_permanent_crash_isolated(self):
        crashing = FleetSpec(
            **self.SPEC, max_retries=1, inject_crash={"shard": 1, "attempts": 99}
        )
        result = Fleet(crashing, jobs=2).run()
        assert not result.ok
        assert [f.shard for f in result.failures] == [1]
        assert result.failures[0].attempts == 2
        assert result.sessions_completed == 8 - 3  # shard 1 held 3 sessions
        assert result.aggregate.sessions == 5
        summary = result.to_dict()["run"]
        assert summary["failed_shards"][0]["shard"] == 1
        assert summary["retries"] == 1

    def test_inline_and_pooled_agree_on_failures(self):
        crashing = dict(
            **self.SPEC, max_retries=0, inject_crash={"shard": 0, "attempts": 99}
        )
        inline = Fleet(FleetSpec(**crashing), jobs=1).run()
        pooled = Fleet(FleetSpec(**crashing), jobs=2).run()
        assert [f.shard for f in inline.failures] == [f.shard for f in pooled.failures]
        assert inline.aggregate.to_dict() == pooled.aggregate.to_dict()

    def test_hung_shard_times_out_and_retries(self):
        # The timeout must leave room for the retry to run on a cold,
        # freshly rebuilt pool (worker start + package import).
        hanging = FleetSpec(
            sessions=4, seed=7, mix=FAST_MIX, shard_size=2, max_retries=1,
            shard_timeout_s=3.0,
            inject_crash={"shard": 1, "attempts": 1, "mode": "sleep", "sleep_s": 30.0},
        )
        result = Fleet(hanging, jobs=2).run()
        assert result.ok
        assert result.retries == 1
        assert result.sessions_completed == 4

    def test_hung_workers_free_their_slots(self):
        # Hang BOTH workers at once.  Abandoning the futures (the old
        # behaviour) would leave zero usable pool slots, so the queued
        # shards 2 and 3 could only sit out their deadlines — billed
        # for queue wait they never caused — and the whole fleet would
        # be falsely marked failed.  Killing and rebuilding the pool
        # must instead run every shard to completion.
        hanging = FleetSpec(
            sessions=4, seed=7, mix=FAST_MIX, shard_size=1, max_retries=1,
            shard_timeout_s=4.0,
            inject_crash={
                "shard": [0, 1], "attempts": 1, "mode": "sleep", "sleep_s": 30.0,
            },
        )
        result = Fleet(hanging, jobs=2).run()
        assert result.ok
        # Exactly the two hung shards are charged retries; the queued
        # bystanders are requeued free of charge.
        assert result.retries == 2
        assert result.sessions_completed == 4
        clean = Fleet(
            FleetSpec(sessions=4, seed=7, mix=FAST_MIX, shard_size=1), jobs=1
        ).run()
        assert result.aggregate.to_dict() == clean.aggregate.to_dict()

    def test_rejects_zero_jobs(self):
        with pytest.raises(EvaluationError):
            Fleet(FleetSpec(**self.SPEC), jobs=0)


# ----------------------------------------------------------------------
# Parallel figures
# ----------------------------------------------------------------------
class TestParallelFigures:
    def test_fig9_rows_identical_across_jobs(self):
        from repro.evaluation.experiments import run_fig9_microbenchmarks

        serial = run_fig9_microbenchmarks(apps=["todo"], jobs=1)
        pooled = run_fig9_microbenchmarks(apps=["todo"], jobs=2)
        assert serial == pooled

    def test_parallel_map_preserves_order(self):
        from repro.fleet.pool import parallel_map

        assert parallel_map(abs, [-3, 1, -2], jobs=1) == [3, 1, 2]
        assert parallel_map(abs, [-3, 1, -2], jobs=2) == [3, 1, 2]
